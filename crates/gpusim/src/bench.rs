//! Corpus benchmarking: turn matrix statistics into ground-truth labels.
//!
//! Two entry points:
//!
//! * [`benchmark_corpus`] — the fault-free single-shot path. One modeled
//!   measurement per (matrix, format), exactly as before.
//! * [`measure_corpus`] — the resilient trial-level path. Each feasible
//!   (matrix, format) cell is measured over [`TrialPolicy::trials`]
//!   independent trials; transient failures are retried with bounded
//!   deterministic backoff, timing spikes are rejected by median + MAD
//!   aggregation, and cells that still cannot produce enough valid trials
//!   are *quarantined* with a typed [`BenchError`] instead of panicking.
//!
//! With faults disabled, `measure_corpus` takes the single-shot path and
//! is bit-identical to `benchmark_corpus`.

use crate::faults::{FaultClass, FaultConfig};
use crate::model::{predict_times, SpmvTimes};
use crate::spec::GpuSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use spsel_features::MatrixStats;
use spsel_matrix::Format;

/// Benchmark outcome for one matrix on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchResult {
    /// Modeled kernel times.
    pub times: SpmvTimes,
    /// Fastest feasible format (the ground-truth label).
    pub best: Format,
}

/// Why a cell could not be measured. Carried by quarantined records so the
/// degradation report can say what was lost and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BenchError {
    /// Every trial of one format died to transient failures even after
    /// retries.
    TransientExhausted {
        /// The format whose measurement failed.
        format: Format,
        /// Total attempts spent (trials x retries).
        attempts: u32,
    },
    /// Too few valid trials survived faults and outlier rejection.
    InsufficientTrials {
        /// The format whose measurement failed.
        format: Format,
        /// Valid trials obtained.
        valid: u32,
        /// Minimum the policy requires.
        needed: u32,
    },
}

impl BenchError {
    /// Stable class name for telemetry.
    pub fn class(&self) -> &'static str {
        match self {
            BenchError::TransientExhausted { .. } => "transient_exhausted",
            BenchError::InsufficientTrials { .. } => "insufficient_trials",
        }
    }

    /// Human-readable reason for the degradation report.
    pub fn reason(&self) -> String {
        match self {
            BenchError::TransientExhausted { format, attempts } => {
                format!("{format}: every trial failed transiently ({attempts} attempts)")
            }
            BenchError::InsufficientTrials {
                format,
                valid,
                needed,
            } => format!("{format}: only {valid} valid trials, need {needed}"),
        }
    }
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason())
    }
}

impl std::error::Error for BenchError {}

/// Outcome of measuring one matrix on one GPU under the resilient path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BenchOutcome {
    /// Measurement succeeded.
    Ok {
        /// The aggregated result.
        result: BenchResult,
    },
    /// No format fits in device memory (the paper drops such matrices
    /// from that GPU's dataset).
    Infeasible,
    /// Measurement was irrecoverable; the record is excluded from this
    /// GPU's dataset with a recorded reason.
    Quarantined {
        /// Why the cell could not be measured.
        error: BenchError,
    },
}

impl BenchOutcome {
    /// The usable result, if any — quarantined and infeasible records both
    /// disappear from the dataset, just with different bookkeeping.
    pub fn result(&self) -> Option<BenchResult> {
        match self {
            BenchOutcome::Ok { result } => Some(*result),
            _ => None,
        }
    }
}

/// How many trials to run per cell and when to give up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialPolicy {
    /// Trials per (matrix, format) cell.
    pub trials: u32,
    /// Retries per trial after a transient failure.
    pub max_retries: u32,
    /// Minimum valid trials for a usable aggregate.
    pub min_valid: u32,
    /// MAD multiplier beyond which a trial is rejected as an outlier.
    pub mad_k: f64,
}

impl Default for TrialPolicy {
    fn default() -> Self {
        TrialPolicy {
            trials: 7,
            max_retries: 3,
            min_valid: 3,
            mad_k: 6.0,
        }
    }
}

/// Counters of everything the fault injector did and the recovery layer
/// absorbed during one benchmark run. Mergeable across records and GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transient failures injected.
    pub transient: u64,
    /// Retries performed in response.
    pub retries: u64,
    /// Simulated backoff accumulated across retries, microseconds.
    pub backoff_us: f64,
    /// Timing spikes injected.
    pub spikes: u64,
    /// Trials dropped outright.
    pub dropped: u64,
    /// Spurious OOMs injected (cell forced infeasible).
    pub oom_injected: u64,
    /// Trials rejected by median + MAD aggregation.
    pub outliers_rejected: u64,
    /// Trials lost entirely (dropped or transient-exhausted).
    pub trials_lost: u64,
}

impl FaultCounters {
    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.transient += other.transient;
        self.retries += other.retries;
        self.backoff_us += other.backoff_us;
        self.spikes += other.spikes;
        self.dropped += other.dropped;
        self.oom_injected += other.oom_injected;
        self.outliers_rejected += other.outliers_rejected;
        self.trials_lost += other.trials_lost;
    }

    /// Whether anything at all was injected or absorbed.
    pub fn any(&self) -> bool {
        self.transient > 0
            || self.spikes > 0
            || self.dropped > 0
            || self.oom_injected > 0
            || self.outliers_rejected > 0
            || self.trials_lost > 0
    }
}

/// One GPU's resilient benchmark run over a corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusBench {
    /// Per-record outcomes, index-aligned with the input corpus.
    pub outcomes: Vec<BenchOutcome>,
    /// What the fault injector did and the recovery layer absorbed.
    pub counters: FaultCounters,
}

impl CorpusBench {
    /// Collapse to the classic `Vec<Option<BenchResult>>` view: quarantined
    /// and infeasible records both become `None`.
    pub fn results(&self) -> Vec<Option<BenchResult>> {
        self.outcomes.iter().map(|o| o.result()).collect()
    }

    /// Indices and errors of quarantined records.
    pub fn quarantined(&self) -> Vec<(usize, BenchError)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                BenchOutcome::Quarantined { error } => Some((i, *error)),
                _ => None,
            })
            .collect()
    }
}

/// Median of a non-empty slice (sorted copy; ties average).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Median + MAD outlier mask: `true` for trials within `mad_k` median
/// absolute deviations of the median, `false` for rejected outliers.
fn mad_keep_mask(trials: &[f64], mad_k: f64) -> Vec<bool> {
    let m = median(trials);
    let deviations: Vec<f64> = trials.iter().map(|t| (t - m).abs()).collect();
    let mad = median(&deviations);
    // A degenerate (near-zero) MAD means the trials agree; keep them all
    // rather than rejecting on floating-point dust.
    let threshold = mad_k * mad.max(1e-9 * m.abs());
    trials.iter().map(|t| (t - m).abs() <= threshold).collect()
}

/// Median + MAD outlier rejection: reject trials more than `mad_k` median
/// absolute deviations from the median, then re-take the median of the
/// survivors. Returns `(aggregate, rejected_count)`.
#[cfg(test)]
fn robust_aggregate(trials: &[f64], mad_k: f64) -> (f64, u64) {
    let keep = mad_keep_mask(trials, mad_k);
    let kept: Vec<f64> = trials
        .iter()
        .zip(&keep)
        .filter_map(|(t, k)| k.then_some(*t))
        .collect();
    let rejected = (trials.len() - kept.len()) as u64;
    if kept.is_empty() {
        (median(trials), rejected)
    } else {
        (median(&kept), rejected)
    }
}

/// Measure one feasible cell over `policy.trials` trials. `base_us` is the
/// cell's true averaged time (model prediction including the cell-level
/// measurement noise). Returns the aggregated time, or a [`BenchError`] if
/// the cell is irrecoverable.
fn measure_cell(
    base_us: f64,
    matrix_id: u64,
    format: Format,
    gpu_idx: usize,
    faults: &FaultConfig,
    policy: &TrialPolicy,
    counters: &mut FaultCounters,
) -> Result<f64, BenchError> {
    let fi = format.index();
    let mut valid: Vec<(u64, f64)> = Vec::with_capacity(policy.trials as usize);
    let mut attempts_total = 0u32;
    for trial in 0..policy.trials as u64 {
        // Transient failures: retry with exponential backoff (simulated —
        // the backoff is accounted, not slept).
        let mut survived = false;
        for attempt in 0..=policy.max_retries as u64 {
            attempts_total += 1;
            let event = trial * 32 + attempt;
            if faults.roll(FaultClass::Transient, matrix_id, fi, gpu_idx, event) {
                counters.transient += 1;
                if attempt < policy.max_retries as u64 {
                    counters.retries += 1;
                    counters.backoff_us += FaultConfig::backoff_us(attempt + 1);
                }
                continue;
            }
            survived = true;
            break;
        }
        if !survived {
            counters.trials_lost += 1;
            continue;
        }
        // Dropped trials: the measurement is lost, no retry possible.
        if faults.roll(FaultClass::Drop, matrix_id, fi, gpu_idx, trial) {
            counters.dropped += 1;
            counters.trials_lost += 1;
            continue;
        }
        // A surviving trial: the cell's true time under per-trial jitter,
        // possibly multiplied by an injected outlier spike.
        let mut t = base_us * faults.trial_jitter(matrix_id, fi, gpu_idx, trial);
        if faults.roll(FaultClass::Spike, matrix_id, fi, gpu_idx, trial) {
            counters.spikes += 1;
            t *= faults.spike_magnitude(matrix_id, fi, gpu_idx, trial);
        }
        valid.push((trial, t));
    }
    if valid.is_empty() {
        return Err(BenchError::TransientExhausted {
            format,
            attempts: attempts_total,
        });
    }
    // MAD outlier rejection over the surviving trials.
    let values: Vec<f64> = valid.iter().map(|&(_, t)| t).collect();
    let keep = mad_keep_mask(&values, policy.mad_k);
    let unrejected: Vec<(u64, f64)> = valid
        .iter()
        .zip(&keep)
        .filter_map(|(v, k)| k.then_some(*v))
        .collect();
    counters.outliers_rejected += (valid.len() - unrejected.len()) as u64;

    // Antithetic symmetry repair: the jitter of trials `2p-1` and `2p` is
    // antithetic (one deviate, opposite signs), so when one side of a pair
    // is lost or rejected the other is discarded too. Survivors are then
    // the unjittered center trial plus whole pairs, and their median sits
    // exactly on the cell's true time instead of drifting by a half-jitter
    // whenever a fault leaves an unbalanced trial count.
    let survived = |t: u64| unrejected.iter().any(|&(u, _)| u == t);
    let balanced: Vec<f64> = unrejected
        .iter()
        .filter(|&&(t, _)| {
            if t == 0 {
                return true;
            }
            let partner = if t % 2 == 1 { t + 1 } else { t - 1 };
            partner >= policy.trials as u64 || survived(partner)
        })
        .map(|&(_, t)| t)
        .collect();
    // `min_valid` gates on measurement evidence: how many trials actually
    // produced believable numbers.
    if (unrejected.len() as u32) < policy.min_valid {
        return Err(BenchError::InsufficientTrials {
            format,
            valid: unrejected.len() as u32,
            needed: policy.min_valid,
        });
    }
    // The balanced subset is unbiased at any size — a lone center trial is
    // exactly the true time, a lone pair brackets it symmetrically — so
    // aggregation prefers it whenever it is non-empty. Only a cell whose
    // center is gone and whose every pair is broken falls back to the full
    // unrejected set (rare, and still within a half-jitter of the truth).
    let kept: Vec<f64> = if balanced.is_empty() {
        unrejected.iter().map(|&(_, t)| t).collect()
    } else {
        counters.trials_lost += (unrejected.len() - balanced.len()) as u64;
        balanced
    };
    Ok(median(&kept))
}

/// Measure one matrix on one GPU under the resilient path.
fn measure_record(
    spec: &GpuSpec,
    stats: &MatrixStats,
    matrix_id: u64,
    faults: &FaultConfig,
    policy: &TrialPolicy,
) -> (BenchOutcome, FaultCounters) {
    let mut counters = FaultCounters::default();
    let gpu_idx = spec.gpu as usize;
    // The fault-free prediction is the per-cell ground truth the trials
    // scatter around.
    let true_times = predict_times(spec, stats, matrix_id);
    let mut us = [f64::INFINITY; 4];
    for format in Format::ALL {
        let fi = format.index();
        let base = true_times.us[fi];
        if !base.is_finite() {
            continue; // genuinely out of memory: no measurement to run
        }
        // Spurious OOM: the cell reports out-of-memory even though the
        // model says it fits. Real campaigns lose the cell, not the run.
        if faults.roll(FaultClass::Oom, matrix_id, fi, gpu_idx, 0) {
            counters.oom_injected += 1;
            continue;
        }
        match measure_cell(
            base,
            matrix_id,
            format,
            gpu_idx,
            faults,
            policy,
            &mut counters,
        ) {
            Ok(t) => us[fi] = t,
            Err(error) => return (BenchOutcome::Quarantined { error }, counters),
        }
    }
    let times = SpmvTimes { us };
    let outcome = match times.best() {
        Some(best) => BenchOutcome::Ok {
            result: BenchResult { times, best },
        },
        None => BenchOutcome::Infeasible,
    };
    (outcome, counters)
}

/// Resiliently benchmark a corpus on one GPU: trial-level measurement with
/// retry, robust aggregation, and quarantine, driven by `faults`.
///
/// With `faults` disabled this takes the single-shot path and the outcomes
/// are bit-identical to [`benchmark_corpus`].
pub fn measure_corpus(
    spec: &GpuSpec,
    stats: &[MatrixStats],
    ids: &[u64],
    faults: &FaultConfig,
    policy: &TrialPolicy,
) -> CorpusBench {
    assert_eq!(stats.len(), ids.len(), "one id per matrix");
    if !faults.enabled() {
        let outcomes = stats
            .par_iter()
            .zip(ids.par_iter())
            .map(|(s, &id)| {
                let times = predict_times(spec, s, id);
                match times.best() {
                    Some(best) => BenchOutcome::Ok {
                        result: BenchResult { times, best },
                    },
                    None => BenchOutcome::Infeasible,
                }
            })
            .collect();
        return CorpusBench {
            outcomes,
            counters: FaultCounters::default(),
        };
    }
    let per_record: Vec<(BenchOutcome, FaultCounters)> = stats
        .par_iter()
        .zip(ids.par_iter())
        .map(|(s, &id)| measure_record(spec, s, id, faults, policy))
        .collect();
    let mut counters = FaultCounters::default();
    let mut outcomes = Vec::with_capacity(per_record.len());
    for (o, c) in per_record {
        counters.merge(&c);
        outcomes.push(o);
    }
    CorpusBench { outcomes, counters }
}

/// Benchmark a corpus: one result per matrix, `None` when no format fits
/// in device memory (the paper drops such matrices from that GPU's
/// dataset).
///
/// `ids[i]` is the stable identifier of matrix `i`, used to seed the
/// deterministic measurement noise.
pub fn benchmark_corpus(
    spec: &GpuSpec,
    stats: &[MatrixStats],
    ids: &[u64],
) -> Vec<Option<BenchResult>> {
    assert_eq!(stats.len(), ids.len(), "one id per matrix");
    stats
        .par_iter()
        .zip(ids.par_iter())
        .map(|(s, &id)| {
            let times = predict_times(spec, s, id);
            times.best().map(|best| BenchResult { times, best })
        })
        .collect()
}

/// Count the best-format label distribution of benchmark results (Table 3
/// rows). Index order matches [`Format::ALL`].
pub fn label_distribution(results: &[Option<BenchResult>]) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for r in results.iter().flatten() {
        counts[r.best.index()] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{pascal_gtx1080, volta_v100};

    fn corpus() -> (Vec<MatrixStats>, Vec<u64>) {
        let mut stats = Vec::new();
        // Uniform ELL-friendly matrices.
        for i in 0..5usize {
            stats.push(MatrixStats::from_row_counts(
                50_000 + i * 1000,
                50_000,
                &vec![12usize; 50_000 + i * 1000],
            ));
        }
        // Irregular CSR-friendly matrices.
        for i in 0..5usize {
            let mut counts = vec![4usize; 40_000];
            for j in (0..40_000).step_by(37 + i) {
                counts[j] = 50;
            }
            stats.push(MatrixStats::from_row_counts(40_000, 40_000, &counts));
        }
        let ids = (0..stats.len() as u64).collect();
        (stats, ids)
    }

    #[test]
    fn corpus_gets_labels() {
        let (stats, ids) = corpus();
        let results = benchmark_corpus(&pascal_gtx1080(), &stats, &ids);
        assert_eq!(results.len(), 10);
        assert!(results.iter().all(|r| r.is_some()));
        let dist = label_distribution(&results);
        assert_eq!(dist.iter().sum::<usize>(), 10);
    }

    #[test]
    fn uniform_and_irregular_get_different_labels() {
        let (stats, ids) = corpus();
        let results = benchmark_corpus(&volta_v100(), &stats, &ids);
        let first = results[0].unwrap().best;
        let last = results[9].unwrap().best;
        assert_ne!(first, last, "uniform vs irregular should differ");
    }

    #[test]
    fn oom_matrix_yields_none_only_when_everything_oom() {
        // All formats need > 0.45 * 8 GB on Pascal: ~2B nonzeros. Built
        // literally because a 400M-entry row-count vector is pointless.
        let s = MatrixStats {
            nrows: 400_000_000,
            ncols: 400_000_000,
            nnz: 2_000_000_000,
            nnz_min: 5,
            nnz_max: 5,
            nnz_mean: 5.0,
            nnz_std: 0.0,
            sig_lower: 0.0,
            sig_higher: 0.0,
            csr_max: 160,
            hyb_ell_width: 5,
            hyb_ell_size: 2_000_000_000,
            hyb_ell_nnz: 2_000_000_000,
            hyb_coo_nnz: 0,
            diagonals: 5,
            dia_size: 2_000_000_000,
            ell_size: 2_000_000_000,
        };
        let results = benchmark_corpus(&pascal_gtx1080(), std::slice::from_ref(&s), &[0]);
        assert!(results[0].is_none());
        // The resilient path agrees: genuinely-OOM matrices are
        // Infeasible, not Quarantined.
        let bench = measure_corpus(
            &pascal_gtx1080(),
            &[s],
            &[0],
            &FaultConfig::uniform(0.05, 1),
            &TrialPolicy::default(),
        );
        assert_eq!(bench.outcomes[0], BenchOutcome::Infeasible);
    }

    #[test]
    fn deterministic() {
        let (stats, ids) = corpus();
        let a = benchmark_corpus(&pascal_gtx1080(), &stats, &ids);
        let b = benchmark_corpus(&pascal_gtx1080(), &stats, &ids);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.map(|r| r.best), y.map(|r| r.best));
        }
    }

    #[test]
    fn faults_off_measure_matches_benchmark_bit_for_bit() {
        let (stats, ids) = corpus();
        let spec = volta_v100();
        let single = benchmark_corpus(&spec, &stats, &ids);
        let bench = measure_corpus(
            &spec,
            &stats,
            &ids,
            &FaultConfig::off(),
            &TrialPolicy::default(),
        );
        assert_eq!(bench.results(), single);
        assert_eq!(bench.counters, FaultCounters::default());
    }

    #[test]
    fn faulty_measure_is_deterministic() {
        let (stats, ids) = corpus();
        let spec = pascal_gtx1080();
        let faults = FaultConfig::uniform(0.10, 42);
        let policy = TrialPolicy::default();
        let a = measure_corpus(&spec, &stats, &ids, &faults, &policy);
        let b = measure_corpus(&spec, &stats, &ids, &faults, &policy);
        assert_eq!(a, b);
        // A different fault seed changes what was injected.
        let c = measure_corpus(
            &spec,
            &stats,
            &ids,
            &FaultConfig::uniform(0.10, 43),
            &policy,
        );
        assert_ne!(a.counters, c.counters);
    }

    #[test]
    fn spikes_are_rejected_not_absorbed() {
        // With only spikes enabled (no lost trials), every cell must
        // aggregate to within jitter of the true time and keep its label.
        let (stats, ids) = corpus();
        let spec = volta_v100();
        let mut faults = FaultConfig::off();
        faults.rates.spike = 0.15;
        let bench = measure_corpus(&spec, &stats, &ids, &faults, &TrialPolicy::default());
        assert!(bench.counters.spikes > 0, "no spikes injected at 15%");
        assert!(bench.counters.outliers_rejected > 0);
        let truth = benchmark_corpus(&spec, &stats, &ids);
        for (o, t) in bench.outcomes.iter().zip(&truth) {
            let r = o.result().expect("no trials lost, so no quarantine");
            assert_eq!(r.best, t.unwrap().best, "spike flipped a label");
            for f in Format::ALL {
                let ratio = r.times.get(f) / t.unwrap().times.get(f);
                assert!((0.9..=1.1).contains(&ratio), "{f}: ratio {ratio}");
            }
        }
    }

    #[test]
    fn heavy_transients_quarantine_instead_of_panicking() {
        let (stats, ids) = corpus();
        let spec = pascal_gtx1080();
        // At a 90% transient rate nearly every attempt fails: quarantine
        // must absorb it.
        let mut faults = FaultConfig::off();
        faults.rates.transient = 0.9;
        let bench = measure_corpus(&spec, &stats, &ids, &faults, &TrialPolicy::default());
        let q = bench.quarantined();
        assert!(!q.is_empty(), "90% transient rate must quarantine");
        for (_, err) in &q {
            assert!(!err.reason().is_empty());
        }
        assert!(bench.counters.retries > 0);
        assert!(bench.counters.backoff_us > 0.0);
    }

    #[test]
    fn moderate_faults_mostly_recover() {
        let (stats, ids) = corpus();
        let spec = volta_v100();
        let bench = measure_corpus(
            &spec,
            &stats,
            &ids,
            &FaultConfig::uniform(0.05, 7),
            &TrialPolicy::default(),
        );
        let ok = bench
            .outcomes
            .iter()
            .filter(|o| o.result().is_some())
            .count();
        assert!(ok >= 9, "5% faults should recover >=9/10 cells, got {ok}");
    }

    #[test]
    fn robust_aggregate_rejects_spike() {
        let trials = [10.0, 10.1, 9.9, 10.05, 250.0];
        let (agg, rejected) = robust_aggregate(&trials, 6.0);
        assert_eq!(rejected, 1);
        assert!((agg - 10.0).abs() < 0.1, "aggregate {agg}");
    }

    #[test]
    fn robust_aggregate_keeps_agreeing_trials() {
        let trials = [5.0, 5.0, 5.0, 5.0];
        let (agg, rejected) = robust_aggregate(&trials, 6.0);
        assert_eq!(rejected, 0);
        assert_eq!(agg, 5.0);
    }
}
