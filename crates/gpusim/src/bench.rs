//! Corpus benchmarking: turn matrix statistics into ground-truth labels.

use crate::model::{predict_times, SpmvTimes};
use crate::spec::GpuSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use spsel_features::MatrixStats;
use spsel_matrix::Format;

/// Benchmark outcome for one matrix on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchResult {
    /// Modeled kernel times.
    pub times: SpmvTimes,
    /// Fastest feasible format (the ground-truth label).
    pub best: Format,
}

/// Benchmark a corpus: one result per matrix, `None` when no format fits
/// in device memory (the paper drops such matrices from that GPU's
/// dataset).
///
/// `ids[i]` is the stable identifier of matrix `i`, used to seed the
/// deterministic measurement noise.
pub fn benchmark_corpus(
    spec: &GpuSpec,
    stats: &[MatrixStats],
    ids: &[u64],
) -> Vec<Option<BenchResult>> {
    assert_eq!(stats.len(), ids.len(), "one id per matrix");
    stats
        .par_iter()
        .zip(ids.par_iter())
        .map(|(s, &id)| {
            let times = predict_times(spec, s, id);
            times.best().map(|best| BenchResult { times, best })
        })
        .collect()
}

/// Count the best-format label distribution of benchmark results (Table 3
/// rows). Index order matches [`Format::ALL`].
pub fn label_distribution(results: &[Option<BenchResult>]) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for r in results.iter().flatten() {
        counts[r.best.index()] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{pascal_gtx1080, volta_v100};

    fn corpus() -> (Vec<MatrixStats>, Vec<u64>) {
        let mut stats = Vec::new();
        // Uniform ELL-friendly matrices.
        for i in 0..5usize {
            stats.push(MatrixStats::from_row_counts(
                50_000 + i * 1000,
                50_000,
                &vec![12usize; 50_000 + i * 1000],
            ));
        }
        // Irregular CSR-friendly matrices.
        for i in 0..5usize {
            let mut counts = vec![4usize; 40_000];
            for j in (0..40_000).step_by(37 + i) {
                counts[j] = 50;
            }
            stats.push(MatrixStats::from_row_counts(40_000, 40_000, &counts));
        }
        let ids = (0..stats.len() as u64).collect();
        (stats, ids)
    }

    #[test]
    fn corpus_gets_labels() {
        let (stats, ids) = corpus();
        let results = benchmark_corpus(&pascal_gtx1080(), &stats, &ids);
        assert_eq!(results.len(), 10);
        assert!(results.iter().all(|r| r.is_some()));
        let dist = label_distribution(&results);
        assert_eq!(dist.iter().sum::<usize>(), 10);
    }

    #[test]
    fn uniform_and_irregular_get_different_labels() {
        let (stats, ids) = corpus();
        let results = benchmark_corpus(&volta_v100(), &stats, &ids);
        let first = results[0].unwrap().best;
        let last = results[9].unwrap().best;
        assert_ne!(first, last, "uniform vs irregular should differ");
    }

    #[test]
    fn oom_matrix_yields_none_only_when_everything_oom() {
        // All formats need > 0.45 * 8 GB on Pascal: ~2B nonzeros. Built
        // literally because a 400M-entry row-count vector is pointless.
        let s = MatrixStats {
            nrows: 400_000_000,
            ncols: 400_000_000,
            nnz: 2_000_000_000,
            nnz_min: 5,
            nnz_max: 5,
            nnz_mean: 5.0,
            nnz_std: 0.0,
            sig_lower: 0.0,
            sig_higher: 0.0,
            csr_max: 160,
            hyb_ell_width: 5,
            hyb_ell_size: 2_000_000_000,
            hyb_ell_nnz: 2_000_000_000,
            hyb_coo_nnz: 0,
            diagonals: 5,
            dia_size: 2_000_000_000,
            ell_size: 2_000_000_000,
        };
        let results = benchmark_corpus(&pascal_gtx1080(), &[s], &[0]);
        assert!(results[0].is_none());
    }

    #[test]
    fn deterministic() {
        let (stats, ids) = corpus();
        let a = benchmark_corpus(&pascal_gtx1080(), &stats, &ids);
        let b = benchmark_corpus(&pascal_gtx1080(), &stats, &ids);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.map(|r| r.best), y.map(|r| r.best));
        }
    }
}
