//! Deterministic measurement noise.
//!
//! Real SpMV benchmarks are noisy; the paper averages 100 trials per
//! (matrix, format). The model reproduces the residual noise of that
//! averaged measurement with a small multiplicative lognormal term that is
//! a pure function of `(matrix, format, gpu)`, so every experiment in the
//! workspace is exactly reproducible.

/// Relative standard deviation of the averaged measurement.
pub const NOISE_SIGMA: f64 = 0.02;

/// SplitMix64: a tiny, high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform value in `[0, 1)` from a hash key.
#[inline]
pub fn hash_unit(key: u64) -> f64 {
    (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// Approximately standard-normal value from a hash key (sum of four
/// uniforms, variance-corrected; adequate for mild multiplicative noise).
pub fn hash_gaussian(key: u64) -> f64 {
    let mut s = 0.0;
    for i in 0..4 {
        s += hash_unit(key.wrapping_add(i).wrapping_mul(0x2545_f491_4f6c_dd1d));
    }
    // Sum of 4 U(0,1): mean 2, variance 4/12 = 1/3.
    (s - 2.0) / (1.0f64 / 3.0).sqrt()
}

/// Multiplicative noise factor for a `(matrix, format, gpu)` measurement.
pub fn noise_factor(matrix_id: u64, format_idx: usize, gpu_idx: usize) -> f64 {
    let key = matrix_id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((format_idx as u64) << 32)
        .wrapping_add(gpu_idx as u64 + 1);
    (NOISE_SIGMA * hash_gaussian(key)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(noise_factor(42, 1, 2), noise_factor(42, 1, 2));
        assert_ne!(noise_factor(42, 1, 2), noise_factor(42, 1, 1));
        assert_ne!(noise_factor(42, 1, 2), noise_factor(43, 1, 2));
    }

    #[test]
    fn noise_is_mild() {
        for m in 0..500u64 {
            for f in 0..4 {
                let n = noise_factor(m, f, 0);
                assert!((0.85..=1.18).contains(&n), "noise {n} out of range");
            }
        }
    }

    #[test]
    fn noise_mean_near_one() {
        let mean: f64 = (0..2000u64).map(|m| noise_factor(m, 0, 1)).sum::<f64>() / 2000.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn hash_unit_in_range() {
        for k in 0..1000 {
            let u = hash_unit(k);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gaussian_moments() {
        let n = 5000;
        let vals: Vec<f64> = (0..n).map(|k| hash_gaussian(k as u64 * 7919)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
