//! Benchmarking-cost accounting (the paper's Table 8).
//!
//! Table 8 has two parts: the relative cost of converting a CSR matrix to
//! each other format (normalized to the cost of one CSR SpMV), and the
//! total wall-clock hours to benchmark the corpus on each platform assuming
//! 5 seconds to read each `.mtx` file and 100 SpMV trials per format.

use crate::model::predict_times;
use crate::spec::GpuSpec;
use serde::{Deserialize, Serialize};
use spsel_features::MatrixStats;
use spsel_matrix::Format;

/// Relative cost of converting a matrix from CSR into each format,
/// expressed in units of one CSR SpMV (the normalization of Table 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConversionCostModel {
    /// CSR -> COO: a trivial row-pointer expansion.
    pub coo: f64,
    /// CSR -> ELL: allocate and scatter into the padded slab.
    pub ell: f64,
    /// CSR -> HYB: histogram, split decision, then two scatters.
    pub hyb: f64,
}

impl Default for ConversionCostModel {
    /// The paper's Table 8 numbers (adapted from Zhao et al. [39]):
    /// COO 9x, ELL 102x, HYB 147x a single CSR SpMV.
    fn default() -> Self {
        ConversionCostModel {
            coo: 9.0,
            ell: 102.0,
            hyb: 147.0,
        }
    }
}

impl ConversionCostModel {
    /// Relative cost of converting to `format` (CSR itself costs nothing).
    /// The extended formats are not part of this (serialized) model's
    /// fields; their costs come from the format registry so the two stay
    /// in lockstep by construction.
    pub fn relative(&self, format: Format) -> f64 {
        match format {
            Format::Csr => 0.0,
            Format::Coo => self.coo,
            Format::Ell => self.ell,
            Format::Hyb => self.hyb,
            Format::Bsr | Format::Sell | Format::Dia => {
                spsel_matrix::default_conversion_cost(format)
            }
        }
    }
}

/// Relative conversion cost of every format in `Format::ALL` order under
/// the default (paper) model.
pub fn conversion_cost_relative() -> [f64; 4] {
    let m = ConversionCostModel::default();
    [
        m.relative(Format::Coo),
        m.relative(Format::Csr),
        m.relative(Format::Ell),
        m.relative(Format::Hyb),
    ]
}

/// Estimate the wall-clock hours needed to benchmark a corpus on one GPU:
/// per matrix, `read_seconds` of file IO, the format conversions, and
/// `trials` timed SpMV runs per feasible format.
pub fn estimate_benchmark_hours(
    spec: &GpuSpec,
    stats: &[MatrixStats],
    ids: &[u64],
    trials: usize,
    read_seconds: f64,
) -> f64 {
    assert_eq!(stats.len(), ids.len());
    let conv = ConversionCostModel::default();
    let mut total_s = 0.0;
    for (s, &id) in stats.iter().zip(ids) {
        let t = predict_times(spec, s, id);
        if !t.any_feasible() {
            continue; // dropped from this GPU's dataset
        }
        total_s += read_seconds;
        let csr_spmv_s = t.get(Format::Csr).min(1e9) * 1e-6;
        for f in Format::ALL {
            if t.get(f).is_finite() {
                total_s += conv.relative(f) * csr_spmv_s;
                total_s += trials as f64 * t.get(f) * 1e-6;
            }
        }
    }
    total_s / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{pascal_gtx1080, turing_rtx8000, volta_v100};

    #[test]
    fn paper_conversion_ratios() {
        let r = conversion_cost_relative();
        assert_eq!(r[Format::Coo.index()], 9.0);
        assert_eq!(r[Format::Csr.index()], 0.0);
        assert_eq!(r[Format::Ell.index()], 102.0);
        assert_eq!(r[Format::Hyb.index()], 147.0);
    }

    #[test]
    fn hours_scale_with_corpus_size() {
        let s = MatrixStats::from_row_counts(10_000, 10_000, &vec![8usize; 10_000]);
        let small: Vec<MatrixStats> = vec![s.clone(); 10];
        let large: Vec<MatrixStats> = vec![s; 100];
        let ids_s: Vec<u64> = (0..10).collect();
        let ids_l: Vec<u64> = (0..100).collect();
        let spec = pascal_gtx1080();
        let h_small = estimate_benchmark_hours(&spec, &small, &ids_s, 100, 5.0);
        let h_large = estimate_benchmark_hours(&spec, &large, &ids_l, 100, 5.0);
        assert!(h_large > 9.0 * h_small);
        // Reading dominates: 100 matrices * 5 s ~ 0.14 h minimum.
        assert!(h_large >= 100.0 * 5.0 / 3600.0);
    }

    #[test]
    fn faster_gpu_needs_fewer_hours_of_kernel_time() {
        // With zero read time the kernel/conversion time dominates, and
        // Volta's 897 GB/s beats Pascal's 320 GB/s.
        let s = MatrixStats::from_row_counts(200_000, 200_000, &vec![20usize; 200_000]);
        let corpus = vec![s; 50];
        let ids: Vec<u64> = (0..50).collect();
        let hp = estimate_benchmark_hours(&pascal_gtx1080(), &corpus, &ids, 100, 0.0);
        let hv = estimate_benchmark_hours(&volta_v100(), &corpus, &ids, 100, 0.0);
        assert!(hv < hp, "Volta {hv} !< Pascal {hp}");
    }

    #[test]
    fn infeasible_matrices_are_skipped() {
        // 1.2B uniform nonzeros: COO needs 19.2 GB (fits Turing's 21.6 GB
        // budget, not Pascal's 3.6 GB). Built literally — a 300M-entry
        // row-count vector would be pointless.
        let huge = MatrixStats {
            nrows: 300_000_000,
            ncols: 300_000_000,
            nnz: 1_200_000_000,
            nnz_min: 4,
            nnz_max: 4,
            nnz_mean: 4.0,
            nnz_std: 0.0,
            sig_lower: 0.0,
            sig_higher: 0.0,
            csr_max: 128,
            hyb_ell_width: 4,
            hyb_ell_size: 1_200_000_000,
            hyb_ell_nnz: 1_200_000_000,
            hyb_coo_nnz: 0,
            diagonals: 4,
            dia_size: 1_200_000_000,
            ell_size: 1_200_000_000,
        };
        let h = estimate_benchmark_hours(
            &turing_rtx8000(),
            std::slice::from_ref(&huge),
            &[0],
            100,
            5.0,
        );
        // Turing fits it, so it is benchmarked there.
        assert!(h > 0.0);
        // On Pascal every format is out of memory: the matrix is dropped.
        let hp = estimate_benchmark_hours(&pascal_gtx1080(), &[huge], &[0], 100, 5.0);
        assert_eq!(hp, 0.0);
    }
}
