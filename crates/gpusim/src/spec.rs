//! GPU hardware specifications (the paper's Table 2) plus per-architecture
//! kernel coefficients.

use serde::{Deserialize, Serialize};

/// The three GPU architectures evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gpu {
    /// NVIDIA GeForce GTX 1080 (desktop/gaming).
    Pascal,
    /// NVIDIA Volta V100 SXM3 (HPC).
    Volta,
    /// NVIDIA Quadro RTX 8000 (workstation).
    Turing,
}

impl Gpu {
    /// All three GPUs in the paper's column order.
    pub const ALL: [Gpu; 3] = [Gpu::Pascal, Gpu::Volta, Gpu::Turing];

    /// Architecture name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Gpu::Pascal => "Pascal",
            Gpu::Volta => "Volta",
            Gpu::Turing => "Turing",
        }
    }

    /// The full specification for this architecture.
    pub fn spec(self) -> GpuSpec {
        match self {
            Gpu::Pascal => pascal_gtx1080(),
            Gpu::Volta => volta_v100(),
            Gpu::Turing => turing_rtx8000(),
        }
    }
}

impl std::fmt::Display for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-architecture kernel-efficiency coefficients.
///
/// These are the calibration knobs of the model: they encode how well each
/// CUSP kernel maps onto each microarchitecture (e.g. the COO
/// segmented-reduction kernel is relatively stronger on Turing than on
/// Volta), which is the mechanism behind the paper's observation that
/// optimal-format labels differ across GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCoeffs {
    /// Fixed overhead per kernel launch, microseconds.
    pub launch_us: f64,
    /// Per-element cost of a serially processed row in the scalar CSR
    /// kernel, nanoseconds (memory latency per dependent load).
    pub serial_ns: f64,
    /// Streaming inefficiency of the scalar CSR kernel (uncoalesced
    /// per-thread row walks), multiplier >= 1.
    pub csr_penalty: f64,
    /// Warp-divergence sensitivity of the scalar CSR kernel: threads with
    /// short rows idle while the longest row in their warp finishes, so
    /// effective bandwidth drops with the max/mean row-length ratio.
    pub csr_divergence: f64,
    /// Streaming inefficiency of the COO segmented-reduction kernel.
    pub coo_factor: f64,
    /// Streaming efficiency of the fully coalesced ELL kernel.
    pub ell_factor: f64,
    /// Extra kernel launches of the HYB two-phase execution.
    pub hyb_extra_launches: f64,
    /// Fraction of device memory a format structure may occupy before the
    /// benchmark run is considered out-of-memory.
    pub mem_fraction: f64,
}

/// Full description of one GPU: Table 2 hardware numbers plus kernel
/// coefficients.
///
/// Serialize-only: the `&'static str` model name cannot be deserialized,
/// and nothing round-trips specs (they are compiled-in constants).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuSpec {
    /// Architecture tag.
    pub gpu: Gpu,
    /// Marketing model name.
    pub model: &'static str,
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// L1 cache per SM, KiB.
    pub l1_kib: usize,
    /// L2 cache, KiB.
    pub l2_kib: usize,
    /// Device memory, GB.
    pub memory_gb: usize,
    /// Memory bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Kernel coefficients.
    pub coeffs: KernelCoeffs,
}

impl GpuSpec {
    /// Maximum resident threads the model assumes (2048 per SM).
    pub fn max_threads(&self) -> f64 {
        (self.sms * 2048) as f64
    }

    /// L2 size in bytes.
    pub fn l2_bytes(&self) -> f64 {
        (self.l2_kib * 1024) as f64
    }

    /// Device memory in bytes.
    pub fn memory_bytes(&self) -> f64 {
        self.memory_gb as f64 * 1e9
    }

    /// Bandwidth in bytes per microsecond.
    pub fn bytes_per_us(&self) -> f64 {
        self.bandwidth_gbs * 1e3
    }
}

/// NVIDIA GeForce GTX 1080 (Pascal): Table 2 column 1.
pub fn pascal_gtx1080() -> GpuSpec {
    GpuSpec {
        gpu: Gpu::Pascal,
        model: "GTX 1080",
        sms: 20,
        l1_kib: 48,
        l2_kib: 2048,
        memory_gb: 8,
        bandwidth_gbs: 320.0,
        coeffs: KernelCoeffs {
            launch_us: 3.5,
            serial_ns: 14.0,
            csr_divergence: 0.03,
            csr_penalty: 1.15,
            coo_factor: 1.95,
            ell_factor: 1.09,
            hyb_extra_launches: 2.0,
            mem_fraction: 0.45,
        },
    }
}

/// NVIDIA Volta V100 SXM3: Table 2 column 2.
pub fn volta_v100() -> GpuSpec {
    GpuSpec {
        gpu: Gpu::Volta,
        model: "V100 SXM3",
        sms: 80,
        l1_kib: 128,
        l2_kib: 6144,
        memory_gb: 32,
        bandwidth_gbs: 897.0,
        coeffs: KernelCoeffs {
            launch_us: 4.0,
            serial_ns: 8.0,
            csr_divergence: 0.02,
            csr_penalty: 1.10,
            coo_factor: 2.6,
            ell_factor: 1.05,
            hyb_extra_launches: 2.0,
            mem_fraction: 0.45,
        },
    }
}

/// NVIDIA Quadro RTX 8000 (Turing): Table 2 column 3.
pub fn turing_rtx8000() -> GpuSpec {
    GpuSpec {
        gpu: Gpu::Turing,
        model: "RTX 8000",
        sms: 72,
        l1_kib: 64,
        l2_kib: 6144,
        memory_gb: 48,
        bandwidth_gbs: 672.0,
        coeffs: KernelCoeffs {
            launch_us: 3.8,
            serial_ns: 10.0,
            csr_divergence: 0.03,
            csr_penalty: 1.12,
            coo_factor: 1.35,
            ell_factor: 1.22,
            hyb_extra_launches: 1.5,
            mem_fraction: 0.45,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_hardware_numbers() {
        let p = pascal_gtx1080();
        assert_eq!((p.sms, p.l1_kib, p.l2_kib, p.memory_gb), (20, 48, 2048, 8));
        assert_eq!(p.bandwidth_gbs, 320.0);
        let v = volta_v100();
        assert_eq!(
            (v.sms, v.l1_kib, v.l2_kib, v.memory_gb),
            (80, 128, 6144, 32)
        );
        assert_eq!(v.bandwidth_gbs, 897.0);
        let t = turing_rtx8000();
        assert_eq!((t.sms, t.l1_kib, t.l2_kib, t.memory_gb), (72, 64, 6144, 48));
        assert_eq!(t.bandwidth_gbs, 672.0);
    }

    #[test]
    fn derived_quantities() {
        let p = pascal_gtx1080();
        assert_eq!(p.max_threads(), 40960.0);
        assert_eq!(p.l2_bytes(), 2048.0 * 1024.0);
        assert_eq!(p.bytes_per_us(), 320_000.0);
    }

    #[test]
    fn gpu_enum_roundtrip() {
        for g in Gpu::ALL {
            assert_eq!(g.spec().gpu, g);
        }
        assert_eq!(Gpu::Turing.to_string(), "Turing");
    }
}
