//! The per-format SpMV cost model.

use crate::noise::noise_factor;
use crate::spec::GpuSpec;
use serde::{Deserialize, Serialize};
use spsel_features::MatrixStats;
use spsel_matrix::{Format, FormatRegistry, Workload};

/// Modeled kernel times in microseconds, indexed by [`Format::index`].
/// Out-of-memory formats are `f64::INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpmvTimes {
    /// Microseconds per format in `Format::ALL` order.
    pub us: [f64; 4],
}

impl SpmvTimes {
    /// Time of one format.
    pub fn get(&self, f: Format) -> f64 {
        self.us[f.index()]
    }

    /// The fastest *feasible* format, or `None` if every format is
    /// out-of-memory.
    pub fn best(&self) -> Option<Format> {
        let (mut best, mut best_t) = (None, f64::INFINITY);
        for f in Format::ALL {
            let t = self.get(f);
            if t < best_t {
                best_t = t;
                best = Some(f);
            }
        }
        best
    }

    /// Speedup of the best format over CSR (`>= 1` unless CSR is optimal).
    pub fn best_speedup_over_csr(&self) -> f64 {
        match self.best() {
            Some(b) => self.get(Format::Csr) / self.get(b),
            None => 1.0,
        }
    }

    /// Whether any format fits in memory.
    pub fn any_feasible(&self) -> bool {
        self.us.iter().any(|t| t.is_finite())
    }
}

/// Per-format decomposition of a modeled kernel time — the "explaining"
/// part of the reproduction: every prediction can be broken into launch
/// overhead, bandwidth-bound streaming, and (for CSR) the serialization
/// straggler, so a user can see *why* a format wins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Kernel-launch overhead, microseconds.
    pub launch_us: f64,
    /// Bandwidth-bound streaming time, microseconds (for HYB this is the
    /// sum of its ELL and COO phases).
    pub stream_us: f64,
    /// Serialization straggler (scalar-CSR longest row), microseconds;
    /// zero for the other formats.
    pub straggler_us: f64,
    /// Occupancy factor applied to the streaming term (1 = saturated).
    pub utilization: f64,
    /// Whether the format fits in device memory.
    pub feasible: bool,
}

impl TimeBreakdown {
    /// Total noise-free kernel time of this breakdown.
    pub fn total_us(&self) -> f64 {
        if !self.feasible {
            return f64::INFINITY;
        }
        self.launch_us + self.stream_us.max(self.straggler_us)
    }

    fn infeasible() -> Self {
        TimeBreakdown {
            launch_us: 0.0,
            stream_us: 0.0,
            straggler_us: 0.0,
            utilization: 0.0,
            feasible: false,
        }
    }
}

/// Bytes of `x`-vector traffic per gathered nonzero: nearly free when the
/// vector fits in L2, a full 8-byte miss plus partial-line waste otherwise.
fn x_bytes_per_nnz(spec: &GpuSpec, stats: &MatrixStats) -> f64 {
    let vec_bytes = stats.ncols as f64 * 8.0;
    let pressure = (vec_bytes / spec.l2_bytes()).min(1.0);
    8.0 * (0.15 + 0.85 * pressure)
}

/// Occupancy: the fraction of peak bandwidth reachable with `items`
/// independent work items on this GPU. Needs a few items per thread to hide
/// latency.
fn utilization(spec: &GpuSpec, items: f64) -> f64 {
    (items / (spec.max_threads() * 2.0)).clamp(0.02, 1.0)
}

/// Decompose the four kernel times for a matrix described by `stats`
/// (noise-free). Order matches [`Format::ALL`].
pub fn explain_times(spec: &GpuSpec, stats: &MatrixStats) -> [TimeBreakdown; 4] {
    let c = &spec.coeffs;
    let bw = spec.bytes_per_us();
    let xb = x_bytes_per_nnz(spec, stats);
    let (nnz, nrows) = (stats.nnz as f64, stats.nrows as f64);
    let mem_cap = spec.memory_bytes() * c.mem_fraction;
    let [coo_bytes_raw, csr_bytes_raw, ell_bytes_raw, hyb_bytes_raw] = stats.format_bytes();

    // COO: segmented reduction over nnz items — oblivious to row imbalance,
    // parallel over nonzeros (good occupancy even for few-row matrices),
    // but an extra pass and atomics make it stream-inefficient.
    let coo = if coo_bytes_raw as f64 > mem_cap {
        TimeBreakdown::infeasible()
    } else {
        let bytes = nnz * 16.0 + nnz * xb;
        let util = utilization(spec, nnz / 32.0);
        TimeBreakdown {
            launch_us: 2.0 * c.launch_us,
            stream_us: bytes * c.coo_factor / (bw * util),
            straggler_us: 0.0,
            utilization: util,
            feasible: true,
        }
    };

    // CSR (scalar kernel): one thread per row. Streaming term plus a
    // serialization term — the warp whose thread owns the longest row
    // finishes last, each of its loads latency-bound.
    let csr = if csr_bytes_raw as f64 > mem_cap {
        TimeBreakdown::infeasible()
    } else {
        let bytes = nnz * 12.0 + nrows * 16.0 + nnz * xb;
        // Divergence: the warp finishes with its longest row, so the
        // max/mean row-length ratio degrades effective bandwidth.
        let divergence = if stats.nnz_mean > 0.0 {
            (stats.nnz_max as f64 / (stats.nnz_mean + 1.0)).clamp(1.0, 32.0)
        } else {
            1.0
        };
        let penalty = c.csr_penalty * (1.0 + c.csr_divergence * (divergence - 1.0));
        let util = utilization(spec, nrows);
        TimeBreakdown {
            launch_us: c.launch_us,
            stream_us: bytes * penalty / (bw * util),
            straggler_us: stats.nnz_max as f64 * c.serial_ns / 1000.0,
            utilization: util,
            feasible: true,
        }
    };

    // ELL: fully coalesced streaming of the padded slab; pays for padding
    // in bandwidth and can exhaust memory.
    let ell = if ell_bytes_raw as f64 > mem_cap {
        TimeBreakdown::infeasible()
    } else {
        let bytes = stats.ell_size as f64 * 12.0 + nnz * xb;
        let util = utilization(spec, nrows);
        TimeBreakdown {
            launch_us: c.launch_us,
            stream_us: bytes * c.ell_factor / (bw * util),
            straggler_us: 0.0,
            utilization: util,
            feasible: true,
        }
    };

    // HYB: ELL phase plus COO phase plus extra launches.
    let hyb = if hyb_bytes_raw as f64 > mem_cap {
        TimeBreakdown::infeasible()
    } else {
        let ell_bytes = stats.hyb_ell_size as f64 * 12.0 + stats.hyb_ell_nnz as f64 * xb;
        let coo_nnz = stats.hyb_coo_nnz as f64;
        let coo_bytes = coo_nnz * (16.0 + xb);
        let util = utilization(spec, nrows);
        let ell_t = ell_bytes * c.ell_factor / (bw * util);
        let coo_t = if coo_nnz > 0.0 {
            coo_bytes * c.coo_factor / (bw * utilization(spec, (coo_nnz / 32.0).max(1.0)))
        } else {
            0.0
        };
        TimeBreakdown {
            launch_us: (1.0 + c.hyb_extra_launches) * c.launch_us,
            stream_us: ell_t + coo_t,
            straggler_us: 0.0,
            utilization: util,
            feasible: true,
        }
    };

    [coo, csr, ell, hyb]
}

/// Model the four kernel times for a matrix described by `stats`.
///
/// `matrix_id` seeds the deterministic measurement noise; pass a stable
/// per-matrix identifier.
pub fn predict_times(spec: &GpuSpec, stats: &MatrixStats, matrix_id: u64) -> SpmvTimes {
    let gpu_idx = spec.gpu as usize;
    let breakdown = explain_times(spec, stats);
    let mut us = [0.0; 4];
    for (fi, b) in breakdown.iter().enumerate() {
        let t = b.total_us();
        us[fi] = if t.is_finite() {
            t * noise_factor(matrix_id, fi, gpu_idx)
        } else {
            t
        };
    }
    SpmvTimes { us }
}

/// The fastest feasible format for a matrix on a GPU.
pub fn best_format(spec: &GpuSpec, stats: &MatrixStats, matrix_id: u64) -> Option<Format> {
    predict_times(spec, stats, matrix_id).best()
}

// --------------------------------------------------------- format zoo model
//
// Everything below is the registry/workload-aware extension. The four
// CUSP formats under `Workload::SpMv` delegate to `explain_times`, so the
// default registry reproduces every historical prediction bit for bit;
// BSR/SELL/DIA and the SpMM workloads are new model surface.

/// Fixed per-format stream-efficiency factors of the extended formats.
/// They live here (not in `KernelCoeffs`) because `GpuSpec` is serialized
/// inside artifacts: adding coefficients would break old artifacts.
mod zoo {
    /// BSR streams dense blocks — near-perfectly coalesced.
    pub const BSR_FACTOR: f64 = 0.95;
    /// SELL's slice descriptors add a small indirection on top of ELL.
    pub const SELL_FACTOR_VS_ELL: f64 = 1.02;
    /// Fraction of ELL's padding that σ-scoped sorting fails to recover.
    pub const SELL_PAD_RESIDUE: f64 = 0.2;
    /// DIA streams lanes with contiguous x access.
    pub const DIA_FACTOR: f64 = 0.9;
    /// Fraction of x gather traffic a 2x2 block shares across its rows.
    pub const BSR_X_SHARE: f64 = 0.6;
    /// SpMM: COO's k atomic adds per nonzero contend; penalty per column.
    pub const COO_ATOMIC_PER_K: f64 = 0.05;
    /// SpMM: dense-row traffic BSR register tiling avoids.
    pub const BSR_DENSE_SHARE: f64 = 0.55;
}

/// Modeled BSR slab slots (stored values including zero fill) for 2x2
/// blocks. Block fill is driven by column locality: matrices that pack
/// their diagonals densely (`nnz / dia_size` high) cluster into blocks,
/// scattered matrices decay toward one nonzero per 4-slot block.
fn bsr_slab_slots(stats: &MatrixStats) -> f64 {
    let nnz = stats.nnz as f64;
    let locality = if stats.dia_size > 0 {
        (nnz / stats.dia_size as f64).clamp(0.0, 1.0)
    } else {
        1.0
    };
    let fill = 0.25 + 0.75 * locality;
    nnz / fill
}

/// Modeled SELL-C-σ slab slots: the nonzeros plus the fraction of ELL's
/// padding the scoped sort cannot recover.
fn sell_slab_slots(stats: &MatrixStats) -> f64 {
    let nnz = stats.nnz as f64;
    nnz + zoo::SELL_PAD_RESIDUE * (stats.ell_size as f64 - nnz).max(0.0)
}

/// The diagonal-count budget DIA conversion accepts (kept in lockstep
/// with the registry's `DiaSpec`).
fn dia_limit(stats: &MatrixStats) -> usize {
    ((stats.nrows + stats.ncols) / 4).max(16)
}

/// Noise-free SpMV breakdown for any registered format. CUSP formats are
/// the `explain_times` entries unchanged.
fn spmv_breakdown(spec: &GpuSpec, stats: &MatrixStats, format: Format) -> TimeBreakdown {
    if format.index() < Format::COUNT {
        return explain_times(spec, stats)[format.index()];
    }
    let c = &spec.coeffs;
    let bw = spec.bytes_per_us();
    let xb = x_bytes_per_nnz(spec, stats);
    let (nnz, nrows) = (stats.nnz as f64, stats.nrows as f64);
    let mem_cap = spec.memory_bytes() * c.mem_fraction;
    match format {
        Format::Bsr => {
            // 2x2 blocks: values slab + one u32 per block + block row
            // pointers; the two rows of a block share their x gathers.
            let slab = bsr_slab_slots(stats);
            let store = slab * 8.0 + (slab / 4.0) * 4.0 + (nrows / 2.0 + 1.0) * 8.0;
            if store > mem_cap {
                return TimeBreakdown::infeasible();
            }
            let bytes = store + nnz * xb * zoo::BSR_X_SHARE;
            let util = utilization(spec, (nrows / 2.0).max(1.0));
            TimeBreakdown {
                launch_us: c.launch_us,
                stream_us: bytes * zoo::BSR_FACTOR / (bw * util),
                straggler_us: 0.0,
                utilization: util,
                feasible: true,
            }
        }
        Format::Sell => {
            // ELL's coalesced slab walk over a σ-compacted slab, plus the
            // row permutation on the output side.
            let slab = sell_slab_slots(stats);
            let store = slab * 12.0 + nrows * 4.0;
            if store > mem_cap {
                return TimeBreakdown::infeasible();
            }
            let bytes = store + nnz * xb + nrows * 8.0;
            let util = utilization(spec, nrows);
            TimeBreakdown {
                launch_us: c.launch_us,
                stream_us: bytes * c.ell_factor * zoo::SELL_FACTOR_VS_ELL / (bw * util),
                straggler_us: 0.0,
                utilization: util,
                feasible: true,
            }
        }
        Format::Dia => {
            let store = stats.dia_size as f64 * 8.0;
            if stats.diagonals > dia_limit(stats) || store > mem_cap {
                return TimeBreakdown::infeasible();
            }
            // Lane-major streaming: x is read contiguously per lane, so
            // the gather is line-efficient even when x misses L2.
            let bytes = store + stats.dia_size as f64 * 2.0 + nrows * 8.0;
            let util = utilization(spec, nrows);
            TimeBreakdown {
                launch_us: c.launch_us,
                stream_us: bytes * zoo::DIA_FACTOR / (bw * util),
                straggler_us: 0.0,
                utilization: util,
                feasible: true,
            }
        }
        _ => unreachable!("CUSP formats handled above"),
    }
}

/// Bytes of dense-operand traffic per (nonzero, column) pair in SpMM:
/// the `k`-wide dense row is contiguous, so even an L2 miss streams whole
/// lines instead of wasting them on an 8-byte gather.
fn dense_bytes_per_nnz_col(spec: &GpuSpec, stats: &MatrixStats, k: usize) -> f64 {
    let operand_bytes = stats.ncols as f64 * k as f64 * 8.0;
    let pressure = (operand_bytes / spec.l2_bytes()).min(1.0);
    2.0 + 6.0 * pressure
}

/// Noise-free SpMM (`k` dense columns) breakdown for any registered
/// format, built from the same launch/stream/straggler decomposition as
/// SpMV: the matrix is streamed once, the dense operand `k`-wide.
fn spmm_breakdown(spec: &GpuSpec, stats: &MatrixStats, format: Format, k: usize) -> TimeBreakdown {
    let base = spmv_breakdown(spec, stats, format);
    if !base.feasible {
        return base;
    }
    let c = &spec.coeffs;
    let bw = spec.bytes_per_us();
    let kf = k as f64;
    let xk = dense_bytes_per_nnz_col(spec, stats, k);
    let (nnz, nrows) = (stats.nnz as f64, stats.nrows as f64);
    let out_bytes = nrows * kf * 8.0;
    let (matrix_bytes, eff, items, extra_launches) = match format {
        // COO performs k atomic adds per nonzero; contention grows with k.
        Format::Coo => (
            nnz * 16.0,
            c.coo_factor * (1.0 + zoo::COO_ATOMIC_PER_K * kf),
            nnz / 32.0,
            1.0,
        ),
        Format::Csr => {
            let divergence = if stats.nnz_mean > 0.0 {
                (stats.nnz_max as f64 / (stats.nnz_mean + 1.0)).clamp(1.0, 32.0)
            } else {
                1.0
            };
            let penalty = c.csr_penalty * (1.0 + c.csr_divergence * (divergence - 1.0));
            (nnz * 12.0 + nrows * 16.0, penalty, nrows, 0.0)
        }
        Format::Ell => (stats.ell_size as f64 * 12.0, c.ell_factor, nrows, 0.0),
        Format::Hyb => {
            // Blend: ELL phase plus a COO tail with the atomic-k penalty.
            let tail = stats.hyb_coo_nnz as f64;
            let bytes = stats.hyb_ell_size as f64 * 12.0 + tail * 16.0;
            let frac = if nnz > 0.0 { tail / nnz } else { 0.0 };
            let eff = c.ell_factor * (1.0 - frac)
                + c.coo_factor * (1.0 + zoo::COO_ATOMIC_PER_K * kf) * frac;
            (bytes, eff, nrows, c.hyb_extra_launches)
        }
        // Register tiling: a block's dense rows live in registers across
        // its columns, shaving dense traffic.
        Format::Bsr => {
            let slab = bsr_slab_slots(stats);
            (
                slab * 8.0 + (slab / 4.0) * 4.0,
                zoo::BSR_FACTOR,
                (nrows / 2.0).max(1.0),
                0.0,
            )
        }
        Format::Sell => (
            sell_slab_slots(stats) * 12.0,
            c.ell_factor * zoo::SELL_FACTOR_VS_ELL,
            nrows,
            0.0,
        ),
        Format::Dia => (stats.dia_size as f64 * 8.0, zoo::DIA_FACTOR, nrows, 0.0),
    };
    let dense_share = match format {
        Format::Bsr => zoo::BSR_DENSE_SHARE,
        _ => 1.0,
    };
    let bytes = matrix_bytes + nnz * kf * xk * dense_share + out_bytes;
    let util = utilization(spec, items * kf.min(4.0));
    TimeBreakdown {
        launch_us: (1.0 + extra_launches) * c.launch_us,
        stream_us: bytes * eff / (bw * util),
        // The straggler row's loads each feed k register FMAs: the
        // serialized chain is load-bound, so it does not scale with k.
        straggler_us: base.straggler_us,
        utilization: util,
        feasible: true,
    }
}

/// Noise-free breakdown of one `(format, workload)` kernel. For the four
/// CUSP formats under [`Workload::SpMv`] this is exactly the matching
/// [`explain_times`] entry.
pub fn explain_workload(
    spec: &GpuSpec,
    stats: &MatrixStats,
    format: Format,
    workload: Workload,
) -> TimeBreakdown {
    match workload {
        Workload::SpMv => spmv_breakdown(spec, stats, format),
        Workload::SpMm { k } => spmm_breakdown(spec, stats, format, k),
    }
}

/// Modeled kernel times for every format of a registry under one
/// workload, indexed by [`Format::index`]. Formats outside the registry
/// are `f64::INFINITY`, same as out-of-memory ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTimes {
    /// Microseconds per stable format id (`Format::UNIVERSE` order).
    pub us: [f64; Format::UNIVERSE_COUNT],
}

impl WorkloadTimes {
    /// Time of one format.
    pub fn get(&self, f: Format) -> f64 {
        self.us[f.index()]
    }

    /// The fastest feasible registered format.
    pub fn best(&self) -> Option<Format> {
        let (mut best, mut best_t) = (None, f64::INFINITY);
        for f in Format::UNIVERSE {
            let t = self.get(f);
            if t < best_t {
                best_t = t;
                best = Some(f);
            }
        }
        best
    }
}

/// Model the kernel times of every format in `registry` for `workload`.
///
/// Noise lanes: SpMV keeps the historical `(matrix, format, gpu)` lanes —
/// [`predict_times`] and this function agree exactly on the CUSP formats —
/// while each SpMM `k` draws from its own disjoint lane block.
pub fn predict_workload_times(
    spec: &GpuSpec,
    stats: &MatrixStats,
    matrix_id: u64,
    registry: &FormatRegistry,
    workload: Workload,
) -> WorkloadTimes {
    let gpu_idx = spec.gpu as usize;
    let mut us = [f64::INFINITY; Format::UNIVERSE_COUNT];
    for f in registry.formats() {
        let t = explain_workload(spec, stats, f, workload).total_us();
        us[f.index()] = if t.is_finite() {
            let lane = f.index() + 8 * workload.lane() as usize;
            t * noise_factor(matrix_id, lane, gpu_idx)
        } else {
            t
        };
    }
    WorkloadTimes { us }
}

/// The fastest feasible format of `registry` for `workload`.
pub fn best_format_for(
    spec: &GpuSpec,
    stats: &MatrixStats,
    matrix_id: u64,
    registry: &FormatRegistry,
    workload: Workload,
) -> Option<Format> {
    predict_workload_times(spec, stats, matrix_id, registry, workload).best()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{pascal_gtx1080, turing_rtx8000, volta_v100};
    use spsel_matrix::{gen, CsrMatrix};

    fn stats_of(coo: &spsel_matrix::CooMatrix) -> MatrixStats {
        MatrixStats::from_csr(&CsrMatrix::from(coo))
    }

    #[test]
    fn all_times_positive_and_finite_for_modest_matrix() {
        let s = stats_of(&gen::random_uniform(5000, 5000, 10, 1));
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            let t = predict_times(&gpu, &s, 7);
            for f in Format::ALL {
                assert!(
                    t.get(f).is_finite() && t.get(f) > 0.0,
                    "{f} on {}",
                    gpu.model
                );
            }
        }
    }

    #[test]
    fn uniform_rows_favor_ell_over_csr() {
        // Large, perfectly uniform matrix: ELL has zero padding and beats
        // the penalized CSR stream.
        let s = MatrixStats::from_row_counts(200_000, 200_000, &vec![16usize; 200_000]);
        for gpu in [pascal_gtx1080(), volta_v100()] {
            let t = predict_times(&gpu, &s, 3);
            assert!(
                t.get(Format::Ell) < t.get(Format::Csr),
                "{}: ELL {} !< CSR {}",
                gpu.model,
                t.get(Format::Ell),
                t.get(Format::Csr)
            );
        }
        // Turing's calibrated ELL coefficient makes short uniform rows a
        // borderline case there (matching its low ELL share in Table 3);
        // require only that the two formats are competitive.
        let t = predict_times(&turing_rtx8000(), &s, 3);
        let ratio = t.get(Format::Ell) / t.get(Format::Csr);
        assert!(ratio < 1.25, "Turing ELL/CSR ratio {ratio}");
    }

    #[test]
    fn heavy_padding_favors_csr_over_ell() {
        // Mildly irregular rows: max 60 vs mean ~6 means ELL stores 10x.
        let mut counts = vec![5usize; 100_000];
        for i in (0..100_000).step_by(50) {
            counts[i] = 60;
        }
        let s = MatrixStats::from_row_counts(100_000, 100_000, &counts);
        let t = predict_times(&turing_rtx8000(), &s, 11);
        assert!(t.get(Format::Csr) < t.get(Format::Ell));
    }

    #[test]
    fn mawi_like_skew_makes_csr_catastrophic() {
        // One row with 30M nonzeros (the `mawi` network traces have
        // multi-million-degree rows): the scalar CSR kernel serializes it
        // in a single thread.
        let mut counts = vec![3usize; 2_000_000];
        counts[1234] = 30_000_000;
        let s = MatrixStats::from_row_counts(2_000_000, 2_000_000, &counts);
        let t = predict_times(&turing_rtx8000(), &s, 5);
        let best = t.best().unwrap();
        assert_ne!(best, Format::Csr);
        let slowdown = t.get(Format::Csr) / t.get(best);
        assert!(
            slowdown > 15.0,
            "expected order-of-magnitude CSR slowdown, got {slowdown}"
        );
    }

    #[test]
    fn tiny_matrix_prefers_single_kernel_formats() {
        // Launch overhead dominates: HYB's extra kernels must lose.
        let s = MatrixStats::from_row_counts(200, 200, &vec![4usize; 200]);
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            let t = predict_times(&gpu, &s, 2);
            let best = t.best().unwrap();
            assert_ne!(best, Format::Hyb, "{}", gpu.model);
        }
    }

    #[test]
    fn huge_ell_oom_on_pascal_feasible_on_turing() {
        // ELL slab of 12 bytes * 400M slots = 4.8 GB: above Pascal's
        // 8 GB * 0.45 budget, below Turing's 48 GB * 0.45. CSR stays at
        // ~2.4 GB, under Pascal's budget.
        let mut counts = vec![100usize; 2_000_000];
        counts[0] = 200; // widen the slab: 2M rows x 200 = 400M slots
        let s = MatrixStats::from_row_counts(2_000_000, 2_000_000, &counts);
        assert_eq!(s.ell_size, 400_000_000);
        let tp = predict_times(&pascal_gtx1080(), &s, 1);
        let tt = predict_times(&turing_rtx8000(), &s, 1);
        assert!(tp.get(Format::Ell).is_infinite());
        assert!(tt.get(Format::Ell).is_finite());
        // CSR remains feasible on Pascal.
        assert!(tp.get(Format::Csr).is_finite());
    }

    #[test]
    fn best_never_returns_infeasible() {
        let mut counts = vec![2usize; 100];
        counts[0] = 50;
        let s = MatrixStats::from_row_counts(100, 100, &counts);
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            let t = predict_times(&gpu, &s, 9);
            let b = t.best().unwrap();
            assert!(t.get(b).is_finite());
        }
    }

    #[test]
    fn noise_preserves_clear_winners() {
        // The same matrix under different ids keeps its best format when
        // the gap is large.
        let mut counts = vec![3usize; 500_000];
        counts[0] = 800_000;
        let s = MatrixStats::from_row_counts(500_000, 500_000, &counts);
        let spec = volta_v100();
        let first = best_format(&spec, &s, 0).unwrap();
        for id in 1..50 {
            assert_eq!(best_format(&spec, &s, id).unwrap(), first);
        }
    }

    #[test]
    fn explain_matches_predict_up_to_noise() {
        let s = stats_of(&gen::power_law(1000, 1000, 2, 2.3, 300, 7));
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            let breakdown = explain_times(&gpu, &s);
            let times = predict_times(&gpu, &s, 42);
            for f in Format::ALL {
                let b = breakdown[f.index()];
                let t = times.get(f);
                assert_eq!(b.feasible, t.is_finite());
                if b.feasible {
                    // Noise is a few percent multiplicative.
                    let ratio = t / b.total_us();
                    assert!((0.85..=1.18).contains(&ratio), "{f}: ratio {ratio}");
                    assert!(b.launch_us > 0.0);
                    assert!(b.stream_us > 0.0);
                    assert!((0.0..=1.0).contains(&b.utilization));
                }
            }
            // Only CSR carries a straggler term.
            assert_eq!(breakdown[Format::Coo.index()].straggler_us, 0.0);
            assert_eq!(breakdown[Format::Ell.index()].straggler_us, 0.0);
            assert!(breakdown[Format::Csr.index()].straggler_us > 0.0);
        }
    }

    #[test]
    fn straggler_explains_hub_row_losses() {
        // For a hub matrix the CSR breakdown must be straggler-dominated —
        // the model's explanation of the mawi anecdote.
        let mut counts = vec![3usize; 2_000_000];
        counts[0] = 30_000_000;
        let s = MatrixStats::from_row_counts(2_000_000, 2_000_000, &counts);
        let b = explain_times(&turing_rtx8000(), &s);
        let csr = b[Format::Csr.index()];
        assert!(csr.straggler_us > 10.0 * csr.stream_us);
    }

    #[test]
    fn speedup_over_csr_at_least_one() {
        let s = stats_of(&gen::power_law(2000, 2000, 2, 2.1, 800, 3));
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            let t = predict_times(&gpu, &s, 13);
            assert!(t.best_speedup_over_csr() >= 1.0);
        }
    }

    #[test]
    fn default_registry_spmv_is_bit_identical_to_predict_times() {
        // The whole point of the registry refactor: the 4-format SpMV
        // path must reproduce the historical model exactly — same
        // formulas, same noise lanes, same bits.
        let reg = FormatRegistry::cusp_default();
        let mats = [
            stats_of(&gen::random_uniform(3000, 3000, 9, 1)),
            stats_of(&gen::power_law(1500, 1500, 2, 2.2, 400, 5)),
            stats_of(&gen::banded(2000, 6, 0.8, 9)),
        ];
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            for (id, s) in mats.iter().enumerate() {
                let old = predict_times(&gpu, s, id as u64 * 37 + 1);
                let new = predict_workload_times(&gpu, s, id as u64 * 37 + 1, &reg, Workload::SpMv);
                for f in Format::ALL {
                    assert_eq!(
                        old.get(f).to_bits(),
                        new.get(f).to_bits(),
                        "{f} diverged on {}",
                        gpu.model
                    );
                }
                for f in [Format::Bsr, Format::Sell, Format::Dia] {
                    assert!(new.get(f).is_infinite(), "{f} outside the default registry");
                }
                assert_eq!(old.best(), new.best());
            }
        }
    }

    #[test]
    fn extended_formats_produce_finite_spmv_times() {
        let s = stats_of(&gen::banded(4000, 5, 0.9, 3));
        let reg = FormatRegistry::full();
        let t = predict_workload_times(&volta_v100(), &s, 11, &reg, Workload::SpMv);
        for f in Format::UNIVERSE {
            assert!(t.get(f).is_finite() && t.get(f) > 0.0, "{f}");
        }
    }

    #[test]
    fn dia_is_infeasible_for_scattered_matrices() {
        // Power-law structure occupies nearly every diagonal: the model
        // must reject DIA exactly like the registry's conversion does.
        let s = stats_of(&gen::power_law(800, 800, 2, 2.1, 300, 7));
        assert!(s.diagonals > dia_limit(&s));
        let b = explain_workload(&volta_v100(), &s, Format::Dia, Workload::SpMv);
        assert!(!b.feasible);
    }

    #[test]
    fn spmm_amortizes_matrix_traffic_per_column() {
        // Per dense column, SpMM must be cheaper than SpMV: the matrix is
        // streamed once for k columns.
        let s = stats_of(&gen::random_uniform(5000, 5000, 10, 2));
        for f in [Format::Csr, Format::Ell] {
            let mv = explain_workload(&volta_v100(), &s, f, Workload::SpMv).total_us();
            let mm = explain_workload(&volta_v100(), &s, f, Workload::SpMm { k: 32 }).total_us();
            assert!(mm < 32.0 * mv, "{f}: {mm} !< 32 * {mv}");
            assert!(mm > mv, "{f}: k=32 cannot be cheaper than one SpMV");
        }
    }

    #[test]
    fn coo_atomics_hurt_at_high_k() {
        // COO's relative standing must degrade as k grows: each nonzero
        // issues k atomic adds while CSR accumulates in registers.
        let s = stats_of(&gen::random_uniform(4000, 4000, 8, 4));
        let spec = volta_v100();
        let ratio_at = |k: usize| {
            let coo = explain_workload(&spec, &s, Format::Coo, Workload::SpMm { k }).total_us();
            let csr = explain_workload(&spec, &s, Format::Csr, Workload::SpMm { k }).total_us();
            coo / csr
        };
        assert!(ratio_at(32) > ratio_at(4));
        assert!(ratio_at(4) > ratio_at(1));
    }

    #[test]
    fn workloads_disagree_on_some_matrices() {
        // The cross-workload disagreement table must have nonzero rows:
        // over a family sweep, at least one matrix picks different
        // formats under SpMV and SpMM-32 in the extended registry.
        let reg = FormatRegistry::extended();
        let spec = turing_rtx8000();
        let mut disagree = 0;
        for seed in 0..40u64 {
            let s = match seed % 4 {
                0 => stats_of(&gen::random_uniform(2000, 2000, 6, seed)),
                1 => stats_of(&gen::banded(3000, 4, 0.8, seed)),
                2 => stats_of(&gen::power_law(1200, 1200, 2, 2.3, 400, seed)),
                _ => stats_of(&gen::row_skewed(1500, 1500, 2, 90, 0.1, seed)),
            };
            let a = best_format_for(&spec, &s, seed, &reg, Workload::SpMv);
            let b = best_format_for(&spec, &s, seed, &reg, Workload::SpMm { k: 32 });
            if a != b {
                disagree += 1;
            }
        }
        assert!(disagree > 0, "no matrix changed label across workloads");
    }

    #[test]
    fn spmm_noise_lanes_are_disjoint_from_spmv() {
        let reg = FormatRegistry::cusp_default();
        let s = stats_of(&gen::random_uniform(3000, 3000, 9, 1));
        let spec = volta_v100();
        let mv = predict_workload_times(&spec, &s, 5, &reg, Workload::SpMv);
        let mm4 = predict_workload_times(&spec, &s, 5, &reg, Workload::SpMm { k: 4 });
        let mm32 = predict_workload_times(&spec, &s, 5, &reg, Workload::SpMm { k: 32 });
        // Same breakdown would still noise differently per workload.
        for f in Format::ALL {
            let n_mv = mv.get(f) / explain_workload(&spec, &s, f, Workload::SpMv).total_us();
            let n4 =
                mm4.get(f) / explain_workload(&spec, &s, f, Workload::SpMm { k: 4 }).total_us();
            let n32 =
                mm32.get(f) / explain_workload(&spec, &s, f, Workload::SpMm { k: 32 }).total_us();
            assert_ne!(n_mv.to_bits(), n4.to_bits(), "{f}");
            assert_ne!(n4.to_bits(), n32.to_bits(), "{f}");
        }
    }
}
