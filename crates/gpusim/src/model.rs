//! The per-format SpMV cost model.

use crate::noise::noise_factor;
use crate::spec::GpuSpec;
use serde::{Deserialize, Serialize};
use spsel_features::MatrixStats;
use spsel_matrix::Format;

/// Modeled kernel times in microseconds, indexed by [`Format::index`].
/// Out-of-memory formats are `f64::INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpmvTimes {
    /// Microseconds per format in `Format::ALL` order.
    pub us: [f64; 4],
}

impl SpmvTimes {
    /// Time of one format.
    pub fn get(&self, f: Format) -> f64 {
        self.us[f.index()]
    }

    /// The fastest *feasible* format, or `None` if every format is
    /// out-of-memory.
    pub fn best(&self) -> Option<Format> {
        let (mut best, mut best_t) = (None, f64::INFINITY);
        for f in Format::ALL {
            let t = self.get(f);
            if t < best_t {
                best_t = t;
                best = Some(f);
            }
        }
        best
    }

    /// Speedup of the best format over CSR (`>= 1` unless CSR is optimal).
    pub fn best_speedup_over_csr(&self) -> f64 {
        match self.best() {
            Some(b) => self.get(Format::Csr) / self.get(b),
            None => 1.0,
        }
    }

    /// Whether any format fits in memory.
    pub fn any_feasible(&self) -> bool {
        self.us.iter().any(|t| t.is_finite())
    }
}

/// Per-format decomposition of a modeled kernel time — the "explaining"
/// part of the reproduction: every prediction can be broken into launch
/// overhead, bandwidth-bound streaming, and (for CSR) the serialization
/// straggler, so a user can see *why* a format wins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Kernel-launch overhead, microseconds.
    pub launch_us: f64,
    /// Bandwidth-bound streaming time, microseconds (for HYB this is the
    /// sum of its ELL and COO phases).
    pub stream_us: f64,
    /// Serialization straggler (scalar-CSR longest row), microseconds;
    /// zero for the other formats.
    pub straggler_us: f64,
    /// Occupancy factor applied to the streaming term (1 = saturated).
    pub utilization: f64,
    /// Whether the format fits in device memory.
    pub feasible: bool,
}

impl TimeBreakdown {
    /// Total noise-free kernel time of this breakdown.
    pub fn total_us(&self) -> f64 {
        if !self.feasible {
            return f64::INFINITY;
        }
        self.launch_us + self.stream_us.max(self.straggler_us)
    }

    fn infeasible() -> Self {
        TimeBreakdown {
            launch_us: 0.0,
            stream_us: 0.0,
            straggler_us: 0.0,
            utilization: 0.0,
            feasible: false,
        }
    }
}

/// Bytes of `x`-vector traffic per gathered nonzero: nearly free when the
/// vector fits in L2, a full 8-byte miss plus partial-line waste otherwise.
fn x_bytes_per_nnz(spec: &GpuSpec, stats: &MatrixStats) -> f64 {
    let vec_bytes = stats.ncols as f64 * 8.0;
    let pressure = (vec_bytes / spec.l2_bytes()).min(1.0);
    8.0 * (0.15 + 0.85 * pressure)
}

/// Occupancy: the fraction of peak bandwidth reachable with `items`
/// independent work items on this GPU. Needs a few items per thread to hide
/// latency.
fn utilization(spec: &GpuSpec, items: f64) -> f64 {
    (items / (spec.max_threads() * 2.0)).clamp(0.02, 1.0)
}

/// Decompose the four kernel times for a matrix described by `stats`
/// (noise-free). Order matches [`Format::ALL`].
pub fn explain_times(spec: &GpuSpec, stats: &MatrixStats) -> [TimeBreakdown; 4] {
    let c = &spec.coeffs;
    let bw = spec.bytes_per_us();
    let xb = x_bytes_per_nnz(spec, stats);
    let (nnz, nrows) = (stats.nnz as f64, stats.nrows as f64);
    let mem_cap = spec.memory_bytes() * c.mem_fraction;
    let [coo_bytes_raw, csr_bytes_raw, ell_bytes_raw, hyb_bytes_raw] = stats.format_bytes();

    // COO: segmented reduction over nnz items — oblivious to row imbalance,
    // parallel over nonzeros (good occupancy even for few-row matrices),
    // but an extra pass and atomics make it stream-inefficient.
    let coo = if coo_bytes_raw as f64 > mem_cap {
        TimeBreakdown::infeasible()
    } else {
        let bytes = nnz * 16.0 + nnz * xb;
        let util = utilization(spec, nnz / 32.0);
        TimeBreakdown {
            launch_us: 2.0 * c.launch_us,
            stream_us: bytes * c.coo_factor / (bw * util),
            straggler_us: 0.0,
            utilization: util,
            feasible: true,
        }
    };

    // CSR (scalar kernel): one thread per row. Streaming term plus a
    // serialization term — the warp whose thread owns the longest row
    // finishes last, each of its loads latency-bound.
    let csr = if csr_bytes_raw as f64 > mem_cap {
        TimeBreakdown::infeasible()
    } else {
        let bytes = nnz * 12.0 + nrows * 16.0 + nnz * xb;
        // Divergence: the warp finishes with its longest row, so the
        // max/mean row-length ratio degrades effective bandwidth.
        let divergence = if stats.nnz_mean > 0.0 {
            (stats.nnz_max as f64 / (stats.nnz_mean + 1.0)).clamp(1.0, 32.0)
        } else {
            1.0
        };
        let penalty = c.csr_penalty * (1.0 + c.csr_divergence * (divergence - 1.0));
        let util = utilization(spec, nrows);
        TimeBreakdown {
            launch_us: c.launch_us,
            stream_us: bytes * penalty / (bw * util),
            straggler_us: stats.nnz_max as f64 * c.serial_ns / 1000.0,
            utilization: util,
            feasible: true,
        }
    };

    // ELL: fully coalesced streaming of the padded slab; pays for padding
    // in bandwidth and can exhaust memory.
    let ell = if ell_bytes_raw as f64 > mem_cap {
        TimeBreakdown::infeasible()
    } else {
        let bytes = stats.ell_size as f64 * 12.0 + nnz * xb;
        let util = utilization(spec, nrows);
        TimeBreakdown {
            launch_us: c.launch_us,
            stream_us: bytes * c.ell_factor / (bw * util),
            straggler_us: 0.0,
            utilization: util,
            feasible: true,
        }
    };

    // HYB: ELL phase plus COO phase plus extra launches.
    let hyb = if hyb_bytes_raw as f64 > mem_cap {
        TimeBreakdown::infeasible()
    } else {
        let ell_bytes = stats.hyb_ell_size as f64 * 12.0 + stats.hyb_ell_nnz as f64 * xb;
        let coo_nnz = stats.hyb_coo_nnz as f64;
        let coo_bytes = coo_nnz * (16.0 + xb);
        let util = utilization(spec, nrows);
        let ell_t = ell_bytes * c.ell_factor / (bw * util);
        let coo_t = if coo_nnz > 0.0 {
            coo_bytes * c.coo_factor / (bw * utilization(spec, (coo_nnz / 32.0).max(1.0)))
        } else {
            0.0
        };
        TimeBreakdown {
            launch_us: (1.0 + c.hyb_extra_launches) * c.launch_us,
            stream_us: ell_t + coo_t,
            straggler_us: 0.0,
            utilization: util,
            feasible: true,
        }
    };

    [coo, csr, ell, hyb]
}

/// Model the four kernel times for a matrix described by `stats`.
///
/// `matrix_id` seeds the deterministic measurement noise; pass a stable
/// per-matrix identifier.
pub fn predict_times(spec: &GpuSpec, stats: &MatrixStats, matrix_id: u64) -> SpmvTimes {
    let gpu_idx = spec.gpu as usize;
    let breakdown = explain_times(spec, stats);
    let mut us = [0.0; 4];
    for (fi, b) in breakdown.iter().enumerate() {
        let t = b.total_us();
        us[fi] = if t.is_finite() {
            t * noise_factor(matrix_id, fi, gpu_idx)
        } else {
            t
        };
    }
    SpmvTimes { us }
}

/// The fastest feasible format for a matrix on a GPU.
pub fn best_format(spec: &GpuSpec, stats: &MatrixStats, matrix_id: u64) -> Option<Format> {
    predict_times(spec, stats, matrix_id).best()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{pascal_gtx1080, turing_rtx8000, volta_v100};
    use spsel_matrix::{gen, CsrMatrix};

    fn stats_of(coo: &spsel_matrix::CooMatrix) -> MatrixStats {
        MatrixStats::from_csr(&CsrMatrix::from(coo))
    }

    #[test]
    fn all_times_positive_and_finite_for_modest_matrix() {
        let s = stats_of(&gen::random_uniform(5000, 5000, 10, 1));
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            let t = predict_times(&gpu, &s, 7);
            for f in Format::ALL {
                assert!(
                    t.get(f).is_finite() && t.get(f) > 0.0,
                    "{f} on {}",
                    gpu.model
                );
            }
        }
    }

    #[test]
    fn uniform_rows_favor_ell_over_csr() {
        // Large, perfectly uniform matrix: ELL has zero padding and beats
        // the penalized CSR stream.
        let s = MatrixStats::from_row_counts(200_000, 200_000, &vec![16usize; 200_000]);
        for gpu in [pascal_gtx1080(), volta_v100()] {
            let t = predict_times(&gpu, &s, 3);
            assert!(
                t.get(Format::Ell) < t.get(Format::Csr),
                "{}: ELL {} !< CSR {}",
                gpu.model,
                t.get(Format::Ell),
                t.get(Format::Csr)
            );
        }
        // Turing's calibrated ELL coefficient makes short uniform rows a
        // borderline case there (matching its low ELL share in Table 3);
        // require only that the two formats are competitive.
        let t = predict_times(&turing_rtx8000(), &s, 3);
        let ratio = t.get(Format::Ell) / t.get(Format::Csr);
        assert!(ratio < 1.25, "Turing ELL/CSR ratio {ratio}");
    }

    #[test]
    fn heavy_padding_favors_csr_over_ell() {
        // Mildly irregular rows: max 60 vs mean ~6 means ELL stores 10x.
        let mut counts = vec![5usize; 100_000];
        for i in (0..100_000).step_by(50) {
            counts[i] = 60;
        }
        let s = MatrixStats::from_row_counts(100_000, 100_000, &counts);
        let t = predict_times(&turing_rtx8000(), &s, 11);
        assert!(t.get(Format::Csr) < t.get(Format::Ell));
    }

    #[test]
    fn mawi_like_skew_makes_csr_catastrophic() {
        // One row with 30M nonzeros (the `mawi` network traces have
        // multi-million-degree rows): the scalar CSR kernel serializes it
        // in a single thread.
        let mut counts = vec![3usize; 2_000_000];
        counts[1234] = 30_000_000;
        let s = MatrixStats::from_row_counts(2_000_000, 2_000_000, &counts);
        let t = predict_times(&turing_rtx8000(), &s, 5);
        let best = t.best().unwrap();
        assert_ne!(best, Format::Csr);
        let slowdown = t.get(Format::Csr) / t.get(best);
        assert!(
            slowdown > 15.0,
            "expected order-of-magnitude CSR slowdown, got {slowdown}"
        );
    }

    #[test]
    fn tiny_matrix_prefers_single_kernel_formats() {
        // Launch overhead dominates: HYB's extra kernels must lose.
        let s = MatrixStats::from_row_counts(200, 200, &vec![4usize; 200]);
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            let t = predict_times(&gpu, &s, 2);
            let best = t.best().unwrap();
            assert_ne!(best, Format::Hyb, "{}", gpu.model);
        }
    }

    #[test]
    fn huge_ell_oom_on_pascal_feasible_on_turing() {
        // ELL slab of 12 bytes * 400M slots = 4.8 GB: above Pascal's
        // 8 GB * 0.45 budget, below Turing's 48 GB * 0.45. CSR stays at
        // ~2.4 GB, under Pascal's budget.
        let mut counts = vec![100usize; 2_000_000];
        counts[0] = 200; // widen the slab: 2M rows x 200 = 400M slots
        let s = MatrixStats::from_row_counts(2_000_000, 2_000_000, &counts);
        assert_eq!(s.ell_size, 400_000_000);
        let tp = predict_times(&pascal_gtx1080(), &s, 1);
        let tt = predict_times(&turing_rtx8000(), &s, 1);
        assert!(tp.get(Format::Ell).is_infinite());
        assert!(tt.get(Format::Ell).is_finite());
        // CSR remains feasible on Pascal.
        assert!(tp.get(Format::Csr).is_finite());
    }

    #[test]
    fn best_never_returns_infeasible() {
        let mut counts = vec![2usize; 100];
        counts[0] = 50;
        let s = MatrixStats::from_row_counts(100, 100, &counts);
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            let t = predict_times(&gpu, &s, 9);
            let b = t.best().unwrap();
            assert!(t.get(b).is_finite());
        }
    }

    #[test]
    fn noise_preserves_clear_winners() {
        // The same matrix under different ids keeps its best format when
        // the gap is large.
        let mut counts = vec![3usize; 500_000];
        counts[0] = 800_000;
        let s = MatrixStats::from_row_counts(500_000, 500_000, &counts);
        let spec = volta_v100();
        let first = best_format(&spec, &s, 0).unwrap();
        for id in 1..50 {
            assert_eq!(best_format(&spec, &s, id).unwrap(), first);
        }
    }

    #[test]
    fn explain_matches_predict_up_to_noise() {
        let s = stats_of(&gen::power_law(1000, 1000, 2, 2.3, 300, 7));
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            let breakdown = explain_times(&gpu, &s);
            let times = predict_times(&gpu, &s, 42);
            for f in Format::ALL {
                let b = breakdown[f.index()];
                let t = times.get(f);
                assert_eq!(b.feasible, t.is_finite());
                if b.feasible {
                    // Noise is a few percent multiplicative.
                    let ratio = t / b.total_us();
                    assert!((0.85..=1.18).contains(&ratio), "{f}: ratio {ratio}");
                    assert!(b.launch_us > 0.0);
                    assert!(b.stream_us > 0.0);
                    assert!((0.0..=1.0).contains(&b.utilization));
                }
            }
            // Only CSR carries a straggler term.
            assert_eq!(breakdown[Format::Coo.index()].straggler_us, 0.0);
            assert_eq!(breakdown[Format::Ell.index()].straggler_us, 0.0);
            assert!(breakdown[Format::Csr.index()].straggler_us > 0.0);
        }
    }

    #[test]
    fn straggler_explains_hub_row_losses() {
        // For a hub matrix the CSR breakdown must be straggler-dominated —
        // the model's explanation of the mawi anecdote.
        let mut counts = vec![3usize; 2_000_000];
        counts[0] = 30_000_000;
        let s = MatrixStats::from_row_counts(2_000_000, 2_000_000, &counts);
        let b = explain_times(&turing_rtx8000(), &s);
        let csr = b[Format::Csr.index()];
        assert!(csr.straggler_us > 10.0 * csr.stream_us);
    }

    #[test]
    fn speedup_over_csr_at_least_one() {
        let s = stats_of(&gen::power_law(2000, 2000, 2, 2.1, 800, 3));
        for gpu in [pascal_gtx1080(), volta_v100(), turing_rtx8000()] {
            let t = predict_times(&gpu, &s, 13);
            assert!(t.best_speedup_over_csr() >= 1.0);
        }
    }
}
