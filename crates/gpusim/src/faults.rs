//! Deterministic fault injection for the simulated benchmark campaign.
//!
//! Real benchmark campaigns fail in mundane ways: a kernel launch times
//! out, a driver hiccup produces a 20x timing spike, a trial's output file
//! is lost, a matrix that should fit reports an out-of-memory error, a
//! cache artifact is truncated by a killed process. The paper's authors
//! absorb this by averaging 100 trials per (matrix, format) and silently
//! dropping matrices; a production autotuner has to absorb it explicitly.
//!
//! This module injects those failure classes *deterministically*: every
//! fault is a pure function of `(seed, matrix, format, gpu, trial,
//! attempt)` through the same [`splitmix64`] mixer the measurement noise
//! uses. The same seed therefore reproduces the same faults bit-for-bit,
//! which is what makes chaos runs debuggable and the recovery machinery
//! testable without flakes.

use crate::noise::{hash_unit, splitmix64};
use serde::{Deserialize, Serialize};

/// The injectable failure classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// A trial attempt fails transiently; a retry may succeed.
    Transient,
    /// A trial completes but reports a 5-50x outlier time.
    Spike,
    /// A trial's measurement is lost entirely (no retry possible).
    Drop,
    /// The cell reports out-of-memory even though the model says it fits.
    Oom,
    /// A stored cache artifact is truncated on write.
    CacheCorruption,
    /// An entire per-GPU benchmark run fails (host crash, driver wedge).
    GpuOutage,
}

impl FaultClass {
    /// Every class, in reporting order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::Transient,
        FaultClass::Spike,
        FaultClass::Drop,
        FaultClass::Oom,
        FaultClass::CacheCorruption,
        FaultClass::GpuOutage,
    ];

    /// Stable name used in telemetry.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Transient => "transient",
            FaultClass::Spike => "spike",
            FaultClass::Drop => "drop",
            FaultClass::Oom => "oom",
            FaultClass::CacheCorruption => "cache_corruption",
            FaultClass::GpuOutage => "gpu_outage",
        }
    }

    /// Per-class domain-separation tag mixed into the hash key.
    fn tag(self) -> u64 {
        match self {
            FaultClass::Transient => 0x7472_616e,
            FaultClass::Spike => 0x7370_696b,
            FaultClass::Drop => 0x6472_6f70,
            FaultClass::Oom => 0x6f6f_6d21,
            FaultClass::CacheCorruption => 0x6361_6368,
            FaultClass::GpuOutage => 0x6f75_7467,
        }
    }
}

/// Per-class injection probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability a trial attempt fails transiently.
    pub transient: f64,
    /// Probability a trial's time is a 5-50x outlier.
    pub spike: f64,
    /// Probability a trial is dropped outright.
    pub drop: f64,
    /// Probability a (matrix, format) cell reports a spurious OOM.
    pub oom: f64,
    /// Probability a cache artifact write is truncated.
    pub cache_corruption: f64,
    /// Probability an entire per-GPU benchmark run fails.
    pub gpu_outage: f64,
}

impl FaultRates {
    /// The same rate for the per-measurement classes (transient, spike,
    /// drop, oom, cache corruption). GPU outage stays 0 — killing a whole
    /// backend is opt-in, not part of the uniform chaos dial.
    pub fn uniform(rate: f64) -> Self {
        FaultRates {
            transient: rate,
            spike: rate,
            drop: rate,
            oom: rate,
            cache_corruption: rate,
            gpu_outage: 0.0,
        }
    }

    /// The configured rate of one class.
    pub fn get(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::Transient => self.transient,
            FaultClass::Spike => self.spike,
            FaultClass::Drop => self.drop,
            FaultClass::Oom => self.oom,
            FaultClass::CacheCorruption => self.cache_corruption,
            FaultClass::GpuOutage => self.gpu_outage,
        }
    }

    /// Whether any class can fire.
    pub fn any(&self) -> bool {
        FaultClass::ALL.iter().any(|&c| self.get(c) > 0.0)
    }
}

/// A seeded fault-injection plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master fault seed; independent from the corpus seed so the same
    /// corpus can be chaos-tested under many fault schedules.
    pub seed: u64,
    /// Per-class injection rates.
    pub rates: FaultRates,
}

/// Environment variable carrying a uniform fault rate (`SPSEL_FAULTS=0.05`).
pub const FAULTS_ENV: &str = "SPSEL_FAULTS";

/// Environment variable overriding the fault seed (`SPSEL_FAULT_SEED=7`).
pub const FAULT_SEED_ENV: &str = "SPSEL_FAULT_SEED";

/// Default fault seed when none is given.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA_017;

impl FaultConfig {
    /// No faults: every roll misses, measurement is bit-identical to the
    /// fault-free pipeline.
    pub fn off() -> Self {
        FaultConfig {
            seed: DEFAULT_FAULT_SEED,
            rates: FaultRates::default(),
        }
    }

    /// All per-measurement classes at the same `rate`.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        FaultConfig {
            seed,
            rates: FaultRates::uniform(rate),
        }
    }

    /// Read `SPSEL_FAULTS` / `SPSEL_FAULT_SEED`: unset, empty, or `0`
    /// means faults off.
    pub fn from_env() -> Self {
        let rate = std::env::var(FAULTS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .unwrap_or(0.0);
        let seed = std::env::var(FAULT_SEED_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_FAULT_SEED);
        if rate > 0.0 {
            FaultConfig::uniform(rate.min(1.0), seed)
        } else {
            FaultConfig {
                seed,
                rates: FaultRates::default(),
            }
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn enabled(&self) -> bool {
        self.rates.any()
    }

    /// Domain-separated hash key for one fault decision.
    fn key(&self, class: FaultClass, parts: [u64; 4]) -> u64 {
        let mut h = splitmix64(self.seed ^ class.tag());
        for p in parts {
            h = splitmix64(h ^ p.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        h
    }

    /// Roll one fault decision for `(matrix, format, gpu, trial/attempt)`.
    pub fn roll(
        &self,
        class: FaultClass,
        matrix_id: u64,
        format_idx: usize,
        gpu_idx: usize,
        event: u64,
    ) -> bool {
        let rate = self.rates.get(class);
        if rate <= 0.0 {
            return false;
        }
        hash_unit(self.key(class, [matrix_id, format_idx as u64, gpu_idx as u64, event])) < rate
    }

    /// Whether the whole benchmark run on `gpu_idx` is lost. Keyed by the
    /// GPU alone so an outage takes out one backend, not one cell.
    pub fn gpu_outage(&self, gpu_idx: usize) -> bool {
        self.rates.gpu_outage > 0.0
            && hash_unit(self.key(FaultClass::GpuOutage, [gpu_idx as u64, 0, 0, 0]))
                < self.rates.gpu_outage
    }

    /// Outlier magnitude of a spiked trial: log-uniform in `[5, 50]`.
    pub fn spike_magnitude(
        &self,
        matrix_id: u64,
        format_idx: usize,
        gpu_idx: usize,
        trial: u64,
    ) -> f64 {
        let u = hash_unit(self.key(
            FaultClass::Spike,
            [matrix_id ^ 0x5eed, format_idx as u64, gpu_idx as u64, trial],
        ));
        5.0 * 10.0f64.powf(u)
    }

    /// Per-trial multiplicative measurement jitter (lognormal, sigma 2%),
    /// applied on top of the cell's averaged noise so repeated trials of
    /// one cell disagree slightly, as real trials do.
    ///
    /// Jitter is *antithetic*: trial 0 is unjittered, and trials `2p-1` /
    /// `2p` share one deviate with opposite signs. With an odd trial count
    /// and no lost trials the median is therefore exactly the unjittered
    /// measurement — healthy cells aggregate to the fault-free value bit
    /// for bit, and only cells that actually lost a trial can drift.
    pub fn trial_jitter(
        &self,
        matrix_id: u64,
        format_idx: usize,
        gpu_idx: usize,
        trial: u64,
    ) -> f64 {
        if trial == 0 {
            return 1.0;
        }
        let pair = trial.div_ceil(2);
        let sign = if trial % 2 == 1 { 1.0 } else { -1.0 };
        let key = self.key(
            FaultClass::Drop, // reuse a tag namespace, offset below
            [
                matrix_id ^ 0x6a69_7474,
                format_idx as u64,
                gpu_idx as u64,
                pair,
            ],
        );
        (sign * 0.02 * crate::noise::hash_gaussian(key)).exp()
    }

    /// Whether the cache artifact identified by `artifact_key` is
    /// truncated on write, and at which fraction of its length.
    pub fn corrupt_artifact(&self, artifact_key: u64) -> Option<f64> {
        if !self.roll(FaultClass::CacheCorruption, artifact_key, 0, 0, 0) {
            return None;
        }
        // Keep 10-90% of the bytes so the truncation is never a no-op.
        let frac =
            0.1 + 0.8 * hash_unit(self.key(FaultClass::CacheCorruption, [artifact_key, 1, 0, 0]));
        Some(frac)
    }

    /// Deterministic retry backoff in simulated microseconds for retry
    /// `attempt` (1-based): exponential, base 250us.
    pub fn backoff_us(attempt: u64) -> f64 {
        250.0 * (1u64 << attempt.min(16)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_never_fires() {
        let f = FaultConfig::off();
        assert!(!f.enabled());
        for id in 0..200 {
            for class in FaultClass::ALL {
                assert!(!f.roll(class, id, 1, 2, 3));
            }
        }
        assert!(!f.gpu_outage(0));
        assert!(f.corrupt_artifact(42).is_none());
    }

    #[test]
    fn rolls_are_deterministic_and_seed_sensitive() {
        let a = FaultConfig::uniform(0.5, 1);
        let b = FaultConfig::uniform(0.5, 2);
        let mut diff = 0;
        for id in 0..500u64 {
            let ra = a.roll(FaultClass::Transient, id, 0, 0, 0);
            assert_eq!(ra, a.roll(FaultClass::Transient, id, 0, 0, 0));
            if ra != b.roll(FaultClass::Transient, id, 0, 0, 0) {
                diff += 1;
            }
        }
        assert!(diff > 100, "seeds barely differ: {diff}");
    }

    #[test]
    fn rates_are_respected() {
        let f = FaultConfig::uniform(0.05, 9);
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&id| f.roll(FaultClass::Drop, id, 1, 1, 0))
            .count() as f64;
        let rate = hits / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn classes_are_independent() {
        // The same coordinates must not fire all classes in lockstep.
        let f = FaultConfig::uniform(0.5, 7);
        let mut agree = 0;
        for id in 0..1000u64 {
            if f.roll(FaultClass::Transient, id, 0, 0, 0) == f.roll(FaultClass::Spike, id, 0, 0, 0)
            {
                agree += 1;
            }
        }
        assert!((300..700).contains(&agree), "classes correlated: {agree}");
    }

    #[test]
    fn spike_magnitude_in_range() {
        let f = FaultConfig::uniform(1.0, 3);
        for id in 0..500 {
            let m = f.spike_magnitude(id, 1, 2, 0);
            assert!((5.0..=50.0).contains(&m), "magnitude {m}");
        }
    }

    #[test]
    fn trial_jitter_is_mild_and_centered() {
        let f = FaultConfig::uniform(0.05, 11);
        let vals: Vec<f64> = (0..2000u64).map(|id| f.trial_jitter(id, 0, 0, 1)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "jitter mean {mean}");
        for v in vals {
            assert!((0.85..=1.2).contains(&v), "jitter {v}");
        }
    }

    #[test]
    fn trial_jitter_is_antithetic_around_an_unjittered_center() {
        let f = FaultConfig::uniform(0.05, 11);
        assert_eq!(f.trial_jitter(42, 1, 2, 0), 1.0, "trial 0 is the center");
        for pair in 1..4u64 {
            let up = f.trial_jitter(42, 1, 2, 2 * pair - 1);
            let down = f.trial_jitter(42, 1, 2, 2 * pair);
            assert!(
                (up * down - 1.0).abs() < 1e-12,
                "pair {pair}: {up} * {down} != 1"
            );
        }
    }

    #[test]
    fn backoff_is_exponential() {
        assert_eq!(FaultConfig::backoff_us(1), 500.0);
        assert_eq!(FaultConfig::backoff_us(2), 1000.0);
        assert_eq!(FaultConfig::backoff_us(3), 2000.0);
    }

    #[test]
    fn outage_is_per_gpu_not_per_cell() {
        let mut cfg = FaultConfig::off();
        cfg.rates.gpu_outage = 1.0;
        assert!(cfg.gpu_outage(0) && cfg.gpu_outage(1) && cfg.gpu_outage(2));
        cfg.rates.gpu_outage = 0.0;
        assert!(!cfg.gpu_outage(0));
    }
}
