//! Analytic GPU SpMV performance model.
//!
//! The paper benchmarks CUSP's four SpMV kernels on three NVIDIA GPUs to
//! obtain ground-truth labels (the fastest format per matrix per
//! architecture). No GPU exists in this environment, so this crate replaces
//! the hardware with a first-order analytic model of each kernel on each
//! architecture. The model is *not* meant to predict absolute runtimes of
//! real hardware; it reproduces the mechanisms that the paper identifies as
//! driving format choice, so the induced classification problem has the
//! same structure:
//!
//! * memory-bandwidth-bound streaming of the format's arrays, with the
//!   Table 2 bandwidths;
//! * cache behaviour of the `x`-vector gather (L2 capacity per GPU);
//! * thread-per-row serialization in the scalar CSR kernel, so one huge
//!   row stalls a warp (the paper's 194.85x `mawi` slowdown);
//! * ELL padding blow-up and out-of-memory infeasibility (8 GB Pascal vs
//!   48 GB Turing);
//! * per-kernel launch overhead, which punishes HYB's two-phase execution
//!   on small matrices;
//! * GPU occupancy: small matrices cannot saturate many-SM parts, which
//!   shifts the COO/CSR balance between architectures.
//!
//! Per-architecture kernel coefficients are calibrated so the best-format
//! distribution over the synthetic corpus matches the *shape* of the
//! paper's Table 3 (CSR dominant, ELL second, COO/HYB rare and strongly
//! architecture-dependent). See `DESIGN.md` for the substitution argument.

pub mod bench;
pub mod cost;
pub mod faults;
pub mod model;
pub mod noise;
pub mod spec;

pub use bench::{
    benchmark_corpus, label_distribution, measure_corpus, BenchError, BenchOutcome, BenchResult,
    CorpusBench, FaultCounters, TrialPolicy,
};
pub use cost::{conversion_cost_relative, estimate_benchmark_hours, ConversionCostModel};
pub use faults::{FaultClass, FaultConfig, FaultRates, FAULTS_ENV, FAULT_SEED_ENV};
pub use model::{
    best_format, best_format_for, explain_times, explain_workload, predict_times,
    predict_workload_times, SpmvTimes, TimeBreakdown, WorkloadTimes,
};
pub use spec::{pascal_gtx1080, turing_rtx8000, volta_v100, Gpu, GpuSpec, KernelCoeffs};
