//! Property tests for the binary wire codec, and the protocol-
//! equivalence guarantee: the same request answered over JSON and over
//! binary frames yields bit-identical decision payloads.
//!
//! Floats travel as raw `f64::to_bits` patterns, so the round-trip
//! properties are asserted on the *encoded bytes* (encode → decode →
//! re-encode must reproduce the frame byte for byte), which covers NaN
//! payloads and signed zeros that `PartialEq` on the decoded structs
//! would miss.

use proptest::collection;
use proptest::prelude::*;
use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::{RunReport, ServingReport};
use spsel_features::{FeatureVector, MatrixStats};
use spsel_matrix::{gen, CsrMatrix};
use spsel_serve::artifact::{self, TrainConfig};
use spsel_serve::framing::{self, FrameBuffer};
use spsel_serve::protocol::{
    FeedbackReply, FormatTime, GpuStats, LifecycleStats, Request, Response, SelectBody,
    SelectReply, ShutdownReply, StatsReply, SwapReply, SyncReply,
};
use spsel_serve::{Client, Engine, EngineOptions, ErrorEnvelope, ServeOptions, Server};
use std::sync::Arc;

const GPUS: [&str; 3] = ["Pascal", "Volta", "Turing"];
const FORMATS: [&str; 4] = ["COO", "CSR", "ELL", "HYB"];

/// Bits → f64 preserving the exact pattern: NaNs, infinities,
/// subnormals, signed zeros all included.
fn f(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// Encode → frame-extract → decode → re-encode, asserting the two
/// encodings are byte-identical (bit-pattern round-trip).
fn assert_request_roundtrips(request: &Request) {
    let wire = framing::encode_request(request);
    let mut buf = FrameBuffer::new();
    buf.push(&wire);
    let (kind, body) = buf
        .next_frame()
        .expect("well-formed frame")
        .expect("complete frame");
    let decoded = framing::decode_request(kind, &body).expect("decodable request");
    assert_eq!(
        framing::encode_request(&decoded),
        wire,
        "re-encoding drifted for {request:?}"
    );
}

fn assert_response_roundtrips(response: &Response) {
    let wire = framing::encode_response(response);
    let mut buf = FrameBuffer::new();
    buf.push(&wire);
    let (kind, body) = buf
        .next_frame()
        .expect("well-formed frame")
        .expect("complete frame");
    let decoded = framing::decode_response(kind, &body).expect("decodable response");
    assert_eq!(
        framing::encode_response(&decoded),
        wire,
        "re-encoding drifted for {response:?}"
    );
}

/// A select body whose floats are raw bit patterns and whose options
/// exercise every presence combination.
fn arb_select_body() -> impl Strategy<Value = SelectBody> {
    (
        collection::vec(0u64..u64::MAX, 0..25),
        0u64..u64::MAX,
        0u8..8,
    )
        .prop_map(|(bits, word, tags)| SelectBody {
            matrix: (tags & 1 != 0).then(|| format!("mtx/§-{word:x}.mtx")),
            features: (tags & 2 != 0).then(|| bits.iter().map(|&b| f(b)).collect()),
            gpu: GPUS[word as usize % GPUS.len()].to_string(),
            iterations: (tags & 4 != 0).then_some(word as usize % 100_000),
            learn: match word % 3 {
                0 => None,
                1 => Some(false),
                _ => Some(true),
            },
            workload: match word % 5 {
                0 => Some("spmv".to_string()),
                1 => Some("spmm4".to_string()),
                2 => Some("spmm32".to_string()),
                3 => Some(format!("workload-§-{word:x}")),
                _ => None,
            },
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        collection::vec(arb_select_body(), 0..5),
        0u64..u64::MAX,
        0u8..5,
    )
        .prop_map(|(bodies, word, variant)| match variant {
            0 => {
                let body = bodies.into_iter().next().unwrap_or(SelectBody {
                    matrix: None,
                    features: None,
                    gpu: "Volta".into(),
                    iterations: None,
                    learn: None,
                    workload: None,
                });
                Request::Select {
                    matrix: body.matrix,
                    features: body.features,
                    gpu: body.gpu,
                    iterations: body.iterations,
                    deadline_ms: (word & 1 != 0).then_some(word >> 1),
                    learn: body.learn,
                    workload: body.workload,
                }
            }
            1 => Request::Batch {
                requests: bodies,
                deadline_ms: (word & 1 != 0).then_some(word >> 1),
            },
            2 => Request::Feedback {
                gpu: GPUS[word as usize % GPUS.len()].to_string(),
                cluster: word as usize % 10_000,
                best: FORMATS[word as usize % FORMATS.len()].to_string(),
            },
            3 => Request::Stats,
            _ => Request::Shutdown,
        })
}

/// A serving report filled from a word pool: every u64 field a raw
/// counter, every f64 field a raw bit pattern.
fn report_from(pool: &[u64]) -> ServingReport {
    ServingReport {
        requests: pool[0],
        select_requests: pool[1],
        feedback_requests: pool[2],
        stats_requests: pool[3],
        batch_requests: pool[4],
        max_batch_size: pool[5],
        errors: pool[6],
        deadline_exceeded: pool[7],
        cluster_hits: pool[8],
        new_clusters: pool[9],
        benchmarks_requested: pool[10],
        feedback_applied: pool[11],
        p50_latency_us: f(pool[12]),
        p99_latency_us: f(pool[13]),
        max_latency_us: f(pool[14]),
        read_decisions: pool[15],
        write_decisions: pool[16],
        write_lock_acquisitions: pool[17],
        write_lock_wait_us: pool[18],
        snapshot_swaps: pool[19],
        journal_replayed: pool[20],
        journal_appended: pool[21],
        journal_skipped: pool[22],
        deadline_skipped: pool[23],
        shed: pool[24],
        connections_accepted: pool[25],
        connections_rejected: pool[26],
        peak_connections: pool[27],
        binary_requests: pool[28],
        observes_journaled: pool[29],
        observes_replayed: pool[30],
        torn_tails: pool[31],
        compactions: pool[32],
        swaps: pool[33],
        swap_requests: pool[34],
        sync_requests: pool[35],
        sync_records_sent: pool[36],
        sync_bytes_sent: pool[37],
        sync_records_applied: pool[38],
        timed_decisions: pool[39],
        decision_extract_ns: pool[38].rotate_left(7),
        decision_embed_ns: pool[37].rotate_left(13),
        decision_assign_ns: pool[36].rotate_left(21),
        decision_label_ns: pool[35].rotate_left(31),
        decision_p50_us: f(pool[34].rotate_left(3)),
        decision_p99_us: f(pool[33].rotate_left(5)),
    }
}

fn lifecycle_from(pool: &[u64]) -> LifecycleStats {
    LifecycleStats {
        journal_attached: pool[20] & 1 != 0,
        last_seq: pool[21],
        applied_seq: pool[22],
        checkpoint_seq: pool[23],
        records_since_checkpoint: pool[24],
        journal_bytes: pool[25],
        context_digest: format!("{:016x}", pool[26]),
        last_swap_digest: (pool[27] & 1 != 0).then(|| format!("{:016x}", pool[27])),
        swaps: pool[28],
        compactions: pool[29],
    }
}

fn select_reply_from(pool: &[u64]) -> SelectReply {
    SelectReply {
        gpu: GPUS[pool[0] as usize % GPUS.len()].to_string(),
        workload: ["spmv", "spmm4", "spmm32"][pool[14] as usize % 3].to_string(),
        format: FORMATS[pool[1] as usize % FORMATS.len()].to_string(),
        cluster: pool[2] as usize % 1_000_000,
        cluster_size: pool[3] as usize % 1_000_000,
        centroid_distance: f(pool[4]),
        new_cluster: pool[5] & 1 != 0,
        benchmark_requested: pool[5] & 2 != 0,
        predicted: (0..pool[6] % 5)
            .map(|i| FormatTime {
                format: FORMATS[i as usize % FORMATS.len()].to_string(),
                us: (pool[7] & (1 << i) != 0).then(|| f(pool[8].rotate_left(i as u32))),
            })
            .collect(),
        amortized_format: FORMATS[pool[9] as usize % FORMATS.len()].to_string(),
        amortized_total_us: f(pool[10]),
        csr_total_us: f(pool[11]),
        break_even_iterations: (pool[12] & 1 != 0).then(|| pool[12] as usize >> 1),
        iterations: pool[13] as usize % 1_000_000,
    }
}

/// Every response variant, floats by bit pattern, batches nested one
/// level (the wire cap is depth 2: a batch of non-batch responses).
fn arb_response() -> impl Strategy<Value = Response> {
    (collection::vec(0u64..u64::MAX, 40usize), 0u8..8).prop_map(|(pool, variant)| {
        let error = Response {
            ok: false,
            error: Some(ErrorEnvelope {
                code: "shed".to_string(),
                message: format!("unicode £ message {:x} \u{1F980}", pool[30]),
            }),
            select: None,
            batch: None,
            feedback: None,
            stats: None,
            swap: None,
            sync: None,
            shutdown: None,
        };
        match variant {
            0 => error,
            1 => Response::of_select(select_reply_from(&pool)),
            2 => Response::of_batch(
                (0..pool[31] % 4)
                    .map(|i| {
                        if i & 1 == 0 {
                            Response::of_select(select_reply_from(&pool[i as usize..]))
                        } else {
                            error.clone()
                        }
                    })
                    .collect(),
            ),
            3 => Response::of_feedback(FeedbackReply {
                gpu: GPUS[pool[32] as usize % GPUS.len()].to_string(),
                cluster: pool[33] as usize % 1_000_000,
                format: FORMATS[pool[34] as usize % FORMATS.len()].to_string(),
                unlabeled_clusters: pool[35] as usize % 1_000_000,
                staleness: pool[36] as usize % 1_000_000,
            }),
            4 => Response::of_stats(StatsReply {
                artifact_version: pool[37] as u32,
                feature_digest: format!("{:016x}", pool[38]),
                gpus: (0..pool[39] % 4)
                    .map(|i| GpuStats {
                        gpu: GPUS[i as usize % GPUS.len()].to_string(),
                        clusters: pool[i as usize] as usize % 1_000_000,
                        unlabeled_clusters: pool[i as usize + 1] as usize % 1_000_000,
                        staleness: pool[i as usize + 2] as usize % 1_000_000,
                        training_records: pool[i as usize + 3] as usize % 1_000_000,
                        shards: pool[i as usize + 4] as usize % 64,
                        snapshot_version: pool[i as usize + 5],
                        shard_feedbacks: pool[i as usize..i as usize + 4].to_vec(),
                        shard_imbalance: f(pool[i as usize + 6]),
                    })
                    .collect(),
                serving: report_from(&pool),
                lifecycle: lifecycle_from(&pool),
            }),
            5 => Response::of_swap(SwapReply {
                artifact_version: pool[0] as u32,
                context_digest: format!("{:016x}", pool[1]),
                previous_digest: format!("{:016x}", pool[2]),
                gpus: pool[3] as usize % 8,
                rebased: pool[4],
                checkpoint_seq: pool[5],
            }),
            6 => Response::of_sync(SyncReply {
                last_seq: pool[6],
                checkpoint_seq: pool[7],
                context_digest: format!("{:016x}", pool[8]),
                checkpoint: (pool[9] & 1 != 0)
                    .then(|| format!("{{\"checkpoint_version\":1,\"pad\":\"{:x}\"}}", pool[10])),
                records: (0..pool[11] % 4)
                    .map(|i| format!("{{\"Feedback\":{{\"seq\":{}}}}}", pool[12].wrapping_add(i)))
                    .collect(),
            }),
            _ => Response {
                shutdown: Some(ShutdownReply {
                    stopping: pool[29] & 1 != 0,
                }),
                ok: true,
                error: None,
                select: None,
                batch: None,
                feedback: None,
                stats: None,
                swap: None,
                sync: None,
            },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_request_variant_round_trips_bit_exactly(request in arb_request()) {
        assert_request_roundtrips(&request);
    }

    #[test]
    fn every_response_variant_round_trips_bit_exactly(response in arb_response()) {
        assert_response_roundtrips(&response);
    }

    #[test]
    fn finite_requests_also_round_trip_by_equality(
        bits in collection::vec(0u64..u64::MAX, 21usize),
        word in 0u64..u64::MAX,
    ) {
        // With finite floats the decoded struct must equal the original
        // under PartialEq too, not just re-encode identically.
        let features: Vec<f64> = bits
            .iter()
            .map(|&b| {
                let v = f(b);
                if v.is_finite() { v } else { (b >> 12) as f64 * 1e-3 }
            })
            .collect();
        let request = Request::Select {
            matrix: None,
            features: Some(features),
            gpu: GPUS[word as usize % GPUS.len()].to_string(),
            iterations: Some(word as usize % 10_000),
            deadline_ms: Some(word % 100_000),
            learn: Some(word & 1 != 0),
            workload: None,
        };
        let wire = framing::encode_request(&request);
        let mut buf = FrameBuffer::new();
        buf.push(&wire);
        let (kind, body) = buf.next_frame().unwrap().unwrap();
        prop_assert_eq!(framing::decode_request(kind, &body).unwrap(), request);
    }

    #[test]
    fn pipelined_frames_split_anywhere_reassemble_in_order(
        reqs in collection::vec(arb_request(), 1..5),
        cut_word in 0u64..u64::MAX,
    ) {
        // Concatenate several frames, feed them in two arbitrary chunks,
        // and require the same requests back in order.
        let wire: Vec<u8> = reqs.iter().flat_map(framing::encode_request).collect();
        let cut = (cut_word as usize) % (wire.len() + 1);
        let mut buf = FrameBuffer::new();
        buf.push(&wire[..cut]);
        let mut decoded_wire = Vec::new();
        while let Some((kind, body)) = buf.next_frame().unwrap() {
            let r = framing::decode_request(kind, &body).unwrap();
            decoded_wire.extend(framing::encode_request(&r));
        }
        buf.push(&wire[cut..]);
        while let Some((kind, body)) = buf.next_frame().unwrap() {
            let r = framing::decode_request(kind, &body).unwrap();
            decoded_wire.extend(framing::encode_request(&r));
        }
        prop_assert_eq!(decoded_wire, wire);
        prop_assert_eq!(buf.pending(), 0);
    }
}

/// Wire stability alone cannot catch a field the binary codec silently
/// drops (the re-encode of the lossy decode matches the lossy wire), so
/// a stats reply with every counter set to a distinct finite value must
/// also round-trip by equality.
#[test]
fn stats_reply_fields_survive_binary_round_trip() {
    let pool: Vec<u64> = (1..=40).collect();
    let response = Response::of_stats(StatsReply {
        artifact_version: 7,
        feature_digest: "0123456789abcdef".into(),
        gpus: Vec::new(),
        serving: report_from(&pool),
        lifecycle: lifecycle_from(&pool),
    });
    let wire = framing::encode_response(&response);
    let mut buf = FrameBuffer::new();
    buf.push(&wire);
    let (kind, body) = buf.next_frame().unwrap().unwrap();
    let decoded = framing::decode_response(kind, &body).unwrap();
    assert_eq!(decoded, response, "binary codec dropped a stats field");
}

// ---------------------------------------------------------------------
// Protocol equivalence against a live daemon
// ---------------------------------------------------------------------

fn build_engine() -> Engine {
    let cache = Cache::disabled();
    let mut report = RunReport::new("framing-test");
    let ctx = ExperimentContext::build(CorpusConfig::small(25, 7), &cache, &mut report);
    let model = artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds");
    Engine::from_artifact(&model, &EngineOptions::default()).unwrap()
}

fn feature_vec(seed: u64) -> Vec<f64> {
    let csr = CsrMatrix::from(&gen::power_law(140, 140, 2, 2.3, 50, seed));
    FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
        .as_slice()
        .to_vec()
}

/// The same request stream over a JSON connection and a binary
/// connection must produce bit-identical decision payloads (the
/// response re-serialized through the same JSON serializer).
#[test]
fn json_and_binary_replies_are_bit_identical() {
    let engine = Arc::new(build_engine());
    let server = Server::bind(
        engine,
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    )
    .expect("bind succeeds");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());

    let mut json_client = Client::connect(addr).expect("json client connects");
    let mut bin_client = Client::connect_binary(addr).expect("binary client connects");

    // Read-only selects (learn: false) are deterministic, so the two
    // protocols see identical engine state for every request.
    let mut requests: Vec<Request> = (0..8)
        .map(|s| Request::Select {
            matrix: None,
            features: Some(feature_vec(s)),
            gpu: GPUS[s as usize % GPUS.len()].to_string(),
            iterations: Some(300 + s as usize),
            deadline_ms: None,
            learn: Some(false),
            workload: None,
        })
        .collect();
    requests.push(Request::Batch {
        requests: (0..5)
            .map(|s| SelectBody {
                matrix: None,
                features: Some(feature_vec(100 + s)),
                gpu: GPUS[s as usize % GPUS.len()].to_string(),
                iterations: None,
                learn: Some(false),
                workload: None,
            })
            .collect(),
        deadline_ms: None,
    });
    // A typed error must be identical over both protocols too.
    requests.push(Request::Select {
        matrix: None,
        features: Some(feature_vec(9)),
        gpu: "TPU".into(),
        iterations: None,
        deadline_ms: None,
        learn: Some(false),
        workload: None,
    });
    requests.push(Request::Feedback {
        gpu: "Volta".into(),
        cluster: usize::MAX,
        best: "HYB".into(),
    });

    for request in &requests {
        let via_json = json_client.roundtrip(request).expect("json roundtrip");
        let via_binary = bin_client.roundtrip(request).expect("binary roundtrip");
        assert_eq!(
            serde_json::to_string(&via_json).unwrap(),
            serde_json::to_string(&via_binary).unwrap(),
            "decision payloads diverged for {request:?}"
        );
    }

    // Stats counters move between calls, but the model-derived fields
    // must agree.
    let s_json = json_client
        .roundtrip(&Request::Stats)
        .unwrap()
        .stats
        .expect("stats payload");
    let s_bin = bin_client
        .roundtrip(&Request::Stats)
        .unwrap()
        .stats
        .expect("stats payload");
    assert_eq!(s_json.artifact_version, s_bin.artifact_version);
    assert_eq!(s_json.feature_digest, s_bin.feature_digest);
    assert_eq!(s_json.gpus, s_bin.gpus);
    assert!(s_bin.serving.binary_requests >= 12);

    let down = bin_client.roundtrip(&Request::Shutdown).unwrap();
    assert!(down.ok && down.shutdown.is_some());
    let report = handle.join().unwrap();
    assert_eq!(report.errors, 4, "one bad-gpu and one bad-cluster each way");
    assert!(report.binary_requests >= 13);
}
