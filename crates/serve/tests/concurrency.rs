//! Concurrency behaviour of the sharded serving engine: mixed
//! select/feedback stress without lost updates, read-only floods staying
//! off the write path, and shard-count independence of sequential
//! replies.
//!
//! Thread count comes from `SPSEL_THREADS` (the same knob the rayon shim
//! honours), clamped to the stress range 4–8 and defaulting to 8, so the
//! test exercises real contention even on a 1-CPU container.

use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_features::{FeatureVector, MatrixStats};
use spsel_matrix::{gen, CsrMatrix};
use spsel_serve::artifact::{self, ModelArtifact, TrainConfig};
use spsel_serve::protocol::SelectBody;
use spsel_serve::{Engine, EngineOptions};
use std::sync::Arc;

fn train_model() -> ModelArtifact {
    let cache = Cache::disabled();
    let mut report = RunReport::new("concurrency-test");
    let ctx = ExperimentContext::build(CorpusConfig::small(30, 5), &cache, &mut report);
    artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds")
}

fn body(seed: u64, gpu: &str, learn: bool) -> SelectBody {
    let csr = CsrMatrix::from(&gen::power_law(
        130 + (seed % 60) as usize,
        130,
        2,
        2.2 + (seed % 4) as f64 * 0.1,
        50,
        seed,
    ));
    SelectBody {
        matrix: None,
        features: Some(
            FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
                .as_slice()
                .to_vec(),
        ),
        gpu: gpu.to_string(),
        iterations: Some(300),
        learn: Some(learn),
        workload: None,
    }
}

/// Stress thread count: `SPSEL_THREADS` clamped to 4..=8, default 8.
fn stress_threads() -> usize {
    std::env::var("SPSEL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8)
        .clamp(4, 8)
}

/// Mixed select/feedback stress: every feedback a thread issues must be
/// applied (none lost to a concurrent observe), and the cluster count
/// stays within the configured bound.
#[test]
fn mixed_select_feedback_stress_loses_nothing() {
    let model = train_model();
    let engine = Arc::new(Engine::from_artifact(&model, &EngineOptions::default()).unwrap());
    let threads = stress_threads();
    const PER_THREAD: usize = 40;

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let gpus = ["pascal", "volta", "turing"];
                let mut feedbacks = 0u64;
                for r in 0..PER_THREAD {
                    let gpu = gpus[(t + r) % gpus.len()];
                    let reply = engine
                        .select(&body((t * PER_THREAD + r) as u64, gpu, true))
                        .expect("select succeeds under contention");
                    // Answer every benchmark request, like a real client.
                    if reply.benchmark_requested {
                        engine
                            .feedback(gpu, reply.cluster, "ell")
                            .expect("feedback on a just-reported cluster succeeds");
                        feedbacks += 1;
                    }
                }
                feedbacks
            })
        })
        .collect();
    let issued: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let report = engine.serving_report();
    assert_eq!(
        report.feedback_applied, issued,
        "every issued feedback must be applied — none lost to races"
    );
    assert_eq!(report.write_decisions, (threads * PER_THREAD) as u64);
    assert_eq!(
        report.snapshot_swaps,
        report.write_decisions + issued,
        "every mutation publishes exactly one snapshot"
    );
    let stats = engine.stats();
    for gpu in &stats.gpus {
        assert!(
            gpu.clusters <= EngineOptions::default().online_max_clusters,
            "cluster growth must respect the configured bound"
        );
    }
    let total_shard_feedbacks: u64 = stats
        .gpus
        .iter()
        .flat_map(|g| g.shard_feedbacks.iter())
        .sum();
    assert_eq!(total_shard_feedbacks, issued, "shard counters agree");
}

/// A `learn: false` flood — even a concurrent one — never takes the
/// write path: zero write-lock acquisitions, zero snapshot swaps, and
/// identical replies for identical requests throughout.
#[test]
fn read_only_floods_never_take_the_write_path() {
    let model = train_model();
    let engine = Arc::new(Engine::from_artifact(&model, &EngineOptions::default()).unwrap());
    let threads = stress_threads();
    const PER_THREAD: usize = 50;

    let baseline = engine
        .select(&body(7, "pascal", false))
        .expect("baseline select");
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    let reply = engine
                        .select(&body(7, "pascal", false))
                        .expect("read-only select succeeds");
                    assert_eq!(reply, baseline, "read replies must be stable");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let report = engine.serving_report();
    assert_eq!(report.read_decisions, (threads * PER_THREAD + 1) as u64);
    assert_eq!(report.write_decisions, 0);
    assert_eq!(
        report.write_lock_acquisitions, 0,
        "a learn:false flood must never touch a write lock"
    );
    assert_eq!(report.write_lock_wait_us, 0);
    assert_eq!(report.snapshot_swaps, 0);
    for gpu in &engine.stats().gpus {
        assert_eq!(gpu.snapshot_version, 0, "no snapshot was ever published");
    }
}

/// Shard count is invisible to clients: engines built from the same
/// artifact with 1 and 8 write shards produce bit-identical reply
/// sequences for the same sequential stream of selects and feedback.
#[test]
fn sequential_replies_are_identical_across_shard_counts() {
    let model = train_model();
    let one = Engine::from_artifact(
        &model,
        &EngineOptions {
            write_shards: 1,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let eight = Engine::from_artifact(
        &model,
        &EngineOptions {
            write_shards: 8,
            ..EngineOptions::default()
        },
    )
    .unwrap();

    for i in 0..30u64 {
        let learn = i % 4 != 3; // mix write and read decisions
        let gpu = ["pascal", "volta", "turing"][(i % 3) as usize];
        let b = body(i, gpu, learn);
        let a = one.select(&b).expect("1-shard select");
        let z = eight.select(&b).expect("8-shard select");
        assert_eq!(a, z, "reply divergence at step {i}");
        if a.benchmark_requested && learn {
            let fa = one
                .feedback(gpu, a.cluster, "hyb")
                .expect("1-shard feedback");
            let fz = eight
                .feedback(gpu, z.cluster, "hyb")
                .expect("8-shard feedback");
            assert_eq!(fa, fz, "feedback reply divergence at step {i}");
        }
    }
    let sa = one.stats();
    let sz = eight.stats();
    for (a, z) in sa.gpus.iter().zip(sz.gpus.iter()) {
        assert_eq!(a.clusters, z.clusters);
        assert_eq!(a.unlabeled_clusters, z.unlabeled_clusters);
        assert_eq!(a.staleness, z.staleness);
        assert_eq!(a.shards, 1);
        assert_eq!(z.shards, 8);
    }
}
