//! Artifact round-trip guarantees: loading a saved model must reproduce
//! bit-identical decisions, and incompatible artifacts must fail with
//! typed errors, never panics.

use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_serve::artifact::{self, TrainConfig, ARTIFACT_VERSION};
use spsel_serve::protocol::SelectBody;
use spsel_serve::{Engine, EngineOptions, ServeError};

fn context(n_base: usize, seed: u64) -> ExperimentContext {
    let cache = Cache::disabled();
    let mut report = RunReport::new("artifact-test");
    ExperimentContext::build(CorpusConfig::small(n_base, seed), &cache, &mut report)
}

fn body(gpu: &str, features: Vec<f64>) -> SelectBody {
    SelectBody {
        matrix: None,
        features: Some(features),
        gpu: gpu.to_string(),
        iterations: Some(500),
        learn: Some(false),
        workload: None,
    }
}

/// The headline tentpole guarantee: train, serialize, reload, and every
/// decision over the full quick corpus — on every GPU — is bit-identical
/// to the in-memory model's, including the serialized reply bytes.
#[test]
fn reloaded_artifact_reproduces_every_decision_bit_identically() {
    let ctx = context(120, 0xC0FFEE);
    let model = artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds");

    // The JSON form itself is stable: serialize -> parse -> serialize is
    // byte-for-byte identical (floats use shortest round-trip printing).
    let json = artifact::to_json(&model);
    let reloaded = artifact::from_json(&json).expect("artifact parses");
    assert_eq!(artifact::to_json(&reloaded), json);

    let opts = EngineOptions::default();
    let original = Engine::from_artifact(&model, &opts).expect("engine from trained model");
    let restored = Engine::from_artifact(&reloaded, &opts).expect("engine from reloaded model");

    let all: Vec<usize> = (0..ctx.corpus.len()).collect();
    let features = ctx.features(&all);
    let mut compared = 0usize;
    for gpu in original.gpus() {
        for fv in &features {
            let b = body(gpu.name(), fv.as_slice().to_vec());
            let a = original.select(&b).expect("original decides");
            let r = restored.select(&b).expect("restored decides");
            assert_eq!(a, r);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&r).unwrap(),
            );
            compared += 1;
        }
    }
    assert!(
        compared >= 3 * ctx.corpus.len(),
        "expected full corpus x all GPUs, compared only {compared}"
    );
}

#[test]
fn save_and_load_round_trip_through_disk() {
    let ctx = context(30, 11);
    let model = artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds");
    let path = std::env::temp_dir().join(format!("spsel-artifact-{}.spsel", std::process::id()));
    artifact::save(&model, &path).expect("save succeeds");
    let loaded = artifact::load(&path).expect("load succeeds");
    assert_eq!(artifact::to_json(&loaded), artifact::to_json(&model));
    std::fs::remove_file(&path).ok();

    let missing = artifact::load("/nonexistent/model.spsel");
    assert!(matches!(missing, Err(ServeError::Io { .. })));
}

#[test]
fn incompatible_artifacts_fail_with_typed_errors_not_panics() {
    let ctx = context(30, 11);
    let model = artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds");
    let json = artifact::to_json(&model);

    // A future artifact version is rejected before the payload is decoded.
    let needle = format!("\"artifact_version\":{ARTIFACT_VERSION}");
    assert!(json.contains(&needle), "envelope carries its version");
    let tampered = json.replacen(&needle, "\"artifact_version\":999", 1);
    match artifact::from_json(&tampered) {
        Err(ServeError::VersionMismatch { found, expected }) => {
            assert_eq!(found, 999);
            assert_eq!(expected, ARTIFACT_VERSION);
        }
        other => panic!("expected a version mismatch, got {other:?}"),
    }

    // A different feature pipeline is rejected even at the same version.
    let digest = artifact::feature_pipeline_digest();
    let tampered = json.replacen(&digest, "0000000000000000", 1);
    match artifact::from_json(&tampered) {
        Err(ServeError::FeatureDigestMismatch { found, expected }) => {
            assert_eq!(found, "0000000000000000");
            assert_eq!(expected, digest);
        }
        other => panic!("expected a feature-digest mismatch, got {other:?}"),
    }

    // Garbage and truncated payloads are malformed, not panics.
    for bad in ["", "not json at all", "{\"half\":", "[1,2,3]", "{}"] {
        match artifact::from_json(bad) {
            Err(ServeError::Malformed { .. }) => {}
            other => panic!("expected malformed for {bad:?}, got {other:?}"),
        }
    }
}
