//! End-to-end daemon tests: a real `Server` on an ephemeral port, real
//! TCP clients, every request type, error envelopes, concurrency, and
//! graceful shutdown.

use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::{RunReport, ServingReport};
use spsel_features::{FeatureVector, MatrixStats};
use spsel_matrix::gen;
use spsel_matrix::CsrMatrix;
use spsel_serve::artifact::{self, TrainConfig};
use spsel_serve::protocol::SelectBody;
use spsel_serve::server::handle_request;
use spsel_serve::{Client, Engine, EngineOptions, Request, Response, ServeOptions, Server};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Train a small model and build an engine from it.
fn build_engine() -> Engine {
    let cache = Cache::disabled();
    let mut report = RunReport::new("server-test");
    let ctx = ExperimentContext::build(CorpusConfig::small(30, 5), &cache, &mut report);
    let model = artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds");
    Engine::from_artifact(&model, &EngineOptions::default()).unwrap()
}

/// Train a small model and start a daemon on an ephemeral port.
fn start_server(workers: usize) -> (SocketAddr, std::thread::JoinHandle<ServingReport>) {
    let engine = Arc::new(build_engine());
    let server = Server::bind(
        engine,
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers,
            default_deadline_ms: 0,
            ..ServeOptions::default()
        },
    )
    .expect("bind succeeds");
    let addr = server.local_addr().expect("bound address");
    (addr, std::thread::spawn(move || server.run()))
}

fn feature_vec(seed: u64) -> Vec<f64> {
    let csr = CsrMatrix::from(&gen::power_law(150, 150, 2, 2.4, 60, seed));
    FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
        .as_slice()
        .to_vec()
}

fn select_request(gpu: &str, features: Vec<f64>) -> Request {
    Request::Select {
        matrix: None,
        features: Some(features),
        gpu: gpu.to_string(),
        iterations: Some(400),
        deadline_ms: None,
        learn: Some(true),
        workload: None,
    }
}

#[test]
fn daemon_answers_every_request_type_and_shuts_down_cleanly() {
    let (addr, handle) = start_server(2);
    let mut client = Client::connect(addr).expect("client connects");

    // Select with inline features.
    let response = client
        .roundtrip(&select_request("pascal", feature_vec(1)))
        .unwrap();
    assert!(response.ok, "select fails: {response:?}");
    let select = response.select.expect("select payload");
    assert_eq!(select.gpu, "Pascal");
    assert_eq!(select.predicted.len(), 4);
    assert!(select.amortized_total_us > 0.0);
    assert!(!select.format.is_empty());

    // Select with a matrix file.
    let mtx = std::env::temp_dir().join(format!("spsel-server-test-{}.mtx", std::process::id()));
    std::fs::write(
        &mtx,
        "%%MatrixMarket matrix coordinate real general\n4 4 5\n1 1 1.0\n2 2 2.0\n3 3 3.0\n4 4 4.0\n4 1 0.5\n",
    )
    .unwrap();
    let response = client
        .roundtrip(&Request::Select {
            matrix: Some(mtx.display().to_string()),
            features: None,
            gpu: "volta".into(),
            iterations: None,
            deadline_ms: None,
            learn: Some(false),
            workload: None,
        })
        .unwrap();
    std::fs::remove_file(&mtx).ok();
    assert!(response.ok, "matrix-path select fails: {response:?}");
    let from_file = response.select.expect("select payload");
    assert_eq!(from_file.gpu, "Volta");

    // Batch: all bodies decided, envelope ok.
    let bodies: Vec<SelectBody> = (0..6)
        .map(|s| SelectBody {
            matrix: None,
            features: Some(feature_vec(s)),
            gpu: "turing".into(),
            iterations: Some(100),
            learn: Some(true),
            workload: None,
        })
        .collect();
    let response = client
        .roundtrip(&Request::Batch {
            requests: bodies,
            deadline_ms: None,
        })
        .unwrap();
    assert!(response.ok, "batch fails: {response:?}");
    let batch = response.batch.expect("batch payload");
    assert_eq!(batch.len(), 6);
    assert!(batch.iter().all(|r| r.ok && r.select.is_some()));

    // Feedback on the cluster the first select reported.
    let response = client
        .roundtrip(&Request::Feedback {
            gpu: "pascal".into(),
            cluster: select.cluster,
            best: "hyb".into(),
        })
        .unwrap();
    assert!(response.ok, "feedback fails: {response:?}");
    let feedback = response.feedback.expect("feedback payload");
    assert_eq!(feedback.format, "HYB");

    // Typed errors come back as envelopes, not dropped connections.
    for (request, code) in [
        (select_request("quantum", feature_vec(2)), "unknown_gpu"),
        (
            Request::Select {
                matrix: None,
                features: Some(vec![1.0, 2.0]),
                gpu: "pascal".into(),
                iterations: None,
                deadline_ms: None,
                learn: None,
                workload: None,
            },
            "feature_dim",
        ),
        (
            Request::Feedback {
                gpu: "pascal".into(),
                cluster: 100_000,
                best: "csr".into(),
            },
            "unknown_cluster",
        ),
        (
            Request::Feedback {
                gpu: "pascal".into(),
                cluster: 0,
                best: "dense".into(),
            },
            "unknown_format",
        ),
    ] {
        let response = client.roundtrip(&request).unwrap();
        assert!(!response.ok);
        assert_eq!(response.error.expect("error envelope").code, code);
    }

    // An unparsable line is a bad_request envelope and the connection
    // stays usable.
    let raw = client.roundtrip_raw("this is not json").unwrap();
    let parsed: Response = serde_json::from_str(&raw).unwrap();
    assert!(!parsed.ok);
    assert_eq!(parsed.error.unwrap().code, "bad_request");
    let response = client
        .roundtrip(&select_request("pascal", feature_vec(3)))
        .unwrap();
    assert!(response.ok);

    // Stats reflect what this test did.
    let response = client.roundtrip(&Request::Stats).unwrap();
    assert!(response.ok);
    let stats = response.stats.expect("stats payload");
    assert_eq!(stats.artifact_version, artifact::ARTIFACT_VERSION);
    assert_eq!(stats.feature_digest, artifact::feature_pipeline_digest());
    assert_eq!(stats.gpus.len(), 3);
    assert!(stats.serving.requests >= 10);
    assert!(stats.serving.select_requests >= 2);
    assert!(stats.serving.batch_requests >= 1);
    assert!(stats.serving.feedback_requests >= 1);
    assert!(stats.serving.errors >= 5);
    assert_eq!(stats.serving.max_batch_size, 6);

    // Shutdown stops the daemon; run() returns the final counters.
    let response = client.roundtrip(&Request::Shutdown).unwrap();
    assert!(response.ok);
    assert!(response.shutdown.expect("shutdown payload").stopping);
    let final_report = handle.join().expect("server thread joins");
    assert!(final_report.requests >= stats.serving.requests);
    assert!(final_report.p50_latency_us > 0.0);
}

#[test]
fn daemon_survives_concurrent_clients_without_failures() {
    let (addr, handle) = start_server(4);
    const CLIENTS: usize = 8;
    const REQUESTS: usize = 10;

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut ok = 0usize;
                for r in 0..REQUESTS {
                    let request = select_request("pascal", feature_vec((c * REQUESTS + r) as u64));
                    let response = client.roundtrip(&request).expect("roundtrip succeeds");
                    if response.ok {
                        ok += 1;
                    }
                }
                ok
            })
        })
        .collect();
    let succeeded: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(
        succeeded,
        CLIENTS * REQUESTS,
        "every concurrent request must succeed"
    );

    let mut client = Client::connect(addr).unwrap();
    let response = client.roundtrip(&Request::Stats).unwrap();
    let stats = response.stats.unwrap();
    assert!(stats.serving.select_requests >= (CLIENTS * REQUESTS) as u64);
    client.roundtrip(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn select_deadline_is_enforced_before_compute() {
    // A request whose deadline elapsed while it sat in the queue is
    // rejected typed, before any decision work — simulated by
    // back-dating `received`.
    let engine = build_engine();
    let late = Instant::now()
        .checked_sub(Duration::from_millis(80))
        .expect("clock is past the epoch");
    let request = Request::Select {
        matrix: None,
        features: Some(feature_vec(4)),
        gpu: "pascal".into(),
        iterations: None,
        deadline_ms: Some(10),
        learn: Some(true),
        workload: None,
    };
    let (response, stop) = handle_request(&engine, &request, late, 0);
    assert!(!stop);
    assert!(!response.ok);
    assert_eq!(response.error.expect("envelope").code, "deadline_exceeded");
    let report = engine.serving_report();
    assert_eq!(report.deadline_exceeded, 1);
    assert_eq!(
        report.select_requests, 0,
        "the rejected request must not have been decided"
    );
    assert_eq!(report.read_decisions + report.write_decisions, 0);

    // The same request with a live deadline is answered normally.
    let (response, _) = handle_request(&engine, &request, Instant::now(), 0);
    assert!(response.ok, "live-deadline select fails: {response:?}");
}

#[test]
fn batch_deadline_skips_items_cooperatively() {
    let engine = build_engine();
    let bodies: Vec<SelectBody> = (0..5)
        .map(|s| SelectBody {
            matrix: None,
            features: Some(feature_vec(s)),
            gpu: "volta".into(),
            iterations: Some(100),
            learn: Some(true),
            workload: None,
        })
        .collect();

    // A batch whose deadline is already blown: the cooperative check
    // fires before each item, so every item comes back as a typed
    // `deadline_skipped` envelope and zero decisions are computed.
    let late = Instant::now()
        .checked_sub(Duration::from_millis(80))
        .expect("clock is past the epoch");
    let (response, _) = handle_request(
        &engine,
        &Request::Batch {
            requests: bodies.clone(),
            deadline_ms: Some(10),
        },
        late,
        0,
    );
    assert!(!response.ok, "a skipped item fails the batch envelope");
    let batch = response.batch.expect("batch payload");
    assert_eq!(batch.len(), 5, "one envelope per item, order preserved");
    for item in &batch {
        assert!(!item.ok);
        assert_eq!(
            item.error.as_ref().expect("envelope").code,
            "deadline_skipped"
        );
    }
    let report = engine.serving_report();
    assert_eq!(report.deadline_skipped, 5);
    assert_eq!(report.select_requests, 0, "no item was actually decided");

    // The same batch with no deadline decides every item.
    let (response, _) = handle_request(
        &engine,
        &Request::Batch {
            requests: bodies,
            deadline_ms: None,
        },
        Instant::now(),
        0,
    );
    assert!(response.ok, "deadline-free batch fails: {response:?}");
    let batch = response.batch.expect("batch payload");
    assert!(batch.iter().all(|r| r.ok && r.select.is_some()));
    assert_eq!(engine.serving_report().deadline_skipped, 5, "unchanged");
}

#[test]
fn identical_requests_get_identical_responses_when_not_learning() {
    // learn=false must not mutate serving state, so the same request is
    // answered identically forever — the daemon analogue of the artifact
    // round-trip guarantee.
    let (addr, handle) = start_server(2);
    let mut client = Client::connect(addr).unwrap();
    let request = Request::Select {
        matrix: None,
        features: Some(feature_vec(9)),
        gpu: "turing".into(),
        iterations: Some(250),
        deadline_ms: None,
        learn: Some(false),
        workload: None,
    };
    let first = client.roundtrip(&request).unwrap();
    assert!(first.ok);
    for _ in 0..3 {
        assert_eq!(client.roundtrip(&request).unwrap(), first);
    }
    client.roundtrip(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}
