//! Adversarial wire-protocol tests against a live daemon: torn frames,
//! oversized and zero length prefixes, garbage bytes, cross-connection
//! isolation, slow readers, load shedding, and a multi-hundred-
//! connection soak. Nothing here may panic the server or disturb a
//! well-behaved neighbour connection.

use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_features::{FeatureVector, MatrixStats};
use spsel_matrix::{gen, CsrMatrix};
use spsel_serve::artifact::{self, ModelArtifact, TrainConfig};
use spsel_serve::framing::{self, MAGIC};
use spsel_serve::protocol::{Request, Response, SelectBody};
use spsel_serve::{Client, Engine, EngineOptions, ServeOptions, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

/// One model for the whole suite: training dominates test wall time and
/// every test here wants the same small corpus.
fn model() -> &'static ModelArtifact {
    static MODEL: OnceLock<ModelArtifact> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cache = Cache::disabled();
        let mut report = RunReport::new("robustness-test");
        let ctx = ExperimentContext::build(CorpusConfig::small(25, 11), &cache, &mut report);
        artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds")
    })
}

fn start_server(
    opts: ServeOptions,
) -> (
    SocketAddr,
    std::thread::JoinHandle<spsel_core::telemetry::ServingReport>,
) {
    let engine = Arc::new(Engine::from_artifact(model(), &EngineOptions::default()).unwrap());
    let server = Server::bind(engine, opts).expect("bind succeeds");
    let addr = server.local_addr().expect("bound address");
    (addr, std::thread::spawn(move || server.run()))
}

fn single_worker() -> ServeOptions {
    ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    }
}

fn feature_vec(seed: u64) -> Vec<f64> {
    let csr = CsrMatrix::from(&gen::power_law(130, 130, 2, 2.3, 50, seed));
    FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
        .as_slice()
        .to_vec()
}

fn select_request(seed: u64) -> Request {
    Request::Select {
        matrix: None,
        features: Some(feature_vec(seed)),
        gpu: "Volta".into(),
        iterations: Some(200),
        deadline_ms: None,
        learn: Some(false),
        workload: None,
    }
}

fn shutdown_via(addr: SocketAddr) {
    let mut control = Client::connect(addr).expect("control connects");
    let _ = control.roundtrip(&Request::Shutdown);
}

/// Read one binary response frame off a raw stream.
fn read_frame(stream: &mut impl Read) -> std::io::Result<Response> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    framing::decode_response(payload[0], &payload[1..])
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn expect_eof(stream: &mut impl Read) {
    let mut byte = [0u8; 1];
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return,
            Ok(_) => panic!("expected the server to close, got more bytes"),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                assert!(
                    Instant::now() < deadline,
                    "server never closed the connection"
                );
            }
            Err(_) => return, // reset also counts as closed
        }
    }
}

/// A binary conversation split at *every* byte boundary, each half sent
/// as its own TCP segment, must reassemble to the same two replies.
#[test]
fn torn_frames_reassemble_at_every_split_point() {
    let (addr, handle) = start_server(single_worker());
    let select_frame = framing::encode_request(&select_request(1));
    let stats_frame = framing::encode_request(&Request::Stats);
    let mut conversation = Vec::new();
    conversation.extend_from_slice(&MAGIC);
    conversation.extend_from_slice(&select_frame);
    conversation.extend_from_slice(&stats_frame);

    // The full sweep is quadratic in wall time only through connect
    // cost; the conversation is ~300 bytes so this stays fast.
    for cut in 1..conversation.len() {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&conversation[..cut]).unwrap();
        stream.flush().unwrap();
        // Give the halves a real chance to arrive as separate reads.
        std::thread::sleep(Duration::from_millis(1));
        stream.write_all(&conversation[cut..]).unwrap();
        stream.flush().unwrap();

        let mut ack = [0u8; 4];
        stream.read_exact(&mut ack).expect("magic ack");
        assert_eq!(ack, MAGIC, "split at {cut}: bad ack");
        let select = read_frame(&mut stream).expect("select reply");
        assert!(select.ok, "split at {cut}: {select:?}");
        assert!(select.select.is_some(), "split at {cut}");
        let stats = read_frame(&mut stream).expect("stats reply");
        assert!(stats.ok && stats.stats.is_some(), "split at {cut}");
    }
    shutdown_via(addr);
    let report = handle.join().unwrap();
    assert_eq!(report.errors, 0, "no split may produce an error");
}

/// An oversized length prefix cannot be resynchronized: typed
/// `frame_too_large` envelope, then the connection closes. A zero
/// length is `malformed`, same closing behavior.
#[test]
fn oversized_and_zero_length_prefixes_answer_typed_and_close() {
    let (addr, handle) = start_server(single_worker());
    for (prefix, code) in [
        (u32::MAX.to_le_bytes(), "frame_too_large"),
        ((framing::MAX_FRAME + 1).to_le_bytes(), "frame_too_large"),
        (0u32.to_le_bytes(), "malformed"),
    ] {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&MAGIC).unwrap();
        stream.write_all(&prefix).unwrap();
        let mut ack = [0u8; 4];
        stream.read_exact(&mut ack).unwrap();
        assert_eq!(ack, MAGIC);
        let reply = read_frame(&mut stream).expect("typed error frame");
        assert!(!reply.ok);
        assert_eq!(reply.error.expect("error envelope").code, code);
        expect_eof(&mut stream);
    }
    shutdown_via(addr);
    handle.join().unwrap();
}

/// A frame cut off by the peer closing its write side gets a typed
/// `malformed` envelope, not silence and not a panic.
#[test]
fn truncated_tail_at_eof_is_a_typed_malformed_error() {
    let (addr, handle) = start_server(single_worker());
    let frame = framing::encode_request(&select_request(2));
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&MAGIC).unwrap();
    stream.write_all(&frame[..frame.len() / 2]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut ack = [0u8; 4];
    stream.read_exact(&mut ack).unwrap();
    let reply = read_frame(&mut stream).expect("typed error frame");
    assert!(!reply.ok);
    assert_eq!(reply.error.expect("error envelope").code, "malformed");
    expect_eof(&mut stream);
    shutdown_via(addr);
    handle.join().unwrap();
}

/// Garbage *inside* a well-framed payload (unknown kind, truncated
/// body) is a typed reply and the connection stays usable; so does a
/// garbage JSON line. Only unframeable garbage closes.
#[test]
fn garbage_payloads_answer_typed_and_leave_the_connection_usable() {
    let (addr, handle) = start_server(single_worker());

    // Binary: unknown kind byte in a valid frame.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&MAGIC).unwrap();
    let mut ack = [0u8; 4];
    stream.read_exact(&mut ack).unwrap();
    stream.write_all(&5u32.to_le_bytes()).unwrap();
    stream.write_all(&[0x7F, 0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
    let reply = read_frame(&mut stream).expect("typed error frame");
    assert!(!reply.ok);
    assert_eq!(reply.error.expect("error envelope").code, "malformed");
    // Same connection, valid frame: still served.
    stream
        .write_all(&framing::encode_request(&Request::Stats))
        .unwrap();
    let stats = read_frame(&mut stream).expect("stats after garbage");
    assert!(stats.ok && stats.stats.is_some());
    drop(stream);

    // Binary: a truncated body inside a well-framed Select.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&MAGIC).unwrap();
    stream.read_exact(&mut ack).unwrap();
    let full = framing::encode_request(&select_request(3));
    // Keep the frame header but declare only half the body: the decoder
    // runs out of bytes mid-struct.
    let body_len = (full.len() - 4) / 2;
    stream.write_all(&(body_len as u32).to_le_bytes()).unwrap();
    stream.write_all(&full[4..4 + body_len]).unwrap();
    let reply = read_frame(&mut stream).expect("typed error frame");
    assert!(!reply.ok);
    assert_eq!(reply.error.expect("error envelope").code, "malformed");
    stream
        .write_all(&framing::encode_request(&Request::Stats))
        .unwrap();
    assert!(read_frame(&mut stream).expect("still alive").ok);
    drop(stream);

    // JSON: a garbage line answers bad_request and the line protocol
    // keeps going.
    let mut client = Client::connect(addr).expect("json connects");
    let raw = client.roundtrip_raw("this is not json").unwrap();
    assert!(raw.contains("bad_request"), "{raw}");
    let ok = client.roundtrip(&Request::Stats).unwrap();
    assert!(ok.ok);

    // A preamble that is neither JSON nor the magic ('S' but not SPB1):
    // typed JSON error, then close.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"SPBX garbage\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains("bad_request"), "{line}");
    expect_eof(&mut stream);

    shutdown_via(addr);
    handle.join().unwrap();
}

/// A malformed (and closed) connection must not disturb a healthy one
/// that is mid-session on the same single-worker event loop.
#[test]
fn malformed_connection_never_disturbs_its_neighbour() {
    let (addr, handle) = start_server(single_worker());
    let mut healthy = Client::connect_binary(addr).expect("healthy connects");
    let first = healthy.roundtrip(&select_request(4)).unwrap();
    assert!(first.ok);

    // Neighbour sends an unrecoverable length prefix and dies.
    let mut evil = TcpStream::connect(addr).expect("evil connects");
    evil.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    evil.write_all(&MAGIC).unwrap();
    let mut ack = [0u8; 4];
    evil.read_exact(&mut ack).unwrap();
    evil.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let reply = read_frame(&mut evil).expect("typed error frame");
    assert_eq!(reply.error.expect("envelope").code, "frame_too_large");
    expect_eof(&mut evil);

    // The healthy connection continues bit-identically.
    let again = healthy.roundtrip(&select_request(4)).unwrap();
    assert_eq!(
        serde_json::to_string(&again).unwrap(),
        serde_json::to_string(&first).unwrap(),
        "neighbour failure changed a read-only reply"
    );
    shutdown_via(addr);
    handle.join().unwrap();
}

/// A reader draining one byte per tick must not stall other clients on
/// the same worker: the event loop parks its reply in the write buffer
/// and keeps serving everyone else.
#[test]
fn slow_reader_does_not_stall_other_connections() {
    let (addr, handle) = start_server(single_worker());

    // The slow client requests a hefty batch reply, then barely reads.
    let mut slow = TcpStream::connect(addr).expect("slow connects");
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let bodies: Vec<SelectBody> = (0..40)
        .map(|s| SelectBody {
            matrix: None,
            features: Some(feature_vec(40 + s)),
            gpu: "Pascal".into(),
            iterations: None,
            learn: Some(false),
            workload: None,
        })
        .collect();
    let batch = serde_json::to_string(&Request::Batch {
        requests: bodies,
        deadline_ms: None,
    })
    .unwrap();
    slow.write_all(batch.as_bytes()).unwrap();
    slow.write_all(b"\n").unwrap();

    // Trickle-read 64 bytes at one byte per 2ms while the fast client
    // works; the worker must interleave both.
    let trickle = std::thread::spawn(move || {
        let mut head = Vec::with_capacity(64);
        let mut byte = [0u8; 1];
        for _ in 0..64 {
            slow.read_exact(&mut byte).expect("slow byte");
            head.push(byte[0]);
            std::thread::sleep(Duration::from_millis(2));
        }
        // Then drain the rest and check the reply parses whole.
        let mut rest = String::new();
        let mut reader = BufReader::new(slow);
        reader.read_line(&mut rest).expect("rest of reply");
        let full = format!("{}{rest}", String::from_utf8(head).unwrap());
        let reply: Response = serde_json::from_str(full.trim()).expect("parses");
        assert!(reply.ok, "slow client's own reply must still be whole");
        assert_eq!(reply.batch.expect("batch payload").len(), 40);
    });

    let mut fast = Client::connect(addr).expect("fast connects");
    let started = Instant::now();
    for s in 0..30 {
        let reply = fast.roundtrip(&select_request(200 + s)).unwrap();
        assert!(reply.ok, "fast request {s} failed: {reply:?}");
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "fast client stalled behind the slow reader: {elapsed:?}"
    );
    trickle.join().unwrap();
    shutdown_via(addr);
    handle.join().unwrap();
}

/// Admission control: pipelined requests behind an undrained write
/// buffer get typed `shed` envelopes, and the `shed` counter in the
/// final report equals the number of shed envelopes observed on the
/// wire.
#[test]
fn shed_envelopes_match_the_shed_counter_exactly() {
    let (addr, handle) = start_server(ServeOptions {
        workers: 1,
        shed_buffer_bytes: 4096,
        ..ServeOptions::default()
    });
    // One burst of pipelined Stats requests: replies (a few KiB each)
    // pile into the connection's write buffer far faster than the
    // kernel drains them, so past the threshold the server must answer
    // `shed` instead of computing.
    const BURST: usize = 3000;
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut burst = Vec::with_capacity(BURST * 8);
    for _ in 0..BURST {
        burst.extend_from_slice(b"\"Stats\"\n");
    }
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();

    let mut shed_seen = 0usize;
    let mut served = 0usize;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for i in 0..BURST {
        line.clear();
        let n = reader.read_line(&mut line).expect("reply line");
        assert!(n > 0, "connection died at reply {i}");
        let reply: Response = serde_json::from_str(line.trim()).expect("parses");
        match reply.error {
            Some(e) => {
                assert_eq!(e.code, "shed", "only shed errors expected: {e:?}");
                shed_seen += 1;
            }
            None => {
                assert!(reply.ok && reply.stats.is_some());
                served += 1;
            }
        }
    }
    assert!(shed_seen > 0, "burst never tripped the shed threshold");
    assert_eq!(shed_seen + served, BURST);

    // The buffer is drained now, so a fresh request is served — and the
    // final report's counter must match the envelopes we counted.
    shutdown_via(addr);
    let report = handle.join().unwrap();
    assert_eq!(report.shed as usize, shed_seen);
    assert_eq!(
        report.errors as usize, shed_seen,
        "sheds are the only errors"
    );
}

/// Connections past `max_connections` are answered with one `shed`
/// line and closed; existing connections are untouched.
#[test]
fn connection_cap_rejects_extras_with_a_shed_line() {
    let (addr, handle) = start_server(ServeOptions {
        workers: 1,
        max_connections: 4,
        ..ServeOptions::default()
    });
    let mut held: Vec<Client> = (0..4)
        .map(|_| Client::connect(addr).expect("held connects"))
        .collect();
    for c in held.iter_mut() {
        assert!(c.roundtrip(&Request::Stats).unwrap().ok);
    }

    let mut extra = TcpStream::connect(addr).expect("extra connects");
    extra
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut line = String::new();
    BufReader::new(extra.try_clone().unwrap())
        .read_line(&mut line)
        .expect("rejection line");
    let reply: Response = serde_json::from_str(line.trim()).expect("parses");
    assert_eq!(reply.error.expect("envelope").code, "shed");
    expect_eof(&mut extra);

    // Held connections still work, and the report shows the rejection.
    for c in held.iter_mut() {
        assert!(c.roundtrip(&Request::Stats).unwrap().ok);
    }
    drop(held);
    // Wait for the server to reap the closed connections so a control
    // connection is admitted under the cap.
    std::thread::sleep(Duration::from_millis(100));
    shutdown_via(addr);
    let report = handle.join().unwrap();
    assert!(report.connections_rejected >= 1);
    assert_eq!(report.peak_connections, 4);
}

/// 256 simultaneous binary connections, pipelined, zero failures — the
/// mini-soak CI runs in-process.
#[test]
fn soak_256_binary_connections_zero_failures() {
    let (addr, handle) = start_server(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });
    const THREADS: usize = 8;
    const CONNS_PER_THREAD: usize = 32;
    const REQUESTS_PER_CONN: usize = 6;
    const PIPELINE: usize = 3;
    // One shared feature vector: the soak exercises the wire and the
    // event loop, not the feature extractor.
    let features = Arc::new(feature_vec(9000));
    let barrier = Arc::new(Barrier::new(THREADS));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let features = Arc::clone(&features);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> usize {
                let mut conns: Vec<Client> = (0..CONNS_PER_THREAD)
                    .map(|_| Client::connect_binary(addr).expect("soak connects"))
                    .collect();
                // Everyone connects before anyone issues requests, so
                // all 256 connections are provably open at once.
                barrier.wait();
                let mut failed = 0usize;
                let mut issued = vec![0usize; conns.len()];
                let mut inflight = vec![0usize; conns.len()];
                loop {
                    let mut live = false;
                    for (i, conn) in conns.iter_mut().enumerate() {
                        while issued[i] < REQUESTS_PER_CONN && inflight[i] < PIPELINE {
                            let request = Request::Select {
                                matrix: None,
                                features: Some(features.as_ref().clone()),
                                gpu: ["Pascal", "Volta", "Turing"][(t + i + issued[i]) % 3].into(),
                                iterations: Some(100),
                                deadline_ms: None,
                                learn: Some(false),
                                workload: None,
                            };
                            conn.send(&request).expect("send");
                            issued[i] += 1;
                            inflight[i] += 1;
                        }
                        if inflight[i] > 0 {
                            conn.flush().expect("flush");
                            live = true;
                        }
                    }
                    if !live {
                        return failed;
                    }
                    for (i, conn) in conns.iter_mut().enumerate() {
                        if inflight[i] == 0 {
                            continue;
                        }
                        let reply = conn.recv().expect("recv");
                        inflight[i] -= 1;
                        if !reply.ok {
                            failed += 1;
                        }
                    }
                }
            })
        })
        .collect();
    let failed: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(failed, 0, "soak must be failure-free");

    shutdown_via(addr);
    let report = handle.join().unwrap();
    let total = (THREADS * CONNS_PER_THREAD * REQUESTS_PER_CONN) as u64;
    assert_eq!(report.select_requests, total);
    assert_eq!(report.binary_requests, total);
    assert_eq!(report.errors, 0);
    assert_eq!(report.shed, 0);
    assert!(
        report.peak_connections >= (THREADS * CONNS_PER_THREAD) as u64,
        "all {} connections were open concurrently, peak says {}",
        THREADS * CONNS_PER_THREAD,
        report.peak_connections
    );
}

/// Deadlines compose with pipelining: a request's age is measured from
/// when its bytes arrived, so one queued behind a long batch on the
/// same connection is rejected with a typed `deadline_exceeded`
/// envelope before any decision work.
#[test]
fn pipelined_request_behind_a_long_batch_exceeds_its_deadline() {
    // The fat batch's reply is megabytes; disable shedding so the late
    // select is judged by the deadline check, not admission control.
    let (addr, handle) = start_server(ServeOptions {
        shed_buffer_bytes: 0,
        ..single_worker()
    });
    // First a fat batch (thousands of decisions — the allocation-free
    // decide runs in well under a microsecond, so it takes this many to
    // stay comfortably over 1ms of compute), then a 1ms-deadline select
    // pipelined behind it in the same write.
    let bodies: Vec<SelectBody> = (0..4096)
        .map(|s| SelectBody {
            matrix: None,
            features: Some(feature_vec(500 + s)),
            gpu: "Turing".into(),
            iterations: None,
            learn: Some(false),
            workload: None,
        })
        .collect();
    // One write syscall for handshake + both frames, so both requests
    // land in the same event-loop fill and share an arrival stamp.
    let mut wire = Vec::new();
    wire.extend_from_slice(&MAGIC);
    wire.extend_from_slice(&framing::encode_request(&Request::Batch {
        requests: bodies,
        deadline_ms: None,
    }));
    wire.extend_from_slice(&framing::encode_request(&Request::Select {
        matrix: None,
        features: Some(feature_vec(501)),
        gpu: "Volta".into(),
        iterations: None,
        deadline_ms: Some(1),
        learn: Some(false),
        workload: None,
    }));
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(&wire).unwrap();
    let mut ack = [0u8; 4];
    stream.read_exact(&mut ack).unwrap();
    assert_eq!(ack, MAGIC);
    let batch = read_frame(&mut stream).expect("batch reply");
    assert!(batch.ok, "the batch itself had no deadline");
    let late = read_frame(&mut stream).expect("late select reply");
    assert!(!late.ok);
    assert_eq!(late.error.expect("envelope").code, "deadline_exceeded");
    shutdown_via(addr);
    let report = handle.join().unwrap();
    assert_eq!(report.deadline_exceeded, 1);
}

/// JSON pipelining: many request lines written at once come back as
/// exactly one reply line each, in order, identical to lockstep
/// round-trips of the same requests.
#[test]
fn json_pipelining_preserves_order_and_payloads() {
    let (addr, handle) = start_server(single_worker());
    let requests: Vec<Request> = (0..20).map(|s| select_request(300 + s)).collect();

    // Lockstep reference on one connection.
    let mut reference = Client::connect(addr).expect("reference connects");
    let expected: Vec<String> = requests
        .iter()
        .map(|r| {
            let reply = reference.roundtrip(r).unwrap();
            serde_json::to_string(&reply).unwrap()
        })
        .collect();

    // Pipelined: all twenty lines in one write.
    let mut stream = TcpStream::connect(addr).expect("pipelined connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut blob = String::new();
    for r in &requests {
        blob.push_str(&serde_json::to_string(r).unwrap());
        blob.push('\n');
    }
    stream.write_all(blob.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    for (i, want) in expected.iter().enumerate() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply line");
        let got: Response = serde_json::from_str(line.trim()).expect("parses");
        assert_eq!(
            &serde_json::to_string(&got).unwrap(),
            want,
            "pipelined reply {i} diverged from lockstep"
        );
    }
    shutdown_via(addr);
    handle.join().unwrap();
}
