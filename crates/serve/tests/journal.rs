//! Feedback-journal persistence: labels learned online survive a daemon
//! restart, replayed decisions are bit-identical, and torn journal tails
//! are tolerated.

use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_features::{FeatureVector, MatrixStats};
use spsel_matrix::{gen, CsrMatrix};
use spsel_serve::artifact::{self, ModelArtifact, TrainConfig};
use spsel_serve::{Client, Engine, EngineOptions, Request, ServeOptions, Server};
use std::path::PathBuf;
use std::sync::Arc;

fn train_model() -> ModelArtifact {
    let cache = Cache::disabled();
    let mut report = RunReport::new("journal-test");
    let ctx = ExperimentContext::build(CorpusConfig::small(30, 5), &cache, &mut report);
    artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds")
}

fn novel_features() -> Vec<f64> {
    // A bimodal shape the small training corpus never saw, so the first
    // observation opens a fresh (unlabeled) cluster.
    let csr = CsrMatrix::from(&gen::bimodal(1500, 1500, 3, 40, 0.3, 77));
    FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
        .as_slice()
        .to_vec()
}

fn select_request(features: Vec<f64>, learn: bool) -> Request {
    Request::Select {
        matrix: None,
        features: Some(features),
        gpu: "pascal".into(),
        iterations: Some(500),
        deadline_ms: None,
        learn: Some(learn),
        workload: None,
    }
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "spsel-journal-test-{tag}-{}.journal",
        std::process::id()
    ))
}

fn start_daemon(
    model: &ModelArtifact,
    journal: &PathBuf,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<spsel_core::telemetry::ServingReport>,
) {
    let mut engine = Engine::from_artifact(model, &EngineOptions::default()).unwrap();
    engine
        .attach_journal(journal)
        .expect("journal attach succeeds");
    let server = Server::bind(Arc::new(engine), ServeOptions::default()).expect("bind succeeds");
    let addr = server.local_addr().expect("bound address");
    (addr, std::thread::spawn(move || server.run()))
}

/// The satellite's restart round-trip: feed back a label, kill the
/// daemon, restart it from the same artifact and journal, and get the
/// identical post-replay decision — bit for bit.
#[test]
fn labels_survive_a_daemon_restart_via_journal_replay() {
    let model = train_model();
    let journal = journal_path("restart");
    let _ = std::fs::remove_file(&journal);

    // First life: probe which warm cluster a matrix lands in, then feed
    // back a deliberately surprising corrective label (platform drift)
    // and capture the relabeled decision. The journal persists applied
    // feedback, so it is exactly this relabeling that must survive.
    let (addr, handle) = start_daemon(&model, &journal);
    let mut client = Client::connect(addr).unwrap();
    let first = client
        .roundtrip(&select_request(novel_features(), false))
        .unwrap();
    assert!(first.ok, "select fails: {first:?}");
    let select = first.select.expect("select payload");
    let fb = client
        .roundtrip(&Request::Feedback {
            gpu: "pascal".into(),
            cluster: select.cluster,
            best: "coo".into(),
        })
        .unwrap();
    assert!(fb.ok, "feedback fails: {fb:?}");
    let labeled = client
        .roundtrip(&select_request(novel_features(), false))
        .unwrap();
    assert!(labeled.ok);
    assert_eq!(
        labeled.select.as_ref().unwrap().format,
        "COO",
        "the measured label decides immediately"
    );
    let report = {
        client.roundtrip(&Request::Shutdown).unwrap();
        handle.join().unwrap()
    };
    assert_eq!(report.journal_appended, 1);
    assert_eq!(report.journal_replayed, 0, "first life replays nothing");

    // Second life: same artifact, same journal. Replay must restore the
    // label without the cluster ever being re-benchmarked, and the same
    // learn:false probe must get the identical reply.
    let (addr, handle) = start_daemon(&model, &journal);
    let mut client = Client::connect(addr).unwrap();
    let replayed = client
        .roundtrip(&select_request(novel_features(), false))
        .unwrap();
    assert!(replayed.ok);
    assert_eq!(
        replayed.select, labeled.select,
        "post-replay decision must be bit-identical to the pre-restart one"
    );
    let stats = client.roundtrip(&Request::Stats).unwrap();
    let serving = stats.stats.expect("stats payload").serving;
    assert_eq!(serving.journal_replayed, 1);
    assert_eq!(serving.journal_skipped, 0);
    client.roundtrip(&Request::Shutdown).unwrap();
    handle.join().unwrap();
    std::fs::remove_file(&journal).ok();
}

/// Replay is forgiving: a torn final line (crash mid-append) and a
/// record for a cluster the fresh warm-start doesn't have are counted as
/// skipped, and the engine still serves.
#[test]
fn torn_and_stale_journal_records_are_skipped_not_fatal() {
    let model = train_model();
    let journal = journal_path("torn");
    std::fs::write(
        &journal,
        "{\"gpu\":\"Pascal\",\"cluster\":0,\"best\":\"ELL\"}\n\
         {\"gpu\":\"Pascal\",\"cluster\":99999,\"best\":\"CSR\"}\n\
         {\"gpu\":\"Pas",
    )
    .unwrap();

    let mut engine = Engine::from_artifact(&model, &EngineOptions::default()).unwrap();
    let (replayed, skipped) = engine.attach_journal(&journal).unwrap();
    assert_eq!(replayed, 1, "the valid in-range record is applied");
    assert_eq!(skipped, 2, "the stale record and the torn tail are not");
    let report = engine.serving_report();
    assert_eq!(report.journal_replayed, 1);
    assert_eq!(report.journal_skipped, 2);
    assert_eq!(
        report.feedback_applied, 0,
        "replay is not client feedback: wire counters stay zero"
    );

    // The replayed label is live.
    let stats = engine.stats();
    let pascal = stats.gpus.iter().find(|g| g.gpu == "Pascal").unwrap();
    assert!(pascal.clusters > 0);
    std::fs::remove_file(&journal).ok();
}
