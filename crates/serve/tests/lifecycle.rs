//! Crash-safe model lifecycle, end to end: a restarted engine is
//! state-identical to the one that died (observes and feedback both
//! replay), a journal truncated at *any* byte recovers exactly its
//! full-line prefix, a kill at every compaction boundary leaves either
//! the old state or the new one (never a corrupt store), a hot-swap
//! under a live request flood drops nothing, and a follower converges
//! on the leader through `Sync`.

use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_features::{FeatureVector, MatrixStats};
use spsel_matrix::{gen, CsrMatrix};
use spsel_serve::artifact::{self, ModelArtifact, TrainConfig};
use spsel_serve::protocol::SelectReply;
use spsel_serve::{
    checkpoint_path, load_checkpoint, read_journal, Client, CrashPoint, Engine, EngineOptions,
    JournalConfig, Request, SelectBody, ServeOptions, Server,
};
use std::path::PathBuf;
use std::sync::Arc;

fn train_model(seed: u64) -> ModelArtifact {
    let cache = Cache::disabled();
    let mut report = RunReport::new("lifecycle-test");
    let ctx = ExperimentContext::build(CorpusConfig::small(30, seed), &cache, &mut report);
    artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds")
}

/// Feature vectors the small training corpus never saw; distinct seeds
/// give distinct shapes so successive observes exercise both
/// cluster-opening and cluster-absorbing paths.
fn novel(seed: u64) -> Vec<f64> {
    let rows = 1200 + (seed as usize % 7) * 131;
    let csr = CsrMatrix::from(&gen::bimodal(rows, rows, 3, 40, 0.3, seed));
    FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
        .as_slice()
        .to_vec()
}

fn body(features: Vec<f64>, gpu: &str, learn: bool) -> SelectBody {
    SelectBody {
        matrix: None,
        features: Some(features),
        gpu: gpu.into(),
        iterations: Some(500),
        learn: Some(learn),
        workload: None,
    }
}

/// Deterministic read-only probe of the online state.
fn probe(engine: &Engine, seed: u64, gpu: &str) -> SelectReply {
    engine
        .select(&body(novel(seed), gpu, false))
        .expect("probe select succeeds")
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "spsel-lifecycle-{tag}-{}.journal",
        std::process::id()
    ))
}

fn cleanup(journal: &PathBuf) {
    std::fs::remove_file(journal).ok();
    std::fs::remove_file(checkpoint_path(journal)).ok();
}

/// Apply a fixed mutation workload — observes that open and revisit
/// clusters on two GPUs, plus one corrective feedback label — and
/// return the seeds probed afterwards.
fn mutate(engine: &Engine) -> Vec<(u64, &'static str)> {
    for (seed, gpu) in [(7, "pascal"), (19, "volta"), (7, "pascal"), (23, "pascal")] {
        let reply = engine
            .select(&body(novel(seed), gpu, true))
            .expect("learn select succeeds");
        assert_eq!(reply.gpu.to_lowercase(), gpu);
    }
    let opened = engine
        .select(&body(novel(7), "pascal", false))
        .expect("probe succeeds");
    engine
        .feedback("pascal", opened.cluster, "coo")
        .expect("feedback succeeds");
    vec![(7, "pascal"), (19, "volta"), (23, "pascal"), (42, "turing")]
}

fn engine_with_journal(model: &ModelArtifact, journal: &PathBuf, cfg: JournalConfig) -> Engine {
    let mut engine = Engine::from_artifact(model, &EngineOptions::default()).unwrap();
    engine
        .attach_journal_with(journal, cfg)
        .expect("journal attach succeeds");
    engine
}

/// Tentpole part 1: observes are as durable as feedback. A restarted
/// engine replays both and answers every read-only probe bit-identically
/// to the engine that died, including clusters opened online that were
/// never labeled.
#[test]
fn restart_replays_observes_and_feedback_state_identically() {
    let model = train_model(5);
    let journal = tmp("restart");
    cleanup(&journal);

    let first = engine_with_journal(&model, &journal, JournalConfig::default());
    let probes = mutate(&first);
    let before: Vec<SelectReply> = probes.iter().map(|&(s, g)| probe(&first, s, g)).collect();
    let report = first.serving_report();
    assert_eq!(report.observes_journaled, 4, "every learn select journals");
    assert_eq!(report.journal_appended, 1, "feedback keeps its own counter");
    let stats = first.stats();
    assert!(stats.lifecycle.journal_attached);
    assert_eq!(stats.lifecycle.last_seq, 5);
    assert_eq!(stats.lifecycle.applied_seq, 5);
    assert_eq!(stats.lifecycle.records_since_checkpoint, 5);
    assert!(stats.lifecycle.journal_bytes > 0);
    drop(first);

    let second = engine_with_journal(&model, &journal, JournalConfig::default());
    let after: Vec<SelectReply> = probes.iter().map(|&(s, g)| probe(&second, s, g)).collect();
    assert_eq!(after, before, "restart must be state-identical");
    let report = second.serving_report();
    assert_eq!(report.observes_replayed, 4);
    assert_eq!(report.journal_replayed, 1);
    assert_eq!(report.journal_skipped, 0);
    assert_eq!(second.stats().lifecycle.last_seq, 5, "numbering continues");
    cleanup(&journal);
}

/// Tentpole part 5 / satellite: truncate the journal at every byte
/// offset — the scan never fails, recovers exactly the records whose
/// lines are complete in the prefix, and counts at most the one torn
/// line as malformed.
#[test]
fn journal_truncated_at_every_byte_recovers_the_full_line_prefix() {
    let model = train_model(5);
    let journal = tmp("truncate");
    cleanup(&journal);
    let engine = engine_with_journal(&model, &journal, JournalConfig::default());
    mutate(&engine);
    drop(engine);

    let bytes = std::fs::read(&journal).expect("journal exists");
    let full = read_journal(&journal).expect("full scan succeeds");
    assert_eq!(full.entries.len(), 5);
    assert!(!full.unterminated);

    let prefix_path = tmp("truncate-prefix");
    for cut in 0..=bytes.len() {
        std::fs::write(&prefix_path, &bytes[..cut]).unwrap();
        let scan =
            read_journal(&prefix_path).unwrap_or_else(|e| panic!("scan fails at byte {cut}: {e}"));
        // Lines whose newline survived the cut are guaranteed; a final
        // line cut exactly at its closing brace still parses.
        let complete = bytes[..cut].iter().filter(|&&b| b == b'\n').count();
        let guaranteed = complete.saturating_sub(1); // minus the header line
        assert!(
            scan.entries.len() >= guaranteed && scan.entries.len() <= guaranteed + 1,
            "byte {cut}: {} entries from {complete} complete lines",
            scan.entries.len()
        );
        assert_eq!(
            scan.entries,
            full.entries[..scan.entries.len()],
            "byte {cut}: recovered entries must be a prefix of the full journal"
        );
        assert!(scan.malformed <= 1, "byte {cut}: at most the torn line");
    }

    // Attaching an engine to a torn journal seals the tail and serves;
    // spot-check a mid-record cut (the sweep above proved the scan).
    let cut = bytes.len() - 7;
    std::fs::write(&prefix_path, &bytes[..cut]).unwrap();
    let engine = engine_with_journal(&model, &prefix_path, JournalConfig::default());
    assert_eq!(engine.serving_report().torn_tails, 1);
    engine
        .select(&body(novel(3), "pascal", true))
        .expect("appends still work after sealing");
    drop(engine);
    let resealed = read_journal(&prefix_path).unwrap();
    assert!(!resealed.unterminated, "open sealed the torn tail");
    cleanup(&journal);
    cleanup(&prefix_path);
}

/// Tentpole parts 2 + 5: a deterministic kill at every compaction
/// boundary. Whatever the crash point, a restart recovers the exact
/// pre-crash state, and any checkpoint file on disk parses — old or
/// new, never corrupt.
#[test]
fn a_crash_at_every_compaction_boundary_recovers_exactly() {
    let model = train_model(5);
    for crash in [
        CrashPoint::BeforeCheckpointRename,
        CrashPoint::AfterCheckpointRename,
        CrashPoint::BeforeJournalRename,
        CrashPoint::None,
    ] {
        let journal = tmp(&format!("crash-{crash:?}"));
        cleanup(&journal);
        let engine = engine_with_journal(&model, &journal, JournalConfig::default());
        let probes = mutate(&engine);
        let before: Vec<SelectReply> = probes.iter().map(|&(s, g)| probe(&engine, s, g)).collect();
        let finished = engine.compact_with_crash(crash).expect("compaction runs");
        assert_eq!(finished, crash == CrashPoint::None, "{crash:?}");
        drop(engine);

        // The checkpoint, when present, must parse (atomic rename means
        // it is either absent, the old one, or the complete new one).
        let ckpt = load_checkpoint(&checkpoint_path(&journal))
            .unwrap_or_else(|e| panic!("{crash:?}: checkpoint unreadable: {e}"));
        match crash {
            CrashPoint::BeforeCheckpointRename => {
                assert!(ckpt.is_none(), "rename never happened")
            }
            _ => assert_eq!(ckpt.expect("checkpoint published").last_seq, 5),
        }

        let restarted = engine_with_journal(&model, &journal, JournalConfig::default());
        let after: Vec<SelectReply> = probes
            .iter()
            .map(|&(s, g)| probe(&restarted, s, g))
            .collect();
        assert_eq!(after, before, "{crash:?}: restart must recover exactly");
        let lc = restarted.stats().lifecycle;
        if crash == CrashPoint::None {
            assert_eq!(lc.checkpoint_seq, 5);
            assert_eq!(lc.records_since_checkpoint, 0, "journal is just a tail");
            let scan = read_journal(&journal).unwrap();
            assert!(scan.entries.is_empty(), "compaction bounded the journal");
        }
        // New mutations still journal and still survive another restart.
        restarted
            .select(&body(novel(57), "volta", true))
            .expect("post-recovery select succeeds");
        let check = probe(&restarted, 57, "volta");
        drop(restarted);
        let third = engine_with_journal(&model, &journal, JournalConfig::default());
        assert_eq!(probe(&third, 57, "volta"), check, "{crash:?}");
        cleanup(&journal);
    }
}

/// Satellite: past the configured record threshold the journal compacts
/// automatically — the checkpoint absorbs the history and the live file
/// drops back to a header.
#[test]
fn auto_compaction_bounds_the_journal() {
    let model = train_model(5);
    let journal = tmp("auto-compact");
    cleanup(&journal);
    let engine = engine_with_journal(
        &model,
        &journal,
        JournalConfig {
            fsync: false,
            checkpoint_every: 4,
        },
    );
    let probes = mutate(&engine); // 5 records: crosses the threshold
    let lc = engine.stats().lifecycle;
    assert_eq!(lc.compactions, 1);
    assert_eq!(lc.checkpoint_seq, 4, "compacted at the 4-record threshold");
    assert_eq!(
        lc.records_since_checkpoint, 1,
        "the fifth record is the tail"
    );
    assert_eq!(engine.serving_report().compactions, 1);
    let before: Vec<SelectReply> = probes.iter().map(|&(s, g)| probe(&engine, s, g)).collect();
    drop(engine);

    let restarted = engine_with_journal(&model, &journal, JournalConfig::default());
    let after: Vec<SelectReply> = probes
        .iter()
        .map(|&(s, g)| probe(&restarted, s, g))
        .collect();
    assert_eq!(after, before, "checkpoint + tail replay exactly");
    cleanup(&journal);
}

/// Tentpole part 3: swapping in a retrained artifact rebases the journal
/// tail onto it, so the published model equals a cold start of the new
/// artifact against the same journal; a digest expectation that doesn't
/// match is rejected without touching the serving model.
#[test]
fn swap_rebases_the_journal_tail_and_validates_digests() {
    let old_model = train_model(5);
    let new_model = train_model(11);
    assert_ne!(old_model.context_digest, new_model.context_digest);
    let artifact_path = tmp("swap-artifact");
    artifact::save(&new_model, &artifact_path).unwrap();
    let journal = tmp("swap");
    cleanup(&journal);

    let engine = engine_with_journal(&old_model, &journal, JournalConfig::default());
    let probes = mutate(&engine);
    // A cold-start control on the new artifact sees the same journal the
    // swap will rebase (copied aside: the swap compacts the original).
    let control_journal = tmp("swap-control");
    cleanup(&control_journal);
    engine.sync(0).expect("leader sync flushes the journal");
    std::fs::copy(&journal, &control_journal).unwrap();

    let wrong = engine.swap(artifact_path.to_str().unwrap(), Some("not-the-real-digest"));
    assert_eq!(
        wrong.expect_err("digest mismatch rejects").code(),
        "context_digest_mismatch"
    );
    let before_reject = probe(&engine, 7, "pascal");

    let reply = engine
        .swap(
            artifact_path.to_str().unwrap(),
            Some(&new_model.context_digest),
        )
        .expect("swap succeeds");
    assert_eq!(reply.context_digest, new_model.context_digest);
    assert_eq!(reply.previous_digest, old_model.context_digest);
    assert_eq!(reply.rebased, 5, "every journal record rebased");
    assert_eq!(engine.serving_report().swaps, 1);
    assert_eq!(
        engine.stats().lifecycle.last_swap_digest.as_deref(),
        Some(new_model.context_digest.as_str())
    );

    let control = engine_with_journal(&new_model, &control_journal, JournalConfig::default());
    for &(seed, gpu) in &probes {
        assert_eq!(
            probe(&engine, seed, gpu),
            probe(&control, seed, gpu),
            "post-swap decisions must equal a cold start on the new artifact"
        );
    }
    // The rejected swap really left the old model serving until the good
    // one: the pre-swap probe matched the old model's state.
    assert_eq!(before_reject.gpu, "Pascal");
    cleanup(&journal);
    cleanup(&control_journal);
    std::fs::remove_file(&artifact_path).ok();
}

/// Tentpole part 3, wire edition: a hot-swap lands under a live flood of
/// requests with zero failures, zero sheds, and zero dropped
/// connections, and post-swap decisions come from the new model.
#[test]
fn hot_swap_under_live_flood_drops_nothing() {
    let old_model = train_model(5);
    let new_model = train_model(11);
    let artifact_path = tmp("flood-artifact");
    artifact::save(&new_model, &artifact_path).unwrap();
    let journal = tmp("flood");
    cleanup(&journal);

    let engine = engine_with_journal(&old_model, &journal, JournalConfig::default());
    let server = Server::bind(
        Arc::new(engine),
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    )
    .expect("bind succeeds");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());

    // Flood: four clients hammer read-only selects while the swap lands.
    let flood: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("flood client connects");
                let mut done = 0u64;
                for i in 0..60 {
                    let request = Request::Select {
                        matrix: None,
                        features: Some(novel(t * 100 + i % 5)),
                        gpu: ["pascal", "volta", "turing"][i as usize % 3].into(),
                        iterations: Some(400),
                        deadline_ms: None,
                        learn: Some(false),
                        workload: None,
                    };
                    let response = client.roundtrip(&request).expect("flood roundtrip");
                    assert!(response.ok, "flood request failed: {response:?}");
                    done += 1;
                }
                done
            })
        })
        .collect();

    let mut admin = Client::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(30));
    let swapped = admin
        .roundtrip(&Request::Swap {
            path: artifact_path.to_str().unwrap().to_string(),
            expected_digest: Some(new_model.context_digest.clone()),
        })
        .unwrap();
    assert!(swapped.ok, "swap failed: {swapped:?}");
    assert_eq!(
        swapped.swap.expect("swap payload").context_digest,
        new_model.context_digest
    );

    let completed: u64 = flood.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(completed, 240, "every flood request completed");

    // Post-swap decisions equal a cold engine on the new artifact (the
    // flood was read-only, so the rebased tail was empty).
    let cold = Engine::from_artifact(&new_model, &EngineOptions::default()).unwrap();
    for seed in [7, 19, 23] {
        let live = admin
            .roundtrip(&Request::Select {
                matrix: None,
                features: Some(novel(seed)),
                gpu: "pascal".into(),
                iterations: Some(500),
                deadline_ms: None,
                learn: Some(false),
                workload: None,
            })
            .unwrap();
        assert_eq!(
            live.select.expect("select payload"),
            probe(&cold, seed, "pascal")
        );
    }

    admin.roundtrip(&Request::Shutdown).unwrap();
    let report = handle.join().unwrap();
    assert_eq!(report.errors, 0, "zero failed requests through the swap");
    assert_eq!(report.shed, 0, "zero shed requests through the swap");
    assert_eq!(report.swaps, 1);
    assert_eq!(report.swap_requests, 1);
    cleanup(&journal);
    std::fs::remove_file(&artifact_path).ok();
}

/// Tentpole part 4: a follower converges on the leader through `Sync` —
/// checkpoint plus tail on first contact, tail-only increments after —
/// and serves byte-identical read-only decisions.
#[test]
fn follower_converges_on_the_leader_via_sync() {
    let model = train_model(5);
    let journal = tmp("sync");
    cleanup(&journal);
    let leader = engine_with_journal(&model, &journal, JournalConfig::default());
    let probes = mutate(&leader);
    assert!(leader.compact().expect("manual compaction"), "compacts");
    leader
        .select(&body(novel(61), "turing", true))
        .expect("post-checkpoint tail record");

    let follower = Engine::from_artifact(&model, &EngineOptions::default()).unwrap();
    assert_eq!(
        follower
            .sync(0)
            .expect_err("journal-less engines cannot lead")
            .code(),
        "bad_request"
    );

    // First contact: the follower is behind the checkpoint, so the reply
    // carries it plus the tail.
    let first = leader.sync(0).expect("leader answers sync");
    assert!(
        first.checkpoint.is_some(),
        "cold follower gets the checkpoint"
    );
    assert_eq!(first.last_seq, 6);
    let applied = follower.apply_sync(&first).expect("follower applies");
    assert!(applied >= 1, "tail records applied");
    assert_eq!(follower.applied_seq(), 6);
    let all_probes: Vec<(u64, &str)> = probes.iter().copied().chain([(61, "turing")]).collect();
    for &(seed, gpu) in &all_probes {
        assert_eq!(
            probe(&follower, seed, gpu),
            probe(&leader, seed, gpu),
            "follower must serve the leader's decisions"
        );
    }

    // Increment: new leader records, tail-only catch-up from applied_seq.
    leader
        .select(&body(novel(67), "pascal", true))
        .expect("new leader record");
    leader
        .feedback("pascal", probe(&leader, 67, "pascal").cluster, "ell")
        .expect("new leader feedback");
    let second = leader
        .sync(follower.applied_seq())
        .expect("incremental sync");
    assert!(
        second.checkpoint.is_none(),
        "caught-up follower skips the checkpoint"
    );
    assert_eq!(second.records.len(), 2);
    follower.apply_sync(&second).expect("increment applies");
    assert_eq!(follower.applied_seq(), leader.stats().lifecycle.last_seq);
    for &(seed, gpu) in all_probes.iter().chain(&[(67, "pascal")]) {
        assert_eq!(probe(&follower, seed, gpu), probe(&leader, seed, gpu));
    }
    // Re-applying the same reply is idempotent (records below
    // applied_seq are skipped).
    follower
        .apply_sync(&second)
        .expect("replays are idempotent");
    for &(seed, gpu) in &all_probes {
        assert_eq!(probe(&follower, seed, gpu), probe(&leader, seed, gpu));
    }
    let report = leader.serving_report();
    assert!(report.sync_records_sent >= 2);
    assert!(report.sync_bytes_sent > 0);
    assert!(follower.serving_report().sync_records_applied >= 2);
    cleanup(&journal);
}

/// A follower rejects leader state from a different training context.
#[test]
fn sync_from_a_different_context_is_rejected() {
    let model_a = train_model(5);
    let model_b = train_model(11);
    let journal = tmp("sync-mismatch");
    cleanup(&journal);
    let leader = engine_with_journal(&model_a, &journal, JournalConfig::default());
    mutate(&leader);
    let reply = leader.sync(0).unwrap();
    let follower = Engine::from_artifact(&model_b, &EngineOptions::default()).unwrap();
    assert_eq!(
        follower
            .apply_sync(&reply)
            .expect_err("context mismatch rejects")
            .code(),
        "context_digest_mismatch"
    );
    cleanup(&journal);
}
