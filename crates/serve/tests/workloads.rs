//! Multi-workload serving: workload-tagged selects over both wire
//! protocols, extended-registry artifacts, and the compatibility
//! guarantees for artifacts that predate the format registry.

use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::formatzoo::RegistryChoice;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::{RunReport, ServingReport};
use spsel_features::{FeatureVector, MatrixStats};
use spsel_matrix::{gen, CsrMatrix, FormatRegistry, Workload};
use spsel_serve::artifact::{self, registry_for_digest, TrainConfig};
use spsel_serve::protocol::SelectBody;
use spsel_serve::{Client, Engine, EngineOptions, Request, ServeError, ServeOptions, Server};
use std::net::SocketAddr;
use std::sync::Arc;

fn context(n_base: usize, seed: u64) -> ExperimentContext {
    let cache = Cache::disabled();
    let mut report = RunReport::new("workload-test");
    ExperimentContext::build(CorpusConfig::small(n_base, seed), &cache, &mut report)
}

fn train_config(registry: RegistryChoice) -> TrainConfig {
    TrainConfig {
        registry,
        ..TrainConfig::default()
    }
}

fn feature_vec(seed: u64) -> Vec<f64> {
    let csr = CsrMatrix::from(&gen::power_law(150, 150, 2, 2.4, 60, seed));
    FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
        .as_slice()
        .to_vec()
}

fn body(gpu: &str, features: Vec<f64>, workload: Option<&str>) -> SelectBody {
    SelectBody {
        matrix: None,
        features: Some(features),
        gpu: gpu.to_string(),
        iterations: Some(500),
        learn: Some(false),
        workload: workload.map(|s| s.to_string()),
    }
}

fn start_server(engine: Engine) -> (SocketAddr, std::thread::JoinHandle<ServingReport>) {
    let server = Server::bind(
        Arc::new(engine),
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            default_deadline_ms: 0,
            ..ServeOptions::default()
        },
    )
    .expect("bind succeeds");
    let addr = server.local_addr().expect("bound address");
    (addr, std::thread::spawn(move || server.run()))
}

/// An extended-registry artifact round-trips, serves every workload,
/// and its per-workload tables survive the reload bit-identically.
#[test]
fn extended_registry_artifact_serves_every_workload() {
    let ctx = context(60, 0xBEEF);
    let model =
        artifact::train(&ctx, &train_config(RegistryChoice::Extended)).expect("training succeeds");
    assert_eq!(model.registry_digest, FormatRegistry::extended().digest());
    for g in &model.gpus {
        let names: Vec<&str> = g
            .workload_labels
            .iter()
            .map(|w| w.workload.as_str())
            .collect();
        assert_eq!(names, ["spmm4", "spmm32"]);
    }

    let json = artifact::to_json(&model);
    let reloaded = artifact::from_json(&json).expect("artifact parses");
    assert_eq!(artifact::to_json(&reloaded), json);

    let engine = Engine::from_artifact(&reloaded, &EngineOptions::default()).unwrap();
    let registry = registry_for_digest(&model.registry_digest).unwrap();
    for workload in Workload::ALL {
        for seed in 0..8u64 {
            let reply = engine
                .select(&body("volta", feature_vec(seed), Some(&workload.name())))
                .expect("select succeeds");
            assert_eq!(reply.workload, workload.name());
            // Predicted table covers exactly the registered formats.
            assert_eq!(reply.predicted.len(), registry.formats().len());
            let chosen = spsel_serve::protocol::parse_format(&reply.format).unwrap();
            assert!(registry.contains(chosen), "{:?} not registered", chosen);
        }
    }
}

/// Workload-tagged selects round-trip over both wire protocols, and the
/// two protocols agree byte-for-byte on the reply.
#[test]
fn workload_selects_agree_across_json_and_binary_protocols() {
    let ctx = context(40, 7);
    let model =
        artifact::train(&ctx, &train_config(RegistryChoice::Extended)).expect("training succeeds");
    let engine = Engine::from_artifact(&model, &EngineOptions::default()).unwrap();
    let (addr, handle) = start_server(engine);

    let mut json = Client::connect(addr).expect("json client connects");
    let mut binary = Client::connect_binary(addr).expect("binary client connects");
    for workload in ["spmv", "spmm4", "spmm32"] {
        let request = Request::Select {
            matrix: None,
            features: Some(feature_vec(3)),
            gpu: "pascal".into(),
            iterations: Some(400),
            deadline_ms: None,
            learn: Some(false),
            workload: Some(workload.to_string()),
        };
        let a = json.roundtrip(&request).unwrap();
        let b = binary.roundtrip(&request).unwrap();
        assert!(a.ok, "json select fails: {a:?}");
        let a = a.select.expect("select payload");
        let b = b.select.expect("select payload");
        assert_eq!(a.workload, workload);
        assert_eq!(a, b, "protocols disagree for {workload}");
    }

    // An unknown workload is a typed error envelope on both protocols,
    // and the connection survives it.
    for client in [&mut json, &mut binary] {
        let response = client
            .roundtrip(&Request::Select {
                matrix: None,
                features: Some(feature_vec(3)),
                gpu: "pascal".into(),
                iterations: None,
                deadline_ms: None,
                learn: Some(false),
                workload: Some("gemm".to_string()),
            })
            .unwrap();
        assert!(!response.ok);
        let error = response.error.expect("error envelope");
        assert_eq!(error.code, "unknown_workload");
        assert!(error.message.contains("gemm"));
        let ok = client
            .roundtrip(&Request::Select {
                matrix: None,
                features: Some(feature_vec(3)),
                gpu: "pascal".into(),
                iterations: None,
                deadline_ms: None,
                learn: Some(false),
                workload: None,
            })
            .unwrap();
        assert!(ok.ok, "connection must survive a workload error");
        assert_eq!(ok.select.expect("select payload").workload, "spmv");
    }

    let _ = json.roundtrip(&Request::Shutdown);
    handle.join().expect("server thread joins");
}

/// Pre-registry artifacts — no `registry_digest`, no `workload_labels` —
/// still load, decide as CUSP-default models, and answer SpMV exactly
/// like a freshly trained default artifact.
#[test]
fn pre_registry_artifacts_still_load_and_match_default_decisions() {
    let ctx = context(40, 21);
    let model = artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds");
    assert_eq!(
        model.registry_digest,
        FormatRegistry::cusp_default().digest()
    );

    // Strip the registry-era fields to fabricate a pre-registry payload
    // (empty the tables first so the arrays strip textually).
    let mut bare = model.clone();
    for g in &mut bare.gpus {
        g.workload_labels.clear();
    }
    let stripped = artifact::to_json(&bare)
        .replacen(
            &format!("\"registry_digest\":\"{}\",", model.registry_digest),
            "",
            1,
        )
        .replace("\"workload_labels\":[],", "");
    assert!(!stripped.contains("registry_digest"), "strip failed");
    assert!(!stripped.contains("workload_labels"), "strip failed");

    let legacy = artifact::from_json(&stripped).expect("pre-registry artifact loads");
    assert_eq!(
        legacy.registry_digest,
        FormatRegistry::cusp_default().digest()
    );

    let modern = Engine::from_artifact(&model, &EngineOptions::default()).unwrap();
    let old = Engine::from_artifact(&legacy, &EngineOptions::default()).unwrap();
    for seed in 0..10u64 {
        let b = body("turing", feature_vec(seed), None);
        let a = modern.select(&b).expect("modern decides");
        let r = old.select(&b).expect("legacy decides");
        assert_eq!(a, r, "pre-registry artifact must decide identically");
        assert_eq!(a.workload, "spmv");
    }

    // A model with no workload tables still answers SpMM: the SpMV
    // cluster label is the fallback.
    let spmv = old.select(&body("turing", feature_vec(2), None)).unwrap();
    let spmm = old
        .select(&body("turing", feature_vec(2), Some("spmm4")))
        .unwrap();
    assert_eq!(spmm.workload, "spmm4");
    assert_eq!(spmm.cluster, spmv.cluster);
    assert_eq!(
        spmm.format, spmv.format,
        "no table row: the SpMV label is the fallback"
    );
}

/// Registry mismatches are typed errors, never panics: an unknown digest
/// refuses to load, and `from_json_with` refuses a known-but-different
/// registry.
#[test]
fn registry_digest_mismatches_are_typed_errors() {
    let ctx = context(40, 33);
    let model =
        artifact::train(&ctx, &train_config(RegistryChoice::Extended)).expect("training succeeds");
    let json = artifact::to_json(&model);

    let tampered = json.replacen(&model.registry_digest, "deadbeefdeadbeef", 1);
    match artifact::from_json(&tampered) {
        Err(ServeError::RegistryDigestMismatch { found, .. }) => {
            assert_eq!(found, "deadbeefdeadbeef");
        }
        other => panic!("expected a registry-digest mismatch, got {other:?}"),
    }

    match artifact::from_json_with(&json, &FormatRegistry::cusp_default()) {
        Err(ServeError::RegistryDigestMismatch { found, expected }) => {
            assert_eq!(found, FormatRegistry::extended().digest());
            assert_eq!(expected, FormatRegistry::cusp_default().digest());
        }
        other => panic!("expected a registry-digest mismatch, got {other:?}"),
    }
    artifact::from_json_with(&json, &FormatRegistry::extended()).expect("matching registry loads");
}

/// A CUSP-default model answers SpMM requests with real per-workload
/// tables restricted to the four CUSP formats: the chosen format and the
/// prediction table never leave the registered set.
#[test]
fn default_registry_models_answer_spmm_within_the_cusp_formats() {
    let ctx = context(40, 5);
    let model = artifact::train(&ctx, &TrainConfig::default()).expect("training succeeds");
    for g in &model.gpus {
        for wl in &g.workload_labels {
            assert!(wl
                .labels
                .iter()
                .all(|f| FormatRegistry::cusp_default().contains(*f)));
        }
    }
    let engine = Engine::from_artifact(&model, &EngineOptions::default()).unwrap();
    for seed in 0..6u64 {
        let spmv = engine
            .select(&body("volta", feature_vec(seed), None))
            .expect("spmv select");
        let spmm = engine
            .select(&body("volta", feature_vec(seed), Some("spmm4")))
            .expect("spmm select");
        assert_eq!(spmm.workload, "spmm4");
        assert_eq!(spmm.cluster, spmv.cluster, "clustering is workload-blind");
        assert_eq!(spmm.predicted.len(), 4);
        let chosen = spsel_serve::protocol::parse_format(&spmm.format).unwrap();
        assert!(FormatRegistry::cusp_default().contains(chosen));
    }
}
