//! The closed serve→train loop, end to end: a daemon-shaped engine
//! journals `learn: true` observations, `ingest` promotes them into the
//! cache's growth shards, and the next training run picks them up — with
//! a changed context digest, so every downstream cache key rolls over.

use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_features::{FeatureVector, MatrixStats};
use spsel_matrix::gen::Family;
use spsel_matrix::{gen, CsrMatrix};
use spsel_serve::artifact::{self, TrainConfig};
use spsel_serve::{ingest_journal, Engine, EngineOptions, SelectBody};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spsel-growth-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Features for a matrix shape the small training corpus never saw.
fn novel_features(seed: u64) -> Vec<f64> {
    let csr = CsrMatrix::from(&gen::bimodal(1200, 1200, 3, 30, 0.3, seed));
    FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
        .as_slice()
        .to_vec()
}

fn select(features: Vec<f64>, learn: bool) -> SelectBody {
    SelectBody {
        matrix: None,
        features: Some(features),
        gpu: "pascal".into(),
        iterations: Some(500),
        learn: Some(learn),
        workload: None,
    }
}

#[test]
fn serve_journal_ingest_retrain_closes_the_loop() {
    let dir = temp_dir("e2e");
    let cache = Cache::new(dir.join("cache"));
    let cfg = CorpusConfig::small(25, 6);
    let ctx = ExperimentContext::build(cfg.clone(), &cache, &mut RunReport::new("growth-e2e"));
    let model = artifact::train(&ctx, &TrainConfig::default()).unwrap();
    let cold_digest = ctx.digest();

    // Serve: three novel matrices decided with learn:true, one repeated
    // (same matrix observed twice must not grow the corpus twice) and one
    // read-only probe (learn:false must not be journaled at all).
    let journal = dir.join("serve.journal");
    let mut engine = Engine::from_artifact(&model, &EngineOptions::default()).unwrap();
    engine.attach_journal(&journal).unwrap();
    for seed in [101u64, 202, 303, 101] {
        let reply = engine.select(&select(novel_features(seed), true)).unwrap();
        assert!(!reply.format.is_empty());
    }
    engine.select(&select(novel_features(404), false)).unwrap();
    assert_eq!(engine.serving_report().observes_journaled, 4);
    drop(engine);

    // Ingest: 4 observations collapse to 3 distinct matrices, each
    // benchmarked once per GPU and appended to the family's growth shards.
    let ingested = ingest_journal(&journal, &cfg, &cache).unwrap();
    assert_eq!(ingested.observed, 4);
    assert_eq!(ingested.malformed, 0);
    assert_eq!(ingested.candidates, 3, "repeat observation collapses");
    assert_eq!(ingested.appended, 3);
    assert_eq!(cache.report().records_ingested, 3);
    // Re-running the same ingest is a no-op.
    assert_eq!(ingest_journal(&journal, &cfg, &cache).unwrap().appended, 0);

    // Retrain: the rebuilt context extends with exactly the ingested
    // records, its digest rolls over, and the retrained artifact carries
    // the grown corpus.
    let mut grown = ExperimentContext::build(cfg, &cache, &mut RunReport::new("retrain"));
    assert_eq!(grown.digest(), cold_digest, "rebuild alone changes nothing");
    let added = grown.extend_with_growth(&cache);
    assert_eq!(added, 3);
    assert_ne!(grown.digest(), cold_digest, "growth rolls the digest");
    assert_eq!(
        grown
            .corpus
            .records
            .iter()
            .filter(|r| r.family == Family::Observed)
            .count(),
        3
    );
    let retrained = artifact::train(&grown, &TrainConfig::default()).unwrap();
    assert_ne!(retrained.context_digest, model.context_digest);
    for (new, old) in retrained.gpus.iter().zip(&model.gpus) {
        assert!(
            new.training_records >= old.training_records,
            "{}: grown training set shrank",
            new.gpu
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
