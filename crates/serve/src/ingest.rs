//! Corpus growth: promote serve-time observations into training data.
//!
//! The daemon journals every `learn: true` decision as an `Observe` line
//! carrying the raw Table 1 feature vector (see [`crate::journal`]).
//! `spsel corpus ingest` closes the serve→train loop: it replays those
//! observations, reconstructs each matrix's structural stats from its
//! features (the same inverse mapping the inline-features request path
//! uses), benchmarks the reconstructed matrix on every GPU of the
//! performance model, and appends the result to the persistent cache's
//! *growth shards* for the training corpus family
//! ([`Cache::append_growth`]). The next `spsel train` run extends its
//! context with the grown records ([`ExperimentContext::extend_with_growth`])
//! without regenerating or re-benchmarking anything that already exists.
//!
//! Records are identified by [`engine::matrix_id`] — the FNV hash of the
//! feature bit patterns — so re-ingesting the same journal (or the same
//! matrix observed twice) is naturally idempotent: duplicates are dropped
//! both within a batch and against previously appended growth shards.
//!
//! [`ExperimentContext::extend_with_growth`]: spsel_core::experiments::ExperimentContext::extend_with_growth

use crate::engine;
use crate::error::ServeError;
use crate::journal::{read_journal, JournalLine};
use spsel_core::cache::{Cache, GrownRecord};
use spsel_core::corpus::{CorpusConfig, MatrixRecord};
use spsel_features::{FeatureVector, NUM_FEATURES};
use spsel_gpusim::{benchmark_corpus, Gpu};
use spsel_matrix::gen::Family;
use std::path::Path;

/// What one ingest pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// `Observe` lines scanned in the journal.
    pub observed: u64,
    /// Journal lines that parsed as nothing (torn writes), plus observes
    /// whose feature vector had the wrong dimension.
    pub malformed: u64,
    /// Distinct candidate matrices benchmarked (after in-batch dedup).
    pub candidates: usize,
    /// Records actually appended to growth shards (after dedup against
    /// growth already on disk).
    pub appended: usize,
}

/// Replay a serve journal and append every new observed matrix — record
/// plus benchmark cells on all GPUs — to `cfg`'s growth shards in
/// `cache`. Duplicate observations (same feature bit patterns) collapse
/// to one record; observations already ingested by an earlier pass are
/// skipped. Safe to run repeatedly and on a journal the daemon is still
/// appending to (the scan tolerates a torn tail).
pub fn ingest_journal(
    journal: &Path,
    cfg: &CorpusConfig,
    cache: &Cache,
) -> Result<IngestReport, ServeError> {
    let scan = read_journal(journal)?;
    let mut report = IngestReport {
        malformed: scan.malformed,
        ..IngestReport::default()
    };

    // Distinct candidates, first observation wins (its seq is recorded
    // as provenance).
    let mut seen = std::collections::HashSet::new();
    let mut candidates: Vec<(u64, u64, FeatureVector)> = Vec::new();
    for entry in &scan.entries {
        let JournalLine::Observe { seq, features, .. } = entry else {
            continue;
        };
        report.observed += 1;
        if features.len() != NUM_FEATURES {
            report.malformed += 1;
            continue;
        }
        let mut raw = [0.0; NUM_FEATURES];
        raw.copy_from_slice(features);
        let fv = FeatureVector::from_raw(raw);
        let id = engine::matrix_id(&fv);
        if seen.insert(id) {
            candidates.push((*seq, id, fv));
        }
    }
    report.candidates = candidates.len();
    if candidates.is_empty() {
        return Ok(report);
    }

    // Benchmark every candidate on every GPU of the performance model —
    // the same ground-truth path corpus construction uses, so a grown
    // record is indistinguishable from a generated one downstream.
    let ids: Vec<u64> = candidates.iter().map(|(_, id, _)| *id).collect();
    let stats: Vec<_> = candidates
        .iter()
        .map(|(_, _, fv)| engine::stats_from_features(fv))
        .collect();
    let benches: Vec<Vec<Option<spsel_gpusim::BenchResult>>> = Gpu::ALL
        .iter()
        .map(|g| benchmark_corpus(&g.spec(), &stats, &ids))
        .collect();

    let batch: Vec<GrownRecord> = candidates
        .iter()
        .enumerate()
        .map(|(i, (seq, id, fv))| GrownRecord {
            source_seq: *seq,
            record: MatrixRecord {
                id: *id,
                family: Family::Observed,
                // Observed records derive from no generator candidate.
                base_index: usize::MAX,
                augmented: false,
                stats: stats[i].clone(),
                features: fv.clone(),
                image: None,
            },
            benches: benches.iter().map(|per_gpu| per_gpu[i]).collect(),
        })
        .collect();
    report.appended = cache.append_growth(cfg, &batch);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::FeedbackJournal;
    use spsel_features::MatrixStats;
    use spsel_matrix::{gen, CsrMatrix};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spsel-ingest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn observed_features(seed: u64) -> FeatureVector {
        let coo = gen::random_uniform(400, 400, 6, seed);
        let csr = CsrMatrix::from(&coo);
        FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
    }

    #[test]
    fn ingest_dedups_within_and_across_passes() {
        let dir = temp_dir("dedup");
        let journal_path = dir.join("serve.journal");
        let journal = FeedbackJournal::open(&journal_path).unwrap();
        let a = observed_features(1);
        let b = observed_features(2);
        journal.append_observe("Pascal", a.as_slice()).unwrap();
        journal.append_observe("Volta", a.as_slice()).unwrap(); // same matrix again
        journal.append_observe("Turing", b.as_slice()).unwrap();
        journal.append_feedback("Pascal", 0, "CSR").unwrap(); // not an observe
        drop(journal);

        let cfg = CorpusConfig::small(8, 3);
        let cache = Cache::new(dir.join("cache"));
        let r = ingest_journal(&journal_path, &cfg, &cache).unwrap();
        assert_eq!(r.observed, 3);
        assert_eq!(r.malformed, 0);
        assert_eq!(r.candidates, 2, "duplicate observation collapses");
        assert_eq!(r.appended, 2);
        assert_eq!(cache.report().records_ingested, 2);

        // A second pass over the same journal appends nothing new.
        let r2 = ingest_journal(&journal_path, &cfg, &cache).unwrap();
        assert_eq!(r2.candidates, 2);
        assert_eq!(r2.appended, 0, "re-ingest is idempotent");

        // The grown records read back with full benchmark coverage.
        let grown = cache.load_growth(&cfg);
        assert_eq!(grown.len(), 2);
        for g in &grown {
            assert_eq!(g.record.family, Family::Observed);
            assert!(!g.record.augmented);
            assert_eq!(g.benches.len(), Gpu::ALL.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_skips_malformed_observations() {
        let dir = temp_dir("malformed");
        let journal_path = dir.join("serve.journal");
        let journal = FeedbackJournal::open(&journal_path).unwrap();
        journal.append_observe("Pascal", &[1.0, 2.0]).unwrap(); // wrong dimension
        journal
            .append_observe("Pascal", observed_features(9).as_slice())
            .unwrap();
        drop(journal);

        let cfg = CorpusConfig::small(8, 3);
        let cache = Cache::new(dir.join("cache"));
        let r = ingest_journal(&journal_path, &cfg, &cache).unwrap();
        assert_eq!(r.observed, 2);
        assert_eq!(r.malformed, 1);
        assert_eq!((r.candidates, r.appended), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_an_empty_ingest() {
        let dir = temp_dir("missing");
        let cfg = CorpusConfig::small(8, 3);
        let cache = Cache::new(dir.join("cache"));
        let r = ingest_journal(&dir.join("never-written.journal"), &cfg, &cache).unwrap();
        assert_eq!(r, IngestReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
