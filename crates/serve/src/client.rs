//! A minimal blocking client for the wire protocol, used by the
//! `spsel request` subcommand, `loadgen`, and the end-to-end tests.

use crate::protocol::{Request, Response};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One persistent connection to a `spsel-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to the daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one raw request line, return the raw response line.
    pub fn roundtrip_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.trim_end().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Send one typed request, parse the typed response.
    pub fn roundtrip(&mut self, request: &Request) -> std::io::Result<Response> {
        let line = serde_json::to_string(request).expect("request serializes");
        let raw = self.roundtrip_raw(&line)?;
        serde_json::from_str(&raw).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparsable response: {e}"),
            )
        })
    }
}
