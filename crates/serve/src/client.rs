//! A minimal blocking client for both wire protocols, used by the
//! `spsel request` subcommand, `loadgen`, and the end-to-end tests.
//!
//! [`Client::connect`] speaks newline-delimited JSON;
//! [`Client::connect_binary`] performs the [`crate::framing::MAGIC`]
//! handshake and speaks length-prefixed binary frames. Either way the
//! typed surface is the same: [`Client::roundtrip`] for one
//! request/response pair, or [`Client::send`] / [`Client::recv`] split
//! apart to keep a pipeline of requests in flight on one connection.

use crate::framing::{self, MAGIC};
use crate::protocol::{Request, Response};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Which wire protocol a [`Client`] negotiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Newline-delimited JSON.
    Json,
    /// Length-prefixed binary frames (see [`crate::framing`]).
    Binary,
}

impl Protocol {
    /// Lowercase wire-protocol name (`json` / `binary`), as used by CLI
    /// flags and bench records.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Json => "json",
            Protocol::Binary => "binary",
        }
    }
}

/// One persistent connection to a `spsel-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    protocol: Protocol,
}

impl Client {
    /// Connect to the daemon speaking newline-delimited JSON.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_with(addr, Protocol::Json)
    }

    /// Connect to the daemon and negotiate the binary frame protocol:
    /// send the magic preamble, require the server to echo it back.
    pub fn connect_binary(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_with(addr, Protocol::Binary)
    }

    /// Connect speaking `protocol`.
    pub fn connect_with(addr: impl ToSocketAddrs, protocol: Protocol) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            protocol,
        };
        if protocol == Protocol::Binary {
            client.writer.write_all(&MAGIC)?;
            client.writer.flush()?;
            let mut ack = [0u8; MAGIC.len()];
            client.reader.read_exact(&mut ack)?;
            if ack != MAGIC {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("server answered the {MAGIC:?} handshake with {ack:?}"),
                ));
            }
        }
        Ok(client)
    }

    /// The protocol this connection negotiated.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Send one raw request line, return the raw response line
    /// (JSON connections only; binary clients use the typed surface).
    pub fn roundtrip_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.trim_end().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Queue one typed request without waiting for its response; pair
    /// with [`Self::recv`], one call per send, responses in send order.
    /// Buffered until [`Self::flush`] (or the flush inside
    /// [`Self::roundtrip`]) pushes the bytes out.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        match self.protocol {
            Protocol::Json => {
                let line = serde_json::to_string(request).expect("request serializes");
                self.writer.write_all(line.as_bytes())?;
                self.writer.write_all(b"\n")
            }
            Protocol::Binary => self.writer.write_all(&framing::encode_request(request)),
        }
    }

    /// Push every queued request to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Read the next typed response off the connection.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        match self.protocol {
            Protocol::Json => {
                let mut line = String::new();
                let n = self.reader.read_line(&mut line)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
                serde_json::from_str(line.trim_end()).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unparsable response: {e}"),
                    )
                })
            }
            Protocol::Binary => {
                let mut len = [0u8; 4];
                self.reader.read_exact(&mut len)?;
                let len = u32::from_le_bytes(len);
                if len == 0 || len > framing::MAX_FRAME {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("response frame declares {len} bytes"),
                    ));
                }
                let mut payload = vec![0u8; len as usize];
                self.reader.read_exact(&mut payload)?;
                framing::decode_response(payload[0], &payload[1..]).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unparsable response frame: {e}"),
                    )
                })
            }
        }
    }

    /// Send one typed request, parse the typed response.
    pub fn roundtrip(&mut self, request: &Request) -> std::io::Result<Response> {
        self.send(request)?;
        self.flush()?;
        self.recv()
    }
}
