//! Durable online state: an append-only journal plus checkpoint
//! snapshots, so a restarted daemon is state-identical to one that never
//! died.
//!
//! The journal is a JSONL file next to the artifact
//! (`<model>.spsel.journal` by default). Format v2 gives every record a
//! monotonic sequence number and an enveloped type, and starts each file
//! with a versioned header:
//!
//! ```text
//! {"Header":{"version":2,"base_seq":0}}
//! {"Observe":{"seq":1,"gpu":"Pascal","features":[...]}}
//! {"Feedback":{"seq":2,"gpu":"Pascal","cluster":3,"best":"ELL"}}
//! ```
//!
//! `Observe` records every `learn: true` decision (raw feature values, so
//! replay reproduces cluster openings bit-exactly); `Feedback` records
//! every applied label. Legacy v1 lines — bare
//! `{"gpu":...,"cluster":...,"best":...}` records — still parse, with
//! sequence numbers assigned in file order. Replay is forgiving:
//! malformed lines (a torn final write from a crash) and records that no
//! longer apply are counted and skipped, never fatal, and opening a
//! journal whose last byte is not a newline first seals the torn tail so
//! subsequent appends cannot be corrupted by it.
//!
//! When the journal grows past a record threshold the engine *compacts*
//! it: the full online state is serialized into a [`Checkpoint`] sibling
//! file (`<journal>.checkpoint`), written temp-file-then-atomic-rename
//! with fsync at every boundary, and the journal is rotated down to a
//! fresh header whose `base_seq` marks what the checkpoint covers.
//! Startup then costs one checkpoint load plus the post-checkpoint tail.
//! [`CrashPoint`] threads a deterministic kill switch through every step
//! so tests can prove recovery from any interleaving.

use crate::error::ServeError;
use serde::{Deserialize, Serialize};
use spsel_core::online::OnlineStateData;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Journal format version written by this build.
pub const JOURNAL_VERSION: u32 = 2;

/// Checkpoint format version written by this build.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One applied feedback label, as journaled by format v1 (kept for
/// compatibility: v1 lines still replay, and [`read`] still yields them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// GPU whose online selector was updated.
    pub gpu: String,
    /// Cluster that was labeled.
    pub cluster: usize,
    /// The measured best format applied as the label.
    pub best: String,
}

/// One line of a v2 journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalLine {
    /// File header: the format version and the sequence number everything
    /// before this file was compacted up to (0 for a fresh journal).
    Header {
        /// Journal format version ([`JOURNAL_VERSION`]).
        version: u32,
        /// Highest sequence number covered by the checkpoint this file
        /// is the tail of.
        base_seq: u64,
    },
    /// A `learn: true` decision: the raw feature values that joined (or
    /// opened) a cluster. Replaying them reproduces centroid motion and
    /// cluster creation bit-exactly.
    Observe {
        /// Monotonic sequence number.
        seq: u64,
        /// GPU whose online selector observed the matrix.
        gpu: String,
        /// Raw (pre-embedding) feature values, [`spsel_features::NUM_FEATURES`] long.
        features: Vec<f64>,
    },
    /// An applied feedback label.
    Feedback {
        /// Monotonic sequence number.
        seq: u64,
        /// GPU whose online selector was updated.
        gpu: String,
        /// Cluster that was labeled.
        cluster: usize,
        /// The measured best format applied as the label.
        best: String,
    },
}

impl JournalLine {
    /// The line's sequence number (a header's `base_seq`).
    pub fn seq(&self) -> u64 {
        match self {
            JournalLine::Header { base_seq, .. } => *base_seq,
            JournalLine::Observe { seq, .. } => *seq,
            JournalLine::Feedback { seq, .. } => *seq,
        }
    }
}

/// Parse one journal line: v2 envelopes first, then legacy v1 records
/// (which become `Feedback` lines carrying `legacy_seq`). `None` means
/// the line is malformed — a torn write, not a protocol error.
pub fn parse_line(line: &str, legacy_seq: u64) -> Option<JournalLine> {
    if let Ok(entry) = serde_json::from_str::<JournalLine>(line) {
        return Some(entry);
    }
    serde_json::from_str::<JournalRecord>(line)
        .ok()
        .map(|r| JournalLine::Feedback {
            seq: legacy_seq,
            gpu: r.gpu,
            cluster: r.cluster,
            best: r.best,
        })
}

/// Everything one pass over a journal file learns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JournalScan {
    /// Replayable records (observes and feedback, never headers), file
    /// order.
    pub entries: Vec<JournalLine>,
    /// Lines that parsed as nothing — torn writes.
    pub malformed: u64,
    /// Highest sequence number seen (including header `base_seq`s), 0
    /// for an empty journal.
    pub last_seq: u64,
    /// File size in bytes (0 when missing).
    pub bytes: u64,
    /// Whether the file ends mid-line (no trailing newline) — the
    /// signature of a torn final write.
    pub unterminated: bool,
}

/// Scan a journal file. A missing file is an empty journal (first
/// start); malformed lines are counted, not fatal.
pub fn read_journal(path: impl AsRef<Path>) -> Result<JournalScan, ServeError> {
    let path = path.as_ref();
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalScan::default()),
        Err(e) => {
            return Err(ServeError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })
        }
    };
    let mut scan = JournalScan {
        bytes: bytes.len() as u64,
        unterminated: bytes.last().map(|&b| b != b'\n').unwrap_or(false),
        ..JournalScan::default()
    };
    let text = String::from_utf8_lossy(&bytes);
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, scan.last_seq + 1) {
            Some(JournalLine::Header { base_seq, .. }) => {
                scan.last_seq = scan.last_seq.max(base_seq);
            }
            Some(entry) => {
                scan.last_seq = scan.last_seq.max(entry.seq());
                scan.entries.push(entry);
            }
            None => scan.malformed += 1,
        }
    }
    Ok(scan)
}

/// Read every parseable *feedback* record from a journal file (the v1
/// view of the journal: headers and observes are skipped). A missing
/// file is an empty journal; malformed lines are counted, not fatal.
pub fn read(path: impl AsRef<Path>) -> Result<(Vec<JournalRecord>, u64), ServeError> {
    let scan = read_journal(path)?;
    let records = scan
        .entries
        .into_iter()
        .filter_map(|e| match e {
            JournalLine::Feedback {
                gpu, cluster, best, ..
            } => Some(JournalRecord { gpu, cluster, best }),
            _ => None,
        })
        .collect();
    Ok((records, scan.malformed))
}

/// Where a simulated kill -9 lands inside a compaction, for the
/// deterministic crash harness: the operation simply stops at the named
/// boundary, exactly as if the process had died there, and tests then
/// prove a restart recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// No crash: run to completion.
    None,
    /// Die after writing (and fsyncing) the checkpoint temp file, before
    /// the atomic rename publishes it.
    BeforeCheckpointRename,
    /// Die after the checkpoint rename, before the journal is rotated —
    /// the checkpoint and the full journal coexist.
    AfterCheckpointRename,
    /// Die after writing the rotated journal's temp file, before it
    /// replaces the live journal.
    BeforeJournalRename,
}

/// An open journal the engine appends online mutations to.
#[derive(Debug)]
pub struct FeedbackJournal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    fsync: bool,
    next_seq: AtomicU64,
}

impl FeedbackJournal {
    /// Open (creating if absent) a journal for appending, without
    /// per-append fsync. See [`FeedbackJournal::open_with`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        Self::open_with(path, false)
    }

    /// Open (creating if absent) a journal for appending. The existing
    /// file is scanned so sequence numbers continue monotonically; a
    /// torn tail (no trailing newline) is sealed with one newline so the
    /// partial line costs exactly one malformed record instead of
    /// corrupting the next append; a fresh file gets a v2 header. With
    /// `fsync`, every append is `fsync`ed before it is acknowledged
    /// (checkpoint and rotation boundaries always are, regardless).
    pub fn open_with(path: impl AsRef<Path>, fsync: bool) -> Result<Self, ServeError> {
        let path = path.as_ref().to_path_buf();
        let scan = read_journal(&path)?;
        let io_err = |e: std::io::Error| ServeError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        let mut writer = BufWriter::new(file);
        let mut dirty = false;
        if scan.unterminated {
            writer.write_all(b"\n").map_err(io_err)?;
            dirty = true;
        }
        if scan.bytes == 0 {
            let header = serde_json::to_string(&JournalLine::Header {
                version: JOURNAL_VERSION,
                base_seq: 0,
            })
            .map_err(|e| ServeError::Malformed {
                message: e.to_string(),
            })?;
            writeln!(writer, "{header}").map_err(io_err)?;
            dirty = true;
        }
        if dirty {
            writer.flush().map_err(io_err)?;
            if fsync {
                writer.get_ref().sync_all().map_err(io_err)?;
            }
        }
        Ok(FeedbackJournal {
            writer: Mutex::new(writer),
            path,
            fsync,
            next_seq: AtomicU64::new(scan.last_seq + 1),
        })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The next sequence number an append would receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::SeqCst)
    }

    /// The highest sequence number assigned so far (0 when none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq().saturating_sub(1)
    }

    /// Raise the sequence floor so future appends land strictly above
    /// `seq` (used after installing a checkpoint that covers up to it).
    pub fn ensure_seq_above(&self, seq: u64) {
        self.next_seq.fetch_max(seq + 1, Ordering::SeqCst);
    }

    /// Serialize one line under the writer lock, assigning its sequence
    /// number there so file order always equals sequence order.
    fn append_with(&self, build: impl FnOnce(u64) -> JournalLine) -> Result<u64, ServeError> {
        let io_err = |e: std::io::Error| ServeError::Io {
            path: self.path.display().to_string(),
            message: e.to_string(),
        };
        let mut w = self.writer.lock().map_err(|_| ServeError::LockPoisoned {
            what: "journal writer".to_string(),
        })?;
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let line = serde_json::to_string(&build(seq)).map_err(|e| ServeError::Malformed {
            message: e.to_string(),
        })?;
        writeln!(w, "{line}").map_err(io_err)?;
        w.flush().map_err(io_err)?;
        if self.fsync {
            w.get_ref().sync_all().map_err(io_err)?;
        }
        Ok(seq)
    }

    /// Append one `learn: true` observation; returns its sequence number.
    pub fn append_observe(&self, gpu: &str, features: &[f64]) -> Result<u64, ServeError> {
        let gpu = gpu.to_string();
        let features = features.to_vec();
        self.append_with(move |seq| JournalLine::Observe { seq, gpu, features })
    }

    /// Append one applied feedback label; returns its sequence number.
    pub fn append_feedback(
        &self,
        gpu: &str,
        cluster: usize,
        best: &str,
    ) -> Result<u64, ServeError> {
        let gpu = gpu.to_string();
        let best = best.to_string();
        self.append_with(move |seq| JournalLine::Feedback {
            seq,
            gpu,
            cluster,
            best,
        })
    }

    /// Append one legacy record (v1 call shape; journaled as a v2
    /// `Feedback` line).
    pub fn append(&self, record: &JournalRecord) -> Result<(), ServeError> {
        self.append_feedback(&record.gpu, record.cluster, &record.best)
            .map(|_| ())
    }

    /// Flush and fsync whatever has been appended so far (a compaction
    /// boundary: the checkpoint must not claim records the disk does not
    /// hold).
    pub fn sync(&self) -> Result<(), ServeError> {
        let io_err = |e: std::io::Error| ServeError::Io {
            path: self.path.display().to_string(),
            message: e.to_string(),
        };
        let mut w = self.writer.lock().map_err(|_| ServeError::LockPoisoned {
            what: "journal writer".to_string(),
        })?;
        w.flush().map_err(io_err)?;
        w.get_ref().sync_all().map_err(io_err)
    }

    /// Rotate the journal down to a fresh header with `base_seq` (the
    /// sequence the just-published checkpoint covers), atomically: the
    /// replacement is written and fsynced as a sibling temp file and
    /// renamed over the live journal, then the writer is repointed at the
    /// new file. Returns `false` when `crash` stopped the rotation (the
    /// old journal stays live and replay-consistent). Sequence numbering
    /// continues monotonically across rotations.
    pub fn rotate(&self, base_seq: u64, crash: CrashPoint) -> Result<bool, ServeError> {
        let io_err = |e: std::io::Error| ServeError::Io {
            path: self.path.display().to_string(),
            message: e.to_string(),
        };
        let mut w = self.writer.lock().map_err(|_| ServeError::LockPoisoned {
            what: "journal writer".to_string(),
        })?;
        w.flush().map_err(io_err)?;
        w.get_ref().sync_all().map_err(io_err)?;
        let header = serde_json::to_string(&JournalLine::Header {
            version: JOURNAL_VERSION,
            base_seq,
        })
        .map_err(|e| ServeError::Malformed {
            message: e.to_string(),
        })?;
        let tmp = sibling(&self.path, ".tmp");
        {
            let mut f = File::create(&tmp).map_err(io_err)?;
            writeln!(f, "{header}").map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        if crash == CrashPoint::BeforeJournalRename {
            return Ok(false);
        }
        std::fs::rename(&tmp, &self.path).map_err(io_err)?;
        sync_dir(&self.path);
        let file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(io_err)?;
        *w = BufWriter::new(file);
        Ok(true)
    }
}

/// One GPU's exported online state inside a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointGpu {
    /// GPU name (matches the artifact's GPU set).
    pub gpu: String,
    /// The full online selector state (centroids, labels, staleness).
    pub state: OnlineStateData,
}

/// A compacted snapshot of the engine's entire online state: everything
/// the journal said up to `last_seq`, folded into per-GPU selector state.
/// Startup installs the checkpoint and replays only the journal tail
/// (records with `seq > last_seq`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Checkpoint format version ([`CHECKPOINT_VERSION`]).
    pub checkpoint_version: u32,
    /// Training-context digest of the artifact this state extends; a
    /// checkpoint from a different artifact is ignored at startup.
    pub context_digest: String,
    /// Highest journal sequence number folded into this state.
    pub last_seq: u64,
    /// Per-GPU online state, artifact GPU order.
    pub gpus: Vec<CheckpointGpu>,
}

/// Where a journal's checkpoint sibling lives
/// (`<journal>.checkpoint`).
pub fn checkpoint_path(journal: &Path) -> PathBuf {
    sibling(journal, ".checkpoint")
}

/// `path` with `suffix` appended to its file name.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!("{name}{suffix}"))
}

/// Best-effort directory fsync so a rename is durable, not just ordered.
fn sync_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Write a checkpoint durably: serialized to a sibling temp file,
/// fsynced, then atomically renamed into place (a reader can only ever
/// observe the old complete checkpoint or the new complete one, never a
/// prefix). Returns `false` when `crash` stopped the write before the
/// rename — the temp file is left behind, exactly as a real kill -9
/// would, and is ignored by every reader.
pub fn write_checkpoint(
    path: &Path,
    checkpoint: &Checkpoint,
    crash: CrashPoint,
) -> Result<bool, ServeError> {
    let io_err = |e: std::io::Error| ServeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    let json = serde_json::to_string(checkpoint).map_err(|e| ServeError::Malformed {
        message: e.to_string(),
    })?;
    let tmp = sibling(path, ".tmp");
    {
        let mut f = File::create(&tmp).map_err(io_err)?;
        f.write_all(json.as_bytes()).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    if crash == CrashPoint::BeforeCheckpointRename {
        return Ok(false);
    }
    std::fs::rename(&tmp, path).map_err(io_err)?;
    sync_dir(path);
    Ok(true)
}

/// Load a checkpoint file. A missing file is `None` (no compaction has
/// happened yet); an unreadable or version-incompatible one is an error
/// the caller downgrades to "start from the artifact".
pub fn load_checkpoint(path: &Path) -> Result<Option<Checkpoint>, ServeError> {
    let raw = match std::fs::read_to_string(path) {
        Ok(r) => r,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(ServeError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })
        }
    };
    parse_checkpoint(&raw).map(Some)
}

/// Parse checkpoint JSON (the same bytes [`write_checkpoint`] produced,
/// or the payload of a `Sync` reply), validating the format version.
pub fn parse_checkpoint(raw: &str) -> Result<Checkpoint, ServeError> {
    let checkpoint: Checkpoint = serde_json::from_str(raw).map_err(|e| ServeError::Malformed {
        message: format!("unreadable checkpoint: {e}"),
    })?;
    if checkpoint.checkpoint_version != CHECKPOINT_VERSION {
        return Err(ServeError::Malformed {
            message: format!(
                "unsupported checkpoint version {} (this build reads {})",
                checkpoint.checkpoint_version, CHECKPOINT_VERSION
            ),
        });
    }
    Ok(checkpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_ml::cluster::online::OnlineKMeans;

    fn record(cluster: usize) -> JournalRecord {
        JournalRecord {
            gpu: "Pascal".into(),
            cluster,
            best: "ELL".into(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spsel-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.journal"))
    }

    #[test]
    fn appends_accumulate_and_read_back_in_order() {
        let path = temp_path("order");
        let _ = std::fs::remove_file(&path);

        let journal = FeedbackJournal::open(&path).unwrap();
        journal.append(&record(0)).unwrap();
        journal.append(&record(7)).unwrap();
        drop(journal);
        // Reopening appends after the existing records.
        let journal = FeedbackJournal::open(&path).unwrap();
        journal.append(&record(2)).unwrap();

        let (records, malformed) = read(&path).unwrap();
        assert_eq!(malformed, 0);
        assert_eq!(records, vec![record(0), record(7), record(2)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_is_empty_and_torn_lines_are_counted() {
        let dir = std::env::temp_dir();
        let missing = dir.join("spsel-journal-never-written.journal");
        assert_eq!(read(&missing).unwrap(), (Vec::new(), 0));

        let path = dir.join(format!("spsel-journal-torn-{}.journal", std::process::id()));
        std::fs::write(
            &path,
            "{\"gpu\":\"Volta\",\"cluster\":1,\"best\":\"CSR\"}\n{\"gpu\":\"Vol",
        )
        .unwrap();
        let (records, malformed) = read(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].cluster, 1);
        assert_eq!(malformed, 1, "the torn tail is skipped, not fatal");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_header_and_sequence_numbers_survive_reopen() {
        let path = temp_path("seq");
        let _ = std::fs::remove_file(&path);

        let journal = FeedbackJournal::open(&path).unwrap();
        assert_eq!(journal.next_seq(), 1, "fresh journal starts at seq 1");
        let s1 = journal.append_observe("Pascal", &[1.0, 2.5]).unwrap();
        let s2 = journal.append_feedback("Pascal", 3, "ELL").unwrap();
        assert_eq!((s1, s2), (1, 2));
        drop(journal);

        let journal = FeedbackJournal::open(&path).unwrap();
        assert_eq!(
            journal.append_observe("Volta", &[0.5]).unwrap(),
            3,
            "numbering continues monotonically across reopen"
        );
        drop(journal);

        let scan = read_journal(&path).unwrap();
        assert_eq!(scan.malformed, 0);
        assert_eq!(scan.last_seq, 3);
        assert!(!scan.unterminated);
        let seqs: Vec<u64> = scan.entries.iter().map(|e| e.seq()).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        // The file leads with a v2 header.
        let first = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        match parse_line(&first, 0) {
            Some(JournalLine::Header { version, base_seq }) => {
                assert_eq!((version, base_seq), (JOURNAL_VERSION, 0));
            }
            other => panic!("expected header, parsed {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn opening_a_torn_tail_seals_it_and_replay_skips_one_line() {
        let path = temp_path("seal");
        std::fs::write(
            &path,
            "{\"Feedback\":{\"seq\":1,\"gpu\":\"Volta\",\"cluster\":0,\"best\":\"CSR\"}}\n{\"Obse",
        )
        .unwrap();
        let journal = FeedbackJournal::open(&path).unwrap();
        assert_eq!(journal.next_seq(), 2);
        journal.append_feedback("Volta", 1, "ELL").unwrap();
        drop(journal);

        let scan = read_journal(&path).unwrap();
        assert_eq!(scan.malformed, 1, "the sealed torn tail is one bad line");
        let seqs: Vec<u64> = scan.entries.iter().map(|e| e.seq()).collect();
        assert_eq!(seqs, vec![1, 2], "the append after sealing parses cleanly");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rotation_is_atomic_and_numbering_continues() {
        let path = temp_path("rotate");
        let _ = std::fs::remove_file(&path);
        let journal = FeedbackJournal::open(&path).unwrap();
        for c in 0..3 {
            journal.append_feedback("Pascal", c, "ELL").unwrap();
        }

        // A crash before the rename leaves the old journal fully intact.
        assert!(!journal.rotate(3, CrashPoint::BeforeJournalRename).unwrap());
        let scan = read_journal(&path).unwrap();
        assert_eq!(scan.entries.len(), 3);

        assert!(journal.rotate(3, CrashPoint::None).unwrap());
        let scan = read_journal(&path).unwrap();
        assert!(scan.entries.is_empty(), "rotation leaves only the header");
        assert_eq!(scan.last_seq, 3, "the header carries the compacted seq");
        assert_eq!(journal.append_feedback("Pascal", 9, "COO").unwrap(), 4);
        let scan = read_journal(&path).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.last_seq, 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_writes_are_atomic_under_crash() {
        let path = temp_path("ckpt");
        let ckpt_path = checkpoint_path(&path);
        let _ = std::fs::remove_file(&ckpt_path);
        assert_eq!(load_checkpoint(&ckpt_path).unwrap(), None);

        let make = |last_seq: u64| Checkpoint {
            checkpoint_version: CHECKPOINT_VERSION,
            context_digest: "digest-a".into(),
            last_seq,
            gpus: vec![CheckpointGpu {
                gpu: "Pascal".into(),
                state: OnlineStateData {
                    clusters: OnlineKMeans::new(0.5, 8),
                    labels: Vec::new(),
                    unlabeled_observations: Vec::new(),
                },
            }],
        };
        assert!(write_checkpoint(&ckpt_path, &make(5), CrashPoint::None).unwrap());
        assert_eq!(load_checkpoint(&ckpt_path).unwrap().unwrap().last_seq, 5);

        // Crashing before the rename leaves the old checkpoint visible
        // and valid; the temp file is ignored.
        assert!(
            !write_checkpoint(&ckpt_path, &make(9), CrashPoint::BeforeCheckpointRename).unwrap()
        );
        assert_eq!(load_checkpoint(&ckpt_path).unwrap().unwrap().last_seq, 5);

        assert!(write_checkpoint(&ckpt_path, &make(9), CrashPoint::None).unwrap());
        assert_eq!(load_checkpoint(&ckpt_path).unwrap().unwrap().last_seq, 9);
        std::fs::remove_file(&ckpt_path).unwrap();
    }
}
