//! Append-only feedback journal: learned labels that survive a restart.
//!
//! Every applied `Feedback` request appends one JSON line —
//! `{"gpu":"Pascal","cluster":3,"best":"ELL"}` — to a journal file next
//! to the artifact (`<model>.spsel.journal` by default). On startup
//! `spsel-serve` replays the journal through the same
//! [`Engine::feedback`](crate::Engine::feedback) path (without
//! re-journaling), so cluster labels learned online are not lost when the
//! daemon restarts. Replay is forgiving: malformed lines (a torn final
//! write from a crash) and records that no longer apply (a cluster index
//! beyond the fresh warm-start) are counted and skipped, never fatal.

use crate::error::ServeError;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One applied feedback label, as journaled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// GPU whose online selector was updated.
    pub gpu: String,
    /// Cluster that was labeled.
    pub cluster: usize,
    /// The measured best format applied as the label.
    pub best: String,
}

/// An open journal the engine appends applied feedback to.
#[derive(Debug)]
pub struct FeedbackJournal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl FeedbackJournal {
    /// Open (creating if absent) a journal for appending.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| ServeError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        Ok(FeedbackJournal {
            writer: Mutex::new(BufWriter::new(file)),
            path,
        })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record and flush, so a crash loses at most the line
    /// being written.
    pub fn append(&self, record: &JournalRecord) -> Result<(), ServeError> {
        let line = serde_json::to_string(record).map_err(|e| ServeError::Malformed {
            message: e.to_string(),
        })?;
        let io_err = |e: std::io::Error| ServeError::Io {
            path: self.path.display().to_string(),
            message: e.to_string(),
        };
        let mut w = self.writer.lock().expect("journal writer lock");
        writeln!(w, "{line}").map_err(io_err)?;
        w.flush().map_err(io_err)
    }
}

/// Read every parseable record from a journal file. A missing file is an
/// empty journal (first start); malformed lines are counted, not fatal.
pub fn read(path: impl AsRef<Path>) -> Result<(Vec<JournalRecord>, u64), ServeError> {
    let path = path.as_ref();
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => {
            return Err(ServeError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })
        }
    };
    let mut records = Vec::new();
    let mut malformed = 0u64;
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| ServeError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalRecord>(&line) {
            Ok(r) => records.push(r),
            Err(_) => malformed += 1,
        }
    }
    Ok((records, malformed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cluster: usize) -> JournalRecord {
        JournalRecord {
            gpu: "Pascal".into(),
            cluster,
            best: "ELL".into(),
        }
    }

    #[test]
    fn appends_accumulate_and_read_back_in_order() {
        let dir = std::env::temp_dir().join(format!("spsel-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.spsel.journal");
        let _ = std::fs::remove_file(&path);

        let journal = FeedbackJournal::open(&path).unwrap();
        journal.append(&record(0)).unwrap();
        journal.append(&record(7)).unwrap();
        drop(journal);
        // Reopening appends after the existing records.
        let journal = FeedbackJournal::open(&path).unwrap();
        journal.append(&record(2)).unwrap();

        let (records, malformed) = read(&path).unwrap();
        assert_eq!(malformed, 0);
        assert_eq!(records, vec![record(0), record(7), record(2)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_is_empty_and_torn_lines_are_counted() {
        let dir = std::env::temp_dir();
        let missing = dir.join("spsel-journal-never-written.journal");
        assert_eq!(read(&missing).unwrap(), (Vec::new(), 0));

        let path = dir.join(format!("spsel-journal-torn-{}.journal", std::process::id()));
        std::fs::write(
            &path,
            "{\"gpu\":\"Volta\",\"cluster\":1,\"best\":\"CSR\"}\n{\"gpu\":\"Vol",
        )
        .unwrap();
        let (records, malformed) = read(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].cluster, 1);
        assert_eq!(malformed, 1, "the torn tail is skipped, not fatal");
        std::fs::remove_file(&path).unwrap();
    }
}
