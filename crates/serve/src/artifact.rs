//! Versioned, self-describing model artifacts.
//!
//! An artifact is everything a serving process needs to make decisions
//! without retraining: one fitted [`SemiSupervisedSelector`] per GPU
//! (which embeds its [`spsel_features::Preprocessor`]), the explicit
//! per-GPU cluster-label tables, the conversion-cost model, and enough
//! provenance (artifact version, feature-pipeline digest, corpus config,
//! context digest) to refuse anything stale.
//!
//! Compatibility rule: an artifact is loadable iff its
//! `artifact_version` equals this build's [`ARTIFACT_VERSION`] *and* its
//! `feature_digest` equals [`feature_pipeline_digest()`]. Any change to
//! the serialized shape must bump [`ARTIFACT_VERSION`]; any change to the
//! Table 1 feature set changes the digest by construction. Both
//! mismatches are typed [`ServeError`]s, never panics.
//!
//! Serialization uses the workspace's serde_json shim, which prints
//! floats with shortest-round-trip formatting — so a load reproduces
//! every model coefficient bit-for-bit and decisions from a reloaded
//! artifact are bit-identical to the selector that produced it (see
//! `tests/artifact.rs`).

use crate::error::ServeError;
use serde::{Deserialize, Serialize};
use spsel_core::cache::{Cache, KeyWriter};
use spsel_core::corpus::{Corpus, CorpusConfig};
use spsel_core::experiments::formatzoo::RegistryChoice;
use spsel_core::experiments::ExperimentContext;
use spsel_core::semi::{
    majority_label, ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector,
};
use spsel_core::CoreResult;
use spsel_features::{FeatureId, NUM_FEATURES};
use spsel_gpusim::cost::ConversionCostModel;
use spsel_gpusim::{best_format_for, Gpu};
use spsel_matrix::{Format, FormatRegistry, Workload};
use std::path::Path;

/// Version of the artifact serialization format. Bump on any change to
/// the serialized shape or semantics; a mismatch is rejected at load.
pub const ARTIFACT_VERSION: u32 = 1;

/// Digest of the feature pipeline the artifact's models consume: the
/// feature count and the exact Table 1 feature order. Models trained
/// against a different pipeline cannot be applied to this build's
/// feature vectors, digest inequality catches that at load time.
pub fn feature_pipeline_digest() -> String {
    let mut w = KeyWriter::new();
    w.usize(NUM_FEATURES);
    for id in FeatureId::ALL {
        w.str(id.name());
    }
    w.finish_hex()
}

/// The registry a digest names, when this build provides it. An
/// artifact whose digest is none of these cannot be served — its label
/// space (format set, order, or conversion costs) differs from anything
/// this build can decide over.
pub fn registry_for_digest(digest: &str) -> Option<FormatRegistry> {
    [
        FormatRegistry::cusp_default(),
        FormatRegistry::extended(),
        FormatRegistry::full(),
    ]
    .into_iter()
    .find(|r| r.digest() == digest)
}

fn known_registry_digests() -> String {
    [
        FormatRegistry::cusp_default(),
        FormatRegistry::extended(),
        FormatRegistry::full(),
    ]
    .iter()
    .map(|r| r.digest())
    .collect::<Vec<_>>()
    .join(", ")
}

/// One workload's per-cluster label table: `labels[c]` is the best
/// format for cluster `c` under this workload (majority vote over the
/// cluster's training members, falling back to the SpMV label).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadLabels {
    /// Workload wire name (`spmm4`, `spmm32`, ...).
    pub workload: String,
    /// One format label per cluster, cluster order.
    pub labels: Vec<Format>,
}

/// One GPU's trained selector plus its self-describing label tables.
#[derive(Debug, Clone, Serialize)]
pub struct GpuArtifact {
    /// GPU name (`Pascal`, `Volta`, `Turing`).
    pub gpu: String,
    /// The fitted selector (embeds preprocessing and clustering).
    pub selector: SemiSupervisedSelector,
    /// Per-cluster format labels, duplicated out of the selector so
    /// `spsel inspect` (and foreign tooling) can read the decision table
    /// without understanding the full selector encoding.
    pub cluster_labels: Vec<Format>,
    /// Per-workload cluster label tables for the non-SpMV workloads;
    /// empty in pre-workload artifacts (every workload then falls back
    /// to the SpMV labels).
    pub workload_labels: Vec<WorkloadLabels>,
    /// Matrices the selector was trained on.
    pub training_records: usize,
}

impl serde::Deserialize for GpuArtifact {
    // Hand-written so `workload_labels` may be absent: pre-workload
    // artifacts keep loading (the derive demands every key).
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = serde::expect_object(v, "GpuArtifact")?;
        Ok(GpuArtifact {
            gpu: serde::get_field(obj, "gpu", "GpuArtifact")?,
            selector: serde::get_field(obj, "selector", "GpuArtifact")?,
            cluster_labels: serde::get_field(obj, "cluster_labels", "GpuArtifact")?,
            workload_labels: serde::get_field_opt(obj, "workload_labels")?.unwrap_or_default(),
            training_records: serde::get_field(obj, "training_records", "GpuArtifact")?,
        })
    }
}

/// A complete, versioned serving model.
#[derive(Debug, Clone, Serialize)]
pub struct ModelArtifact {
    /// Serialization version — must equal [`ARTIFACT_VERSION`] to load.
    pub artifact_version: u32,
    /// Feature-pipeline digest — must equal [`feature_pipeline_digest`].
    pub feature_digest: String,
    /// Format-registry digest: the label space the model was trained
    /// over. Must name a registry this build provides
    /// ([`registry_for_digest`]); pre-registry artifacts (no such field)
    /// default to the CUSP four.
    pub registry_digest: String,
    /// Hex digest of the training context (corpus + every benchmark bit).
    pub context_digest: String,
    /// Corpus configuration the model was trained on.
    pub corpus: CorpusConfig,
    /// Conversion-cost model for amortized recommendations.
    pub conversion: ConversionCostModel,
    /// One entry per GPU that produced a usable training set.
    pub gpus: Vec<GpuArtifact>,
}

impl serde::Deserialize for ModelArtifact {
    // Hand-written so `registry_digest` may be absent: pre-registry
    // artifacts load as CUSP-default models.
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = serde::expect_object(v, "ModelArtifact")?;
        Ok(ModelArtifact {
            artifact_version: serde::get_field(obj, "artifact_version", "ModelArtifact")?,
            feature_digest: serde::get_field(obj, "feature_digest", "ModelArtifact")?,
            registry_digest: serde::get_field_opt(obj, "registry_digest")?
                .unwrap_or_else(|| FormatRegistry::cusp_default().digest()),
            context_digest: serde::get_field(obj, "context_digest", "ModelArtifact")?,
            corpus: serde::get_field(obj, "corpus", "ModelArtifact")?,
            conversion: serde::get_field(obj, "conversion", "ModelArtifact")?,
            gpus: serde::get_field(obj, "gpus", "ModelArtifact")?,
        })
    }
}

/// Training-time configuration: which labeler/seed to use and how the
/// cluster count scales with the training-set size (the `select` CLI's
/// long-standing `max(n / divisor, min_clusters)` heuristic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Seed for clustering and per-cluster models.
    pub seed: u64,
    /// Cluster-labeling strategy.
    pub labeler: Labeler,
    /// Cluster count = `max(n / cluster_divisor, min_clusters)`.
    pub cluster_divisor: usize,
    /// Lower bound on the cluster count.
    pub min_clusters: usize,
    /// Format registry (label space) to train over. The default —
    /// [`RegistryChoice::CuspDefault`] — reproduces the historical
    /// pipeline bit-for-bit: measured bench labels, same class count.
    pub registry: RegistryChoice,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            seed: 7,
            labeler: Labeler::Vote,
            cluster_divisor: 10,
            min_clusters: 4,
            registry: RegistryChoice::CuspDefault,
        }
    }
}

impl TrainConfig {
    /// The per-GPU [`SemiConfig`] for a training set of `n` matrices.
    pub fn semi_config(&self, n: usize) -> SemiConfig {
        SemiConfig::new(
            ClusterMethod::KMeans {
                nc: (n / self.cluster_divisor).max(self.min_clusters),
            },
            self.labeler,
            self.seed,
        )
    }

    /// Cache key for a trained artifact: artifact version, training
    /// context digest, and every training parameter — anything that could
    /// change the trained model changes the key.
    pub fn cache_key(&self, context_digest: u64) -> u64 {
        let mut w = KeyWriter::new();
        w.u32(ARTIFACT_VERSION);
        w.u64(context_digest);
        w.u64(self.seed);
        w.str(self.labeler.name());
        w.usize(self.cluster_divisor);
        w.usize(self.min_clusters);
        w.str(&self.registry.registry().digest());
        w.finish()
    }
}

/// Train one selector per active GPU from an experiment context.
/// GPUs that lost their whole benchmark run (fault degradation) are
/// skipped; an error is returned only when *no* GPU is trainable.
pub fn train(ctx: &ExperimentContext, tc: &TrainConfig) -> CoreResult<ModelArtifact> {
    let registry = tc.registry.registry();
    let mut gpus = Vec::new();
    for gpu in ctx.active_gpus() {
        let indices = ctx.dataset(gpu);
        if indices.is_empty() {
            continue;
        }
        let features = ctx.features(&indices);
        // SpMV training labels: the measured bench labels under the CUSP
        // default registry — bit-identical to the historical pipeline —
        // and model-derived best-of-registry labels otherwise (the bench
        // harness only measures the CUSP four).
        let labels: Vec<Format> = match tc.registry {
            RegistryChoice::CuspDefault => match Corpus::labels(ctx.bench(gpu), &indices) {
                Ok(l) => l,
                Err(_) => continue,
            },
            _ => {
                let spec = gpu.spec();
                indices
                    .iter()
                    .map(|&i| {
                        let r = &ctx.corpus.records[i];
                        best_format_for(&spec, &r.stats, r.id, &registry, Workload::SpMv)
                            .unwrap_or(Format::Csr)
                    })
                    .collect()
            }
        };
        let selector =
            SemiSupervisedSelector::fit(&features, &labels, tc.semi_config(indices.len()));
        let cluster_labels = selector.cluster_labels().to_vec();
        let workload_labels =
            workload_label_tables(ctx, gpu, &indices, &selector, &registry, &cluster_labels);
        gpus.push(GpuArtifact {
            gpu: gpu.name().to_string(),
            cluster_labels,
            workload_labels,
            training_records: indices.len(),
            selector,
        });
    }
    if gpus.is_empty() {
        return Err(spsel_core::CoreError::EmptyDataset { gpu: "all".into() });
    }
    Ok(ModelArtifact {
        artifact_version: ARTIFACT_VERSION,
        feature_digest: feature_pipeline_digest(),
        registry_digest: registry.digest(),
        context_digest: format!("{:016x}", ctx.digest()),
        corpus: ctx.corpus.config().clone(),
        conversion: ConversionCostModel::default(),
        gpus,
    })
}

/// One per-cluster label table per non-SpMV workload: every cluster is
/// labeled by majority vote over its training members' best registered
/// format under that workload, falling back to the cluster's SpMV label
/// when no member has a feasible format.
fn workload_label_tables(
    ctx: &ExperimentContext,
    gpu: Gpu,
    indices: &[usize],
    selector: &SemiSupervisedSelector,
    registry: &FormatRegistry,
    cluster_labels: &[Format],
) -> Vec<WorkloadLabels> {
    let spec = gpu.spec();
    let assignments = &selector.clustering().assignments;
    let nc = cluster_labels.len();
    Workload::ALL
        .into_iter()
        .filter(|&w| w != Workload::SpMv)
        .map(|w| {
            let mut members: Vec<Vec<Format>> = vec![Vec::new(); nc];
            for (pos, &i) in indices.iter().enumerate() {
                let r = &ctx.corpus.records[i];
                if let Some(f) = best_format_for(&spec, &r.stats, r.id, registry, w) {
                    members[assignments[pos]].push(f);
                }
            }
            WorkloadLabels {
                workload: w.name(),
                labels: (0..nc)
                    .map(|c| majority_label(&members[c], cluster_labels[c]))
                    .collect(),
            }
        })
        .collect()
}

/// Train with the artifact-bytes cache: a warm rerun with the same
/// context and training config loads the stored bytes instead of
/// retraining (counted as a model hit in the cache report).
pub fn train_cached(
    ctx: &ExperimentContext,
    tc: &TrainConfig,
    cache: &Cache,
) -> Result<ModelArtifact, ServeError> {
    let key = tc.cache_key(ctx.digest());
    if let Some(payload) = cache.load_model(ARTIFACT_VERSION, key) {
        // A cached payload that no longer parses (version drift without a
        // bump would be a bug, but bugs happen) falls back to retraining.
        if let Ok(artifact) = from_json(&payload) {
            return Ok(artifact);
        }
    }
    let artifact = train(ctx, tc)?;
    cache.store_model(ARTIFACT_VERSION, key, &to_json(&artifact));
    Ok(artifact)
}

/// Serialize an artifact to its canonical JSON encoding.
pub fn to_json(artifact: &ModelArtifact) -> String {
    serde_json::to_string(artifact).expect("model artifact serializes")
}

/// Parse and validate an artifact: version first (so any future encoding
/// still gets a precise [`ServeError::VersionMismatch`], not a parse
/// error), then the full decode, then the feature-pipeline digest, then
/// the format-registry digest (which must name a registry this build
/// provides; absent means CUSP default, so pre-registry artifacts keep
/// loading).
pub fn from_json(payload: &str) -> Result<ModelArtifact, ServeError> {
    let value: serde::Value = serde_json::from_str(payload).map_err(|e| ServeError::Malformed {
        message: e.to_string(),
    })?;
    let fields =
        serde::expect_object(&value, "ModelArtifact").map_err(|e| ServeError::Malformed {
            message: e.to_string(),
        })?;
    let found: u32 =
        serde::get_field(fields, "artifact_version", "ModelArtifact").map_err(|e| {
            ServeError::Malformed {
                message: e.to_string(),
            }
        })?;
    if found != ARTIFACT_VERSION {
        return Err(ServeError::VersionMismatch {
            found,
            expected: ARTIFACT_VERSION,
        });
    }
    // Registry digest is also peeked before the full decode: a model
    // trained over a format set this build does not provide must get the
    // precise mismatch error even if the rest of the payload has drifted
    // with it.
    let registry_digest: String = serde::get_field_opt(fields, "registry_digest")
        .map_err(|e| ServeError::Malformed {
            message: e.to_string(),
        })?
        .unwrap_or_else(|| FormatRegistry::cusp_default().digest());
    if registry_for_digest(&registry_digest).is_none() {
        return Err(ServeError::RegistryDigestMismatch {
            found: registry_digest,
            expected: known_registry_digests(),
        });
    }
    let artifact = ModelArtifact::from_value(&value).map_err(|e| ServeError::Malformed {
        message: e.to_string(),
    })?;
    let expected = feature_pipeline_digest();
    if artifact.feature_digest != expected {
        return Err(ServeError::FeatureDigestMismatch {
            found: artifact.feature_digest,
            expected,
        });
    }
    Ok(artifact)
}

/// Like [`from_json`], but additionally requires the artifact's registry
/// digest to equal `registry`'s exactly — for callers that have already
/// committed to a specific format set (e.g. a daemon started with an
/// explicit registry choice).
pub fn from_json_with(
    payload: &str,
    registry: &FormatRegistry,
) -> Result<ModelArtifact, ServeError> {
    let artifact = from_json(payload)?;
    let expected = registry.digest();
    if artifact.registry_digest != expected {
        return Err(ServeError::RegistryDigestMismatch {
            found: artifact.registry_digest,
            expected,
        });
    }
    Ok(artifact)
}

/// Write an artifact to `path` atomically: the payload lands in a
/// sibling temp file, is fsynced, and is renamed into place, so a crash
/// mid-save (or a concurrent `Swap` request loading the path) sees
/// either the old artifact or the new one — never a torn hybrid.
pub fn save(artifact: &ModelArtifact, path: impl AsRef<Path>) -> Result<(), ServeError> {
    let path = path.as_ref();
    let io_err = |e: std::io::Error| ServeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let write = || -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, to_json(artifact).as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    write().map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io_err(e)
    })
}

/// Read and validate an artifact from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<ModelArtifact, ServeError> {
    let path = path.as_ref();
    let payload = std::fs::read_to_string(path).map_err(|e| ServeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    from_json(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_digest_is_stable_and_order_sensitive() {
        assert_eq!(feature_pipeline_digest(), feature_pipeline_digest());
        assert_eq!(feature_pipeline_digest().len(), 16);
    }

    #[test]
    fn train_config_keys_separate_every_parameter() {
        let base = TrainConfig::default();
        let k = base.cache_key(1);
        assert_eq!(k, base.cache_key(1), "keys are deterministic");
        assert_ne!(k, base.cache_key(2), "context digest in the key");
        assert_ne!(
            k,
            TrainConfig { seed: 8, ..base }.cache_key(1),
            "seed in the key"
        );
        assert_ne!(
            k,
            TrainConfig {
                labeler: Labeler::RandomForest,
                ..base
            }
            .cache_key(1),
            "labeler in the key"
        );
        assert_ne!(
            k,
            TrainConfig {
                cluster_divisor: 5,
                ..base
            }
            .cache_key(1),
            "divisor in the key"
        );
    }

    #[test]
    fn version_mismatch_is_detected_before_full_decode() {
        // A payload with only a (wrong) version field: a full decode would
        // fail on missing fields, but the version check must win.
        let err = from_json(r#"{"artifact_version": 99}"#).unwrap_err();
        assert_eq!(err.code(), "artifact_version_mismatch");
        let err = from_json("not json at all").unwrap_err();
        assert_eq!(err.code(), "malformed");
        let err = from_json(r#"{"no_version": true}"#).unwrap_err();
        assert_eq!(err.code(), "malformed");
    }

    #[test]
    fn unknown_registry_digest_is_a_typed_error() {
        let payload = format!(
            r#"{{"artifact_version": {ARTIFACT_VERSION},
                "feature_digest": "{}",
                "registry_digest": "ffffffffffffffff"}}"#,
            feature_pipeline_digest()
        );
        let err = from_json(&payload).unwrap_err();
        assert_eq!(err.code(), "registry_digest_mismatch");
        assert!(err.to_string().contains("ffffffffffffffff"));
    }

    #[test]
    fn every_built_in_registry_digest_resolves() {
        for reg in [
            FormatRegistry::cusp_default(),
            FormatRegistry::extended(),
            FormatRegistry::full(),
        ] {
            let found = registry_for_digest(&reg.digest()).expect("digest must resolve");
            assert_eq!(found.digest(), reg.digest());
        }
        assert!(registry_for_digest("0000000000000000").is_none());
    }

    #[test]
    fn missing_registry_digest_defaults_to_cusp_default() {
        // Pre-registry artifacts never serialized the field; they must
        // decode as CUSP-default models.
        let v: serde::Value = serde_json::from_str(
            r#"{"artifact_version": 1,
                "feature_digest": "aa",
                "context_digest": "bb",
                "corpus": {"matrices": 1, "seed": 2, "rows_min": 3, "rows_max": 4},
                "conversion": {"cost": {}},
                "gpus": []}"#,
        )
        .unwrap();
        let obj = serde::expect_object(&v, "ModelArtifact").unwrap();
        let digest: Option<String> = serde::get_field_opt(obj, "registry_digest").unwrap();
        assert!(digest.is_none());
        assert_eq!(
            digest.unwrap_or_else(|| FormatRegistry::cusp_default().digest()),
            FormatRegistry::cusp_default().digest()
        );
    }
}
