//! `spsel-serve`: the persistent format-selection daemon.
//!
//! ```sh
//! spsel-serve --model model.spsel [--addr HOST:PORT] [--workers N]
//!             [--deadline-ms MS] [--max-conns N] [--shed-kib KIB]
//!             [--shards N] [--json REPORT]
//!             [--journal PATH | --no-journal]
//!             [--journal-fsync] [--checkpoint-every N]
//! spsel-serve --quick [--seed S]      # train a throwaway model first
//! spsel-serve --model model.spsel --follow HOST:PORT   # replica
//! ```
//!
//! On startup the daemon loads the checkpoint (if one exists) and
//! replays the journal tail (default `<model>.journal` when `--model`
//! is given; `--no-journal` disables persistence), so every online
//! mutation — cluster-opening observes and feedback labels — survives a
//! restart, even a `kill -9` mid-write. `--journal-fsync` fsyncs every
//! append instead of only checkpoint/rotation boundaries;
//! `--checkpoint-every N` compacts the journal into a checkpoint after
//! N records (default 4096; 0 disables auto-compaction). With
//! `--follow ADDR` the daemon is a read replica: it catches up from the
//! leader's `Sync` stream before listening, keeps polling in the
//! background, and serves from memory (no journal of its own).
//!
//! The daemon then prints exactly one `listening on HOST:PORT` line to
//! stdout (scripts parse it to find the ephemeral port) and serves
//! newline-delimited JSON requests until a `Shutdown` request. On exit
//! it prints the serving counters and, with `--json`, writes a run
//! report whose `serving` field holds the same counters.

use spsel_core::cache::{Cache, DEFAULT_CACHE_DIR};
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_core::CoreError;
use spsel_serve::artifact::{self, TrainConfig};
use spsel_serve::{
    Client, Engine, EngineOptions, JournalConfig, Request, ServeError, ServeOptions, Server,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// How often a `--follow` replica polls the leader for new records.
const FOLLOW_POLL: Duration = Duration::from_millis(300);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        let envelope = e.envelope();
        eprintln!(
            "spsel-serve: {}",
            serde_json::to_string(&envelope).expect("envelope serializes")
        );
        std::process::exit(1);
    }
}

fn value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, ServeError> {
    args.get(i + 1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CoreError::invalid_argument(format!("{flag} needs a value")).into())
}

/// One sync round against the leader: ask for everything past what this
/// engine has applied, apply the reply. Returns the records applied.
fn catch_up(engine: &Engine, leader: &str) -> Result<u64, ServeError> {
    let io = |message: String| ServeError::Io {
        path: leader.to_string(),
        message,
    };
    let mut client = Client::connect(leader).map_err(|e| io(e.to_string()))?;
    let response = client
        .roundtrip(&Request::Sync {
            from_seq: engine.applied_seq(),
        })
        .map_err(|e| io(e.to_string()))?;
    if let Some(envelope) = response.error {
        return Err(io(format!("leader refused sync: {}", envelope.message)));
    }
    let reply = response
        .sync
        .ok_or_else(|| io("leader answered sync without a sync payload".into()))?;
    engine.apply_sync(&reply)
}

fn run(args: &[String]) -> Result<(), ServeError> {
    let mut model_path = None;
    let mut quick = false;
    let mut seed = 0xC0FFEEu64;
    let mut opts = ServeOptions::default();
    let mut engine_opts = EngineOptions::default();
    let mut json = None;
    let mut journal_path: Option<String> = None;
    let mut no_journal = false;
    let mut journal_cfg = JournalConfig::default();
    let mut follow: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                model_path = Some(value::<String>(args, i, "--model")?);
                i += 1;
            }
            "--shards" => {
                engine_opts.write_shards = value(args, i, "--shards")?;
                i += 1;
            }
            "--journal" => {
                journal_path = Some(value::<String>(args, i, "--journal")?);
                i += 1;
            }
            "--no-journal" => no_journal = true,
            "--journal-fsync" => journal_cfg.fsync = true,
            "--checkpoint-every" => {
                journal_cfg.checkpoint_every = value(args, i, "--checkpoint-every")?;
                i += 1;
            }
            "--follow" => {
                follow = Some(value::<String>(args, i, "--follow")?);
                i += 1;
            }
            "--addr" => {
                opts.addr = value(args, i, "--addr")?;
                i += 1;
            }
            "--workers" => {
                opts.workers = value(args, i, "--workers")?;
                i += 1;
            }
            "--deadline-ms" => {
                opts.default_deadline_ms = value(args, i, "--deadline-ms")?;
                i += 1;
            }
            "--max-conns" => {
                opts.max_connections = value(args, i, "--max-conns")?;
                i += 1;
            }
            "--shed-kib" => {
                opts.shed_buffer_bytes = value::<usize>(args, i, "--shed-kib")? * 1024;
                i += 1;
            }
            "--seed" => {
                seed = value(args, i, "--seed")?;
                i += 1;
            }
            "--json" => {
                json = Some(value::<String>(args, i, "--json")?);
                i += 1;
            }
            "--quick" => quick = true,
            other => {
                return Err(
                    CoreError::invalid_argument(format!("unknown argument `{other}`")).into(),
                )
            }
        }
        i += 1;
    }

    // The journal lives next to the artifact unless overridden; a
    // throwaway --quick model has nowhere sensible to persist to, so it
    // only journals when --journal names a path explicitly. A follower
    // serves the leader's state from memory: its durable copy *is* the
    // leader's journal, so a local one would only diverge.
    if follow.is_some() && journal_path.is_some() {
        return Err(CoreError::invalid_argument(
            "--follow replicates the leader's journal; it cannot also write --journal",
        )
        .into());
    }
    let journal = if no_journal || follow.is_some() {
        None
    } else {
        journal_path.or_else(|| model_path.as_ref().map(|p| format!("{p}.journal")))
    };

    let model = match model_path {
        Some(path) => {
            let model = artifact::load(&path)?;
            eprintln!(
                "loaded artifact v{} ({} GPUs) from {path}",
                model.artifact_version,
                model.gpus.len()
            );
            model
        }
        None if quick => {
            eprintln!("no --model given: training a quick throwaway model");
            let cache = Cache::from_env(DEFAULT_CACHE_DIR);
            let mut report = RunReport::new("spsel-serve-train");
            let context =
                ExperimentContext::build(CorpusConfig::small(120, seed), &cache, &mut report);
            artifact::train_cached(&context, &TrainConfig::default(), &cache)?
        }
        None => {
            return Err(CoreError::invalid_argument(
                "spsel-serve needs --model MODEL (or --quick to train a throwaway model)",
            )
            .into())
        }
    };

    let mut engine = Engine::from_artifact(&model, &engine_opts)?;
    if let Some(path) = journal {
        let (replayed, skipped) = engine.attach_journal_with(&path, journal_cfg)?;
        eprintln!("journal {path}: replayed {replayed} records ({skipped} skipped)");
    }
    let engine = Arc::new(engine);

    // A follower must converge before it answers its first request:
    // catch up synchronously, then keep polling in the background.
    if let Some(leader) = &follow {
        let applied = catch_up(&engine, leader)?;
        eprintln!(
            "caught up with leader {leader}: applied {applied} records through seq {}",
            engine.applied_seq()
        );
    }

    let server = Server::bind(Arc::clone(&engine), opts).map_err(|e| ServeError::Io {
        path: "listener".into(),
        message: e.to_string(),
    })?;
    let addr = server.local_addr().map_err(|e| ServeError::Io {
        path: "listener".into(),
        message: e.to_string(),
    })?;
    let poller = follow.map(|leader| {
        let engine = Arc::clone(&engine);
        let stop = server.shutdown_flag();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(FOLLOW_POLL);
                // Transient leader outages are survivable: the replica
                // keeps serving what it has and retries next tick.
                let _ = catch_up(&engine, &leader);
            }
        })
    });
    println!("listening on {addr}");

    let serving = server.run();
    if let Some(handle) = poller {
        let _ = handle.join();
    }
    eprintln!(
        "served {} requests ({} select, {} feedback, {} stats, {} batch; {} errors, \
         {} shed; {} binary), p50 {:.0}us p99 {:.0}us, peak {} connections \
         ({} rejected at cap)",
        serving.requests,
        serving.select_requests,
        serving.feedback_requests,
        serving.stats_requests,
        serving.batch_requests,
        serving.errors,
        serving.shed,
        serving.binary_requests,
        serving.p50_latency_us,
        serving.p99_latency_us,
        serving.peak_connections,
        serving.connections_rejected,
    );
    if let Some(path) = json {
        let mut report = RunReport::new("spsel-serve");
        report.serving = Some(serving);
        let payload = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, payload).map_err(|e| ServeError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
    }
    Ok(())
}
