//! `spsel-serve`: the persistent format-selection daemon.
//!
//! ```sh
//! spsel-serve --model model.spsel [--addr HOST:PORT] [--workers N]
//!             [--deadline-ms MS] [--max-conns N] [--shed-kib KIB]
//!             [--shards N] [--json REPORT]
//!             [--journal PATH | --no-journal]
//! spsel-serve --quick [--seed S]      # train a throwaway model first
//! ```
//!
//! On startup the daemon replays the feedback journal (default
//! `<model>.journal` when `--model` is given; `--no-journal` disables
//! persistence), so cluster labels learned online survive a restart. It
//! then prints exactly one `listening on HOST:PORT` line to stdout
//! (scripts parse it to find the ephemeral port) and serves
//! newline-delimited JSON requests until a `Shutdown` request. On exit
//! it prints the serving counters and, with `--json`, writes a run
//! report whose `serving` field holds the same counters.

use spsel_core::cache::{Cache, DEFAULT_CACHE_DIR};
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_core::CoreError;
use spsel_serve::artifact::{self, TrainConfig};
use spsel_serve::{Engine, EngineOptions, ServeError, ServeOptions, Server};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        let envelope = e.envelope();
        eprintln!(
            "spsel-serve: {}",
            serde_json::to_string(&envelope).expect("envelope serializes")
        );
        std::process::exit(1);
    }
}

fn value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, ServeError> {
    args.get(i + 1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CoreError::invalid_argument(format!("{flag} needs a value")).into())
}

fn run(args: &[String]) -> Result<(), ServeError> {
    let mut model_path = None;
    let mut quick = false;
    let mut seed = 0xC0FFEEu64;
    let mut opts = ServeOptions::default();
    let mut engine_opts = EngineOptions::default();
    let mut json = None;
    let mut journal_path: Option<String> = None;
    let mut no_journal = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                model_path = Some(value::<String>(args, i, "--model")?);
                i += 1;
            }
            "--shards" => {
                engine_opts.write_shards = value(args, i, "--shards")?;
                i += 1;
            }
            "--journal" => {
                journal_path = Some(value::<String>(args, i, "--journal")?);
                i += 1;
            }
            "--no-journal" => no_journal = true,
            "--addr" => {
                opts.addr = value(args, i, "--addr")?;
                i += 1;
            }
            "--workers" => {
                opts.workers = value(args, i, "--workers")?;
                i += 1;
            }
            "--deadline-ms" => {
                opts.default_deadline_ms = value(args, i, "--deadline-ms")?;
                i += 1;
            }
            "--max-conns" => {
                opts.max_connections = value(args, i, "--max-conns")?;
                i += 1;
            }
            "--shed-kib" => {
                opts.shed_buffer_bytes = value::<usize>(args, i, "--shed-kib")? * 1024;
                i += 1;
            }
            "--seed" => {
                seed = value(args, i, "--seed")?;
                i += 1;
            }
            "--json" => {
                json = Some(value::<String>(args, i, "--json")?);
                i += 1;
            }
            "--quick" => quick = true,
            other => {
                return Err(
                    CoreError::invalid_argument(format!("unknown argument `{other}`")).into(),
                )
            }
        }
        i += 1;
    }

    // The journal lives next to the artifact unless overridden; a
    // throwaway --quick model has nowhere sensible to persist to, so it
    // only journals when --journal names a path explicitly.
    let journal = if no_journal {
        None
    } else {
        journal_path.or_else(|| model_path.as_ref().map(|p| format!("{p}.journal")))
    };

    let model = match model_path {
        Some(path) => {
            let model = artifact::load(&path)?;
            eprintln!(
                "loaded artifact v{} ({} GPUs) from {path}",
                model.artifact_version,
                model.gpus.len()
            );
            model
        }
        None if quick => {
            eprintln!("no --model given: training a quick throwaway model");
            let cache = Cache::from_env(DEFAULT_CACHE_DIR);
            let mut report = RunReport::new("spsel-serve-train");
            let context =
                ExperimentContext::build(CorpusConfig::small(120, seed), &cache, &mut report);
            artifact::train_cached(&context, &TrainConfig::default(), &cache)?
        }
        None => {
            return Err(CoreError::invalid_argument(
                "spsel-serve needs --model MODEL (or --quick to train a throwaway model)",
            )
            .into())
        }
    };

    let mut engine = Engine::from_artifact(&model, &engine_opts)?;
    if let Some(path) = journal {
        let (replayed, skipped) = engine.attach_journal(&path)?;
        eprintln!("journal {path}: replayed {replayed} feedback records ({skipped} skipped)");
    }
    let engine = Arc::new(engine);
    let server = Server::bind(engine, opts).map_err(|e| ServeError::Io {
        path: "listener".into(),
        message: e.to_string(),
    })?;
    let addr = server.local_addr().map_err(|e| ServeError::Io {
        path: "listener".into(),
        message: e.to_string(),
    })?;
    println!("listening on {addr}");

    let serving = server.run();
    eprintln!(
        "served {} requests ({} select, {} feedback, {} stats, {} batch; {} errors, \
         {} shed; {} binary), p50 {:.0}us p99 {:.0}us, peak {} connections \
         ({} rejected at cap)",
        serving.requests,
        serving.select_requests,
        serving.feedback_requests,
        serving.stats_requests,
        serving.batch_requests,
        serving.errors,
        serving.shed,
        serving.binary_requests,
        serving.p50_latency_us,
        serving.p99_latency_us,
        serving.peak_connections,
        serving.connections_rejected,
    );
    if let Some(path) = json {
        let mut report = RunReport::new("spsel-serve");
        report.serving = Some(serving);
        let payload = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, payload).map_err(|e| ServeError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
    }
    Ok(())
}
