//! `spsel`: the model-artifact CLI.
//!
//! ```sh
//! spsel train --out model.spsel [--quick | --base N] [--seed S]
//!             [--cache DIR | --no-cache] [--cache-gc] [--json REPORT]
//! spsel corpus ingest --journal PATH [--quick] [--seed S] [--cache DIR]
//! spsel inspect MODEL
//! spsel request [--binary] ADDR JSON   # one wire round-trip against a daemon
//! ```
//!
//! `train` builds (or loads from cache) the benchmark context — extended
//! with any grown records previously ingested for the corpus family —
//! fits one selector per GPU, and writes a versioned artifact; a warm
//! rerun with the same corpus and training config is served from the
//! artifact-bytes cache without retraining. `corpus ingest` promotes
//! journaled serve-time observations into the cache's growth shards
//! (benchmarking only the new matrices), closing the serve→train loop.
//! `inspect` prints an artifact's provenance and per-GPU cluster-label
//! tables. All failures exit nonzero with the serve error envelope on
//! stderr.

use spsel_core::cache::{Cache, GcConfig, DEFAULT_CACHE_DIR};
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_core::CoreError;
use spsel_matrix::Format;
use spsel_serve::artifact::{self, TrainConfig, ARTIFACT_VERSION};
use spsel_serve::{Client, ServeError};
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            let envelope = e.envelope();
            eprintln!(
                "spsel: {}",
                serde_json::to_string(&envelope).expect("envelope serializes")
            );
            std::process::exit(match e {
                ServeError::BadRequest { .. } => 2,
                _ => 1,
            });
        }
    }
}

fn run(args: &[String]) -> Result<(), ServeError> {
    match args.first().map(String::as_str) {
        Some("train") => train(&args[1..]),
        Some("corpus") => corpus(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("request") => request(&args[1..]),
        _ => Err(CoreError::invalid_argument(
            "usage: spsel train --out MODEL | spsel corpus ingest --journal PATH \
             | spsel inspect MODEL | spsel request ADDR JSON",
        )
        .into()),
    }
}

/// Parse the value after a flag, typed.
fn value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, ServeError> {
    args.get(i + 1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CoreError::invalid_argument(format!("{flag} needs a value")).into())
}

fn train(args: &[String]) -> Result<(), ServeError> {
    let mut out = None;
    let mut n_base = 300usize;
    let mut quick = false;
    let mut seed = 0xC0FFEEu64;
    let mut cache_dir = DEFAULT_CACHE_DIR.to_string();
    let mut no_cache = false;
    let mut cache_gc = false;
    let mut json = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = Some(value::<String>(args, i, "--out")?);
                i += 1;
            }
            "--base" => {
                n_base = value(args, i, "--base")?;
                i += 1;
            }
            "--seed" => {
                seed = value(args, i, "--seed")?;
                i += 1;
            }
            "--cache" => {
                cache_dir = value(args, i, "--cache")?;
                i += 1;
            }
            "--json" => {
                json = Some(value::<String>(args, i, "--json")?);
                i += 1;
            }
            "--quick" => quick = true,
            "--no-cache" => no_cache = true,
            "--cache-gc" => cache_gc = true,
            other => {
                return Err(
                    CoreError::invalid_argument(format!("unknown argument `{other}`")).into(),
                )
            }
        }
        i += 1;
    }
    let out = out
        .ok_or_else(|| ServeError::from(CoreError::invalid_argument("train needs --out MODEL")))?;

    let cfg = training_corpus_config(quick, n_base, seed);
    let cache = if no_cache {
        Cache::disabled()
    } else {
        Cache::from_env(&cache_dir)
    };
    if cache_gc {
        let gc = cache.gc(&GcConfig::default());
        eprintln!(
            "cache gc: kept {} artifacts ({} bytes), evicted {} ({} bytes)",
            gc.kept, gc.bytes_kept, gc.evicted, gc.bytes_evicted
        );
    }

    let mut report = RunReport::new("spsel-train");
    let mut context = report.time("context", || {
        ExperimentContext::build(cfg, &cache, &mut RunReport::new("inner"))
    });
    let grown = report.time("growth", || context.extend_with_growth(&cache));
    if grown > 0 {
        println!("corpus growth: {grown} ingested records joined the training set");
    }
    let tc = TrainConfig::default();
    let start = Instant::now();
    let model = artifact::train_cached(&context, &tc, &cache)?;
    report.record("train", start.elapsed().as_secs_f64());
    artifact::save(&model, &out)?;
    report.cache = cache.report();

    let cache_note = if report.cache.model_hits > 0 {
        " (artifact-cache hit, training skipped)"
    } else {
        ""
    };
    println!(
        "trained artifact v{ARTIFACT_VERSION} -> {out}{cache_note}: {} GPUs, corpus {} records, context {}",
        model.gpus.len(),
        context.corpus.len(),
        model.context_digest,
    );
    for g in &model.gpus {
        println!(
            "  {:<8} {} clusters over {} matrices",
            g.gpu,
            g.cluster_labels.len(),
            g.training_records
        );
    }
    println!(
        "cache: {} model hits, {} misses, {} stores",
        report.cache.model_hits, report.cache.model_misses, report.cache.model_stores
    );
    if let Some(path) = json {
        let payload = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, payload).map_err(|e| ServeError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
    }
    Ok(())
}

/// The corpus config `spsel train` trains on. `corpus ingest` builds the
/// same config so grown records land in the family the trainer reads
/// (growth shards are keyed by every generator parameter except
/// `n_base`).
fn training_corpus_config(quick: bool, n_base: usize, seed: u64) -> CorpusConfig {
    if quick {
        CorpusConfig::small(120, seed)
    } else {
        CorpusConfig {
            n_base,
            augment_copies: 0,
            seed,
            with_images: false,
            image_resolution: 32,
            size_scale: 1.0,
        }
    }
}

fn corpus(args: &[String]) -> Result<(), ServeError> {
    match args.first().map(String::as_str) {
        Some("ingest") => ingest(&args[1..]),
        _ => Err(CoreError::invalid_argument("usage: spsel corpus ingest --journal PATH").into()),
    }
}

fn ingest(args: &[String]) -> Result<(), ServeError> {
    let mut journal = None;
    let mut quick = false;
    let mut seed = 0xC0FFEEu64;
    let mut cache_dir = DEFAULT_CACHE_DIR.to_string();
    let mut no_cache = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--journal" => {
                journal = Some(value::<String>(args, i, "--journal")?);
                i += 1;
            }
            "--seed" => {
                seed = value(args, i, "--seed")?;
                i += 1;
            }
            "--cache" => {
                cache_dir = value(args, i, "--cache")?;
                i += 1;
            }
            "--quick" => quick = true,
            "--no-cache" => no_cache = true,
            other => {
                return Err(
                    CoreError::invalid_argument(format!("unknown argument `{other}`")).into(),
                )
            }
        }
        i += 1;
    }
    let journal = journal.ok_or_else(|| {
        ServeError::from(CoreError::invalid_argument("ingest needs --journal PATH"))
    })?;
    if no_cache {
        return Err(CoreError::invalid_argument(
            "ingest writes growth shards to the cache; it cannot run with --no-cache",
        )
        .into());
    }
    // n_base never reaches the shard family key; 0 keeps it obvious that
    // ingest grows *every* corpus size of the family at once.
    let cfg = training_corpus_config(quick, 0, seed);
    let cache = Cache::from_env(&cache_dir);
    if !cache.enabled() {
        return Err(CoreError::invalid_argument(
            "ingest writes growth shards to the cache; unset SPSEL_NO_CACHE to run it",
        )
        .into());
    }
    let report = spsel_serve::ingest::ingest_journal(Path::new(&journal), &cfg, &cache)?;
    println!(
        "ingested {journal}: {} observations, {} distinct matrices, {} appended ({} malformed lines)",
        report.observed, report.candidates, report.appended, report.malformed
    );
    Ok(())
}

fn inspect(args: &[String]) -> Result<(), ServeError> {
    let path = args
        .first()
        .ok_or_else(|| ServeError::from(CoreError::invalid_argument("inspect needs MODEL")))?;
    let model = artifact::load(path)?;
    println!("{path}: artifact v{}", model.artifact_version);
    println!("  feature pipeline {}", model.feature_digest);
    println!("  training context {}", model.context_digest);
    println!(
        "  corpus: {} base matrices, {} augmented copies, seed {:#x}, size scale {}",
        model.corpus.n_base,
        model.corpus.augment_copies,
        model.corpus.seed,
        model.corpus.size_scale
    );
    println!(
        "  conversion costs (CSR-SpMV equivalents): COO {}, ELL {}, HYB {}",
        model.conversion.coo, model.conversion.ell, model.conversion.hyb
    );
    for g in &model.gpus {
        let mut counts = [0usize; Format::COUNT];
        for &f in &g.cluster_labels {
            counts[f.index()] += 1;
        }
        let distribution: Vec<String> = Format::ALL
            .into_iter()
            .filter(|f| counts[f.index()] > 0)
            .map(|f| format!("{} x{}", f.name(), counts[f.index()]))
            .collect();
        println!(
            "  {:<8} {} clusters / {} matrices: {}",
            g.gpu,
            g.cluster_labels.len(),
            g.training_records,
            distribution.join(", ")
        );
    }
    Ok(())
}

fn request(args: &[String]) -> Result<(), ServeError> {
    let (addr, payload, binary) = match args {
        [addr, payload] => (addr, payload, false),
        [flag, addr, payload] | [addr, payload, flag] if flag == "--binary" => {
            (addr, payload, true)
        }
        _ => {
            return Err(
                CoreError::invalid_argument("usage: spsel request [--binary] ADDR JSON").into(),
            );
        }
    };
    let io_err = |e: std::io::Error| ServeError::Io {
        path: addr.clone(),
        message: e.to_string(),
    };
    if binary {
        // Same JSON in, same JSON out — only the wire bytes differ: the
        // payload parses to a typed request, travels as a binary frame,
        // and the decoded reply prints through the same serializer the
        // daemon uses for JSON lines, so the two paths are diffable.
        let request = serde_json::from_str(payload).map_err(|e| ServeError::BadRequest {
            message: format!("unparsable request: {e}"),
        })?;
        let mut client = Client::connect_binary(addr.as_str()).map_err(io_err)?;
        let response = client.roundtrip(&request).map_err(io_err)?;
        println!(
            "{}",
            serde_json::to_string(&response).expect("response serializes")
        );
    } else {
        let mut client = Client::connect(addr.as_str()).map_err(io_err)?;
        let response = client.roundtrip_raw(payload).map_err(io_err)?;
        println!("{response}");
    }
    Ok(())
}
