//! Typed serving errors and the wire error envelope.
//!
//! Every failure a client (or the `select` CLI) can provoke — malformed
//! JSON, an unknown GPU, a stale artifact, a missed deadline — maps to a
//! [`ServeError`] variant, and every variant renders as the same
//! [`ErrorEnvelope`] on the wire: a stable machine-readable `code` plus a
//! human-readable `message`. Nothing on the request path panics.

use serde::{Deserialize, Serialize};
use spsel_core::CoreError;
use std::fmt;

/// Why a serving operation (artifact load, request decode, decision)
/// failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request was syntactically or semantically malformed.
    BadRequest {
        /// What was wrong.
        message: String,
    },
    /// The request named a GPU the model does not know.
    UnknownGpu {
        /// The offending name.
        name: String,
    },
    /// The request named a storage format that does not exist.
    UnknownFormat {
        /// The offending name.
        name: String,
    },
    /// The request named a workload this build does not simulate.
    UnknownWorkload {
        /// The offending name.
        name: String,
    },
    /// Feedback referenced a cluster index the online selector does not
    /// have (would otherwise be an assertion failure deep in the core).
    UnknownCluster {
        /// GPU whose online selector was addressed.
        gpu: String,
        /// The offending cluster index.
        cluster: usize,
        /// Current number of clusters.
        clusters: usize,
    },
    /// An inline feature vector had the wrong dimensionality.
    FeatureDim {
        /// Features received.
        got: usize,
        /// Features required (Table 1 length).
        expected: usize,
    },
    /// An I/O failure on a matrix file or model artifact path.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error text.
        message: String,
    },
    /// The request took longer than its deadline allowed.
    DeadlineExceeded {
        /// Deadline the request carried (or the server default), ms.
        deadline_ms: u64,
        /// Time actually spent, ms.
        elapsed_ms: u64,
    },
    /// A batch item was never computed: the batch deadline had already
    /// elapsed when the cooperative check reached it. Earlier items in
    /// the same batch still carry real replies.
    DeadlineSkipped {
        /// Deadline the batch carried (or the server default), ms.
        deadline_ms: u64,
        /// Batch time already spent when this item was reached, ms.
        elapsed_ms: u64,
    },
    /// The request was never computed: the connection's pending output
    /// exceeded the shed threshold (a slow reader), so admission control
    /// answered with this envelope instead of burning compute on a reply
    /// the client is not draining.
    Shed {
        /// Bytes already queued for this connection.
        pending_bytes: usize,
        /// Shed threshold the server is running with.
        threshold_bytes: usize,
    },
    /// A binary frame declared a length past the protocol maximum — the
    /// stream cannot be resynchronized, so the connection is closed after
    /// this envelope.
    FrameTooLarge {
        /// Declared payload length.
        declared: u32,
        /// Largest payload the protocol allows.
        max: u32,
    },
    /// The artifact was written by an incompatible serialization version.
    VersionMismatch {
        /// Version found in the artifact.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The artifact was trained against a different feature pipeline.
    FeatureDigestMismatch {
        /// Digest found in the artifact.
        found: String,
        /// Digest of this build's pipeline.
        expected: String,
    },
    /// An artifact (or wire payload) that should be ours does not parse.
    Malformed {
        /// Parser diagnostics.
        message: String,
    },
    /// An internal lock was poisoned by a panicking holder. The request
    /// fails typed instead of propagating the panic (one wedged worker
    /// must not take down journaling or serving).
    LockPoisoned {
        /// Which lock (e.g. `journal writer`, `engine lifecycle`).
        what: String,
    },
    /// The artifact was trained against a format registry this build
    /// does not provide (different format set or conversion costs).
    RegistryDigestMismatch {
        /// Digest found in the artifact.
        found: String,
        /// Digest(s) this build accepts.
        expected: String,
    },
    /// A swap or sync named (or delivered) state from a different
    /// training context than the one being extended.
    ContextDigestMismatch {
        /// Digest found on the incoming artifact or state.
        found: String,
        /// Digest the operation expected.
        expected: String,
    },
    /// A core-pipeline error (training data, labeling, ...).
    Core(CoreError),
}

impl ServeError {
    /// Stable machine-readable error code for the wire envelope.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::UnknownGpu { .. } => "unknown_gpu",
            ServeError::UnknownFormat { .. } => "unknown_format",
            ServeError::UnknownWorkload { .. } => "unknown_workload",
            ServeError::UnknownCluster { .. } => "unknown_cluster",
            ServeError::FeatureDim { .. } => "feature_dim",
            ServeError::Io { .. } => "io",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::DeadlineSkipped { .. } => "deadline_skipped",
            ServeError::Shed { .. } => "shed",
            ServeError::FrameTooLarge { .. } => "frame_too_large",
            ServeError::VersionMismatch { .. } => "artifact_version_mismatch",
            ServeError::FeatureDigestMismatch { .. } => "feature_digest_mismatch",
            ServeError::Malformed { .. } => "malformed",
            ServeError::LockPoisoned { .. } => "lock_poisoned",
            ServeError::RegistryDigestMismatch { .. } => "registry_digest_mismatch",
            ServeError::ContextDigestMismatch { .. } => "context_digest_mismatch",
            ServeError::Core(_) => "core",
        }
    }

    /// The wire form of this error.
    pub fn envelope(&self) -> ErrorEnvelope {
        ErrorEnvelope {
            code: self.code().to_string(),
            message: self.to_string(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServeError::UnknownGpu { name } => {
                write!(
                    f,
                    "unknown GPU `{name}` (expected Pascal, Volta, or Turing)"
                )
            }
            ServeError::UnknownFormat { name } => {
                write!(
                    f,
                    "unknown format `{name}` (expected COO, CSR, ELL, HYB, \
                     BSR, SELL, or DIA)"
                )
            }
            ServeError::UnknownWorkload { name } => {
                write!(
                    f,
                    "unknown workload `{name}` (expected `spmv`, `spmm`, or \
                     `spmm<k>` with k in 1..=4096)"
                )
            }
            ServeError::UnknownCluster {
                gpu,
                cluster,
                clusters,
            } => write!(
                f,
                "cluster {cluster} does not exist on {gpu} ({clusters} clusters)"
            ),
            ServeError::FeatureDim { got, expected } => {
                write!(f, "feature vector has {got} values, expected {expected}")
            }
            ServeError::Io { path, message } => write!(f, "{path}: {message}"),
            ServeError::DeadlineExceeded {
                deadline_ms,
                elapsed_ms,
            } => write!(f, "deadline of {deadline_ms} ms exceeded ({elapsed_ms} ms)"),
            ServeError::DeadlineSkipped {
                deadline_ms,
                elapsed_ms,
            } => write!(
                f,
                "skipped: batch deadline of {deadline_ms} ms had elapsed \
                 ({elapsed_ms} ms) before this item was computed"
            ),
            ServeError::Shed {
                pending_bytes,
                threshold_bytes,
            } => write!(
                f,
                "shed: {pending_bytes} bytes already queued for this connection \
                 (threshold {threshold_bytes}); drain responses before sending more"
            ),
            ServeError::FrameTooLarge { declared, max } => write!(
                f,
                "frame declares a {declared}-byte payload, protocol maximum is {max}; \
                 closing the connection"
            ),
            ServeError::VersionMismatch { found, expected } => write!(
                f,
                "artifact version {found} is incompatible with this build \
                 (expected {expected}); re-run `spsel train`"
            ),
            ServeError::FeatureDigestMismatch { found, expected } => write!(
                f,
                "artifact was trained against feature pipeline {found}, \
                 this build computes {expected}; re-run `spsel train`"
            ),
            ServeError::Malformed { message } => write!(f, "malformed payload: {message}"),
            ServeError::LockPoisoned { what } => write!(
                f,
                "internal {what} lock was poisoned by a panicking holder; \
                 this request failed but the daemon is still serving"
            ),
            ServeError::RegistryDigestMismatch { found, expected } => write!(
                f,
                "artifact was trained against format registry {found}, which \
                 this build does not provide (expected {expected}); re-run \
                 `spsel train`"
            ),
            ServeError::ContextDigestMismatch { found, expected } => write!(
                f,
                "training-context digest {found} does not match the serving \
                 context {expected}; retrain against the same corpus or omit \
                 the expectation"
            ),
            ServeError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        // Argument/IO core errors keep their specific wire codes so CLI
        // and daemon report them identically.
        match e {
            CoreError::InvalidArgument { message } => ServeError::BadRequest { message },
            CoreError::Io { path, message } => ServeError::Io { path, message },
            other => ServeError::Core(other),
        }
    }
}

/// The wire form of every failure: one stable code, one readable message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorEnvelope {
    /// Machine-readable error class (`bad_request`, `unknown_gpu`, ...).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_distinct_code_and_message() {
        let errors = [
            ServeError::BadRequest {
                message: "x".into(),
            },
            ServeError::UnknownGpu { name: "TPU".into() },
            ServeError::UnknownFormat { name: "CSC".into() },
            ServeError::UnknownWorkload {
                name: "gemm".into(),
            },
            ServeError::UnknownCluster {
                gpu: "Volta".into(),
                cluster: 99,
                clusters: 4,
            },
            ServeError::FeatureDim {
                got: 3,
                expected: 21,
            },
            ServeError::Io {
                path: "a.mtx".into(),
                message: "gone".into(),
            },
            ServeError::DeadlineExceeded {
                deadline_ms: 5,
                elapsed_ms: 9,
            },
            ServeError::DeadlineSkipped {
                deadline_ms: 5,
                elapsed_ms: 9,
            },
            ServeError::Shed {
                pending_bytes: 300_000,
                threshold_bytes: 262_144,
            },
            ServeError::FrameTooLarge {
                declared: u32::MAX,
                max: 8 << 20,
            },
            ServeError::VersionMismatch {
                found: 2,
                expected: 1,
            },
            ServeError::FeatureDigestMismatch {
                found: "aa".into(),
                expected: "bb".into(),
            },
            ServeError::Malformed {
                message: "truncated".into(),
            },
            ServeError::LockPoisoned {
                what: "journal writer".into(),
            },
            ServeError::RegistryDigestMismatch {
                found: "ee".into(),
                expected: "ff".into(),
            },
            ServeError::ContextDigestMismatch {
                found: "cc".into(),
                expected: "dd".into(),
            },
            ServeError::Core(CoreError::EmptyDataset {
                gpu: "Pascal".into(),
            }),
        ];
        let codes: std::collections::HashSet<_> = errors.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), errors.len());
        for e in &errors {
            let env = e.envelope();
            assert_eq!(env.code, e.code());
            assert!(!env.message.is_empty());
        }
    }

    #[test]
    fn envelope_round_trips_and_core_args_map_to_wire_codes() {
        let env = ServeError::VersionMismatch {
            found: 9,
            expected: 1,
        }
        .envelope();
        let json = serde_json::to_string(&env).unwrap();
        let back: ErrorEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);

        let e: ServeError = CoreError::invalid_argument("--base takes a number").into();
        assert_eq!(e.code(), "bad_request");
        let e: ServeError = CoreError::io("m.mtx", "denied").into();
        assert_eq!(e.code(), "io");
    }
}
