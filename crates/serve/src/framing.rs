//! The length-prefixed binary frame format, negotiated per connection
//! alongside newline-delimited JSON.
//!
//! A binary connection opens with the 4-byte magic [`MAGIC`] (`SPB1`);
//! the server echoes the same 4 bytes as an acknowledgement and both
//! sides then exchange frames:
//!
//! ```text
//! offset 0  u32 LE   payload length N (kind byte + body, 1 <= N <= MAX_FRAME)
//! offset 4  u8       kind (request: 0x01..0x07, response: 0x81)
//! offset 5  [u8; N-1] body
//! ```
//!
//! All integers are little-endian; `f64`s travel as the raw bit pattern
//! of [`f64::to_bits`] (the same trick `spsel_core::cache::KeyWriter`
//! uses for cache keys), so a decoded feature vector or predicted time
//! is bit-identical to what was encoded — never a victim of float
//! formatting. Strings are UTF-8 with a `u16` length (`u32` for the
//! checkpoint and journal-record payloads of a sync reply, which can
//! outgrow 64 KiB); options are a one-byte tag. Frames decode to the
//! exact same [`Request`]/[`Response`]
//! types as the JSON protocol, so the engine, journal, and contention
//! counters cannot tell the protocols apart.
//!
//! Decoding is total: every malformed body comes back as a typed
//! [`ServeError`] (`malformed`), and a declared length past
//! [`MAX_FRAME`] is `frame_too_large` — the one framing error after
//! which the stream cannot be resynchronized, so the server closes the
//! connection after sending the envelope. [`FrameBuffer`] accumulates
//! torn reads incrementally; a frame split at any byte boundary
//! reassembles exactly.

use crate::error::ServeError;
use crate::protocol::{
    FeedbackReply, FormatTime, GpuStats, LifecycleStats, Request, Response, SelectBody,
    SelectReply, ShutdownReply, StatsReply, SwapReply, SyncReply,
};
use crate::ErrorEnvelope;
use spsel_core::telemetry::ServingReport;

/// Connection-opening magic for the binary protocol ("SPB1": SParse
/// Binary v1). Chosen so its first byte can never open a JSON request
/// line (`{`, `"`, or whitespace).
pub const MAGIC: [u8; 4] = *b"SPB1";

/// Largest payload (kind + body) a frame may declare. Large enough for
/// a 4096-item batch with full replies, small enough that a garbage
/// length prefix cannot make the server allocate unbounded memory.
pub const MAX_FRAME: u32 = 8 << 20;

/// Frame kind bytes. Requests are 0x01..0x07 (mirroring the JSON
/// request enum), every response is 0x81.
pub mod kind {
    /// `Request::Select`.
    pub const SELECT: u8 = 0x01;
    /// `Request::Batch`.
    pub const BATCH: u8 = 0x02;
    /// `Request::Feedback`.
    pub const FEEDBACK: u8 = 0x03;
    /// `Request::Stats`.
    pub const STATS: u8 = 0x04;
    /// `Request::Shutdown`.
    pub const SHUTDOWN: u8 = 0x05;
    /// `Request::Swap`.
    pub const SWAP: u8 = 0x06;
    /// `Request::Sync`.
    pub const SYNC: u8 = 0x07;
    /// Any response envelope.
    pub const RESPONSE: u8 = 0x81;
}

fn malformed(message: impl Into<String>) -> ServeError {
    ServeError::Malformed {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("wire strings fit in u16");
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
}

/// Long string: `u32` length. Only for payloads that can outgrow 64 KiB
/// (a sync reply's checkpoint and journal records).
fn put_lstr(out: &mut Vec<u8>, s: &str) {
    let len = u32::try_from(s.len()).expect("long wire strings fit in u32");
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt<T>(out: &mut Vec<u8>, v: &Option<T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put(out, v);
        }
    }
}

// ---------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------

/// Cursor over one frame body; every `take_*` is bounds-checked and
/// returns a typed `malformed` error instead of panicking.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                malformed(format!(
                    "truncated frame: {what} needs {n} bytes, {} left",
                    self.buf.len() - self.pos
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ServeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, ServeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, ServeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ServeError> {
        let b = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn f64(&mut self, what: &str) -> Result<f64, ServeError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn usize(&mut self, what: &str) -> Result<usize, ServeError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| malformed(format!("{what} {v} overflows usize")))
    }

    fn bool(&mut self, what: &str) -> Result<bool, ServeError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(malformed(format!("{what}: bool tag {other} is not 0/1"))),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, ServeError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| malformed(format!("{what} is not valid UTF-8")))
    }

    fn lstring(&mut self, what: &str) -> Result<String, ServeError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| malformed(format!("{what} is not valid UTF-8")))
    }

    fn opt<T>(
        &mut self,
        what: &str,
        read: impl FnOnce(&mut Self) -> Result<T, ServeError>,
    ) -> Result<Option<T>, ServeError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            other => Err(malformed(format!("{what}: option tag {other} is not 0/1"))),
        }
    }

    fn finish(&self, what: &str) -> Result<(), ServeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{what}: {} trailing bytes after the payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Frame envelope
// ---------------------------------------------------------------------

/// Wrap an already-encoded `kind + body` payload in a length prefix.
fn frame(kind_byte: u8, body: Vec<u8>) -> Vec<u8> {
    let payload_len = 1 + body.len();
    debug_assert!(payload_len <= MAX_FRAME as usize, "frame exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(4 + payload_len);
    put_u32(&mut out, payload_len as u32);
    out.push(kind_byte);
    out.extend_from_slice(&body);
    out
}

/// Incremental frame reassembly: push torn reads in, pull whole frames
/// out. The buffer never copies more than once and never allocates for
/// a declared length past [`MAX_FRAME`] — that comes back as a typed
/// error before any allocation.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append newly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so long-lived pipelined connections don't grow
        // without bound.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extract the next complete frame as `(kind, body)`. `Ok(None)`
    /// means more bytes are needed; `Err` means the stream is broken at
    /// the framing layer (zero or oversized length) and cannot be
    /// resynchronized.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, ServeError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if declared == 0 {
            return Err(malformed("frame declares a zero-length payload"));
        }
        if declared > MAX_FRAME {
            return Err(ServeError::FrameTooLarge {
                declared,
                max: MAX_FRAME,
            });
        }
        let total = 4 + declared as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let kind_byte = avail[4];
        let body = avail[5..total].to_vec();
        self.pos += total;
        Ok(Some((kind_byte, body)))
    }
}

// ---------------------------------------------------------------------
// Request encoding
// ---------------------------------------------------------------------

fn put_select_body(out: &mut Vec<u8>, body: &SelectBody) {
    put_opt(out, &body.matrix, |o, s| put_str(o, s));
    put_opt(out, &body.features, |o, fs| {
        let len = u16::try_from(fs.len()).expect("feature vectors fit in u16");
        put_u16(o, len);
        for &f in fs {
            put_f64(o, f);
        }
    });
    put_str(out, &body.gpu);
    put_opt(out, &body.iterations, |o, &i| put_u64(o, i as u64));
    put_opt(out, &body.learn, |o, &l| put_bool(o, l));
    put_opt(out, &body.workload, |o, s| put_str(o, s));
}

fn read_select_body(r: &mut ByteReader) -> Result<SelectBody, ServeError> {
    let matrix = r.opt("matrix", |r| r.string("matrix path"))?;
    let features = r.opt("features", |r| {
        let n = r.u16("feature count")? as usize;
        let mut fs = Vec::with_capacity(n);
        for _ in 0..n {
            fs.push(r.f64("feature value")?);
        }
        Ok(fs)
    })?;
    let gpu = r.string("gpu")?;
    let iterations = r.opt("iterations", |r| r.usize("iterations"))?;
    let learn = r.opt("learn", |r| r.bool("learn"))?;
    let workload = r.opt("workload", |r| r.string("workload"))?;
    Ok(SelectBody {
        matrix,
        features,
        gpu,
        iterations,
        learn,
        workload,
    })
}

/// Encode one request as a complete frame (length prefix included).
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    let kind_byte = match request {
        Request::Select {
            matrix,
            features,
            gpu,
            iterations,
            deadline_ms,
            learn,
            workload,
        } => {
            put_select_body(
                &mut body,
                &Request::select_body(matrix, features, gpu, *iterations, *learn, workload),
            );
            put_opt(&mut body, deadline_ms, |o, &d| put_u64(o, d));
            kind::SELECT
        }
        Request::Batch {
            requests,
            deadline_ms,
        } => {
            put_u32(&mut body, requests.len() as u32);
            for b in requests {
                put_select_body(&mut body, b);
            }
            put_opt(&mut body, deadline_ms, |o, &d| put_u64(o, d));
            kind::BATCH
        }
        Request::Feedback { gpu, cluster, best } => {
            put_str(&mut body, gpu);
            put_u64(&mut body, *cluster as u64);
            put_str(&mut body, best);
            kind::FEEDBACK
        }
        Request::Stats => kind::STATS,
        Request::Swap {
            path,
            expected_digest,
        } => {
            put_str(&mut body, path);
            put_opt(&mut body, expected_digest, |o, s| put_str(o, s));
            kind::SWAP
        }
        Request::Sync { from_seq } => {
            put_u64(&mut body, *from_seq);
            kind::SYNC
        }
        Request::Shutdown => kind::SHUTDOWN,
    };
    frame(kind_byte, body)
}

/// Decode one request from a frame's `(kind, body)`.
pub fn decode_request(kind_byte: u8, body: &[u8]) -> Result<Request, ServeError> {
    let mut r = ByteReader::new(body);
    let request = match kind_byte {
        kind::SELECT => {
            let b = read_select_body(&mut r)?;
            let deadline_ms = r.opt("deadline_ms", |r| r.u64("deadline_ms"))?;
            Request::Select {
                matrix: b.matrix,
                features: b.features,
                gpu: b.gpu,
                iterations: b.iterations,
                deadline_ms,
                learn: b.learn,
                workload: b.workload,
            }
        }
        kind::BATCH => {
            let n = r.u32("batch count")? as usize;
            // A body has at least 5 bytes per item (two option tags, an
            // empty gpu, two more tags); reject counts the body cannot
            // possibly hold before allocating for them.
            if n > body.len() {
                return Err(malformed(format!(
                    "batch declares {n} items in a {}-byte body",
                    body.len()
                )));
            }
            let mut requests = Vec::with_capacity(n);
            for _ in 0..n {
                requests.push(read_select_body(&mut r)?);
            }
            let deadline_ms = r.opt("deadline_ms", |r| r.u64("deadline_ms"))?;
            Request::Batch {
                requests,
                deadline_ms,
            }
        }
        kind::FEEDBACK => Request::Feedback {
            gpu: r.string("gpu")?,
            cluster: r.usize("cluster")?,
            best: r.string("best")?,
        },
        kind::STATS => Request::Stats,
        kind::SWAP => Request::Swap {
            path: r.string("path")?,
            expected_digest: r.opt("expected_digest", |r| r.string("expected_digest"))?,
        },
        kind::SYNC => Request::Sync {
            from_seq: r.u64("from_seq")?,
        },
        kind::SHUTDOWN => Request::Shutdown,
        other => return Err(malformed(format!("unknown request kind {other:#04x}"))),
    };
    r.finish("request")?;
    Ok(request)
}

// ---------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------

fn put_select_reply(out: &mut Vec<u8>, reply: &SelectReply) {
    put_str(out, &reply.gpu);
    put_str(out, &reply.workload);
    put_str(out, &reply.format);
    put_u64(out, reply.cluster as u64);
    put_u64(out, reply.cluster_size as u64);
    put_f64(out, reply.centroid_distance);
    put_bool(out, reply.new_cluster);
    put_bool(out, reply.benchmark_requested);
    put_u16(out, reply.predicted.len() as u16);
    for t in &reply.predicted {
        put_str(out, &t.format);
        put_opt(out, &t.us, |o, &us| put_f64(o, us));
    }
    put_str(out, &reply.amortized_format);
    put_f64(out, reply.amortized_total_us);
    put_f64(out, reply.csr_total_us);
    put_opt(out, &reply.break_even_iterations, |o, &i| {
        put_u64(o, i as u64)
    });
    put_u64(out, reply.iterations as u64);
}

fn read_select_reply(r: &mut ByteReader) -> Result<SelectReply, ServeError> {
    Ok(SelectReply {
        gpu: r.string("gpu")?,
        workload: r.string("workload")?,
        format: r.string("format")?,
        cluster: r.usize("cluster")?,
        cluster_size: r.usize("cluster_size")?,
        centroid_distance: r.f64("centroid_distance")?,
        new_cluster: r.bool("new_cluster")?,
        benchmark_requested: r.bool("benchmark_requested")?,
        predicted: {
            let n = r.u16("predicted count")? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(FormatTime {
                    format: r.string("predicted format")?,
                    us: r.opt("predicted us", |r| r.f64("predicted us"))?,
                });
            }
            v
        },
        amortized_format: r.string("amortized_format")?,
        amortized_total_us: r.f64("amortized_total_us")?,
        csr_total_us: r.f64("csr_total_us")?,
        break_even_iterations: r.opt("break_even", |r| r.usize("break_even"))?,
        iterations: r.usize("iterations")?,
    })
}

fn put_serving_report(out: &mut Vec<u8>, s: &ServingReport) {
    // Declaration order of `ServingReport` — kept in lockstep by the
    // JSON/binary equivalence tests, which fail on any drift.
    for v in [
        s.requests,
        s.select_requests,
        s.feedback_requests,
        s.stats_requests,
        s.batch_requests,
        s.max_batch_size,
        s.errors,
        s.deadline_exceeded,
        s.cluster_hits,
        s.new_clusters,
        s.benchmarks_requested,
        s.feedback_applied,
    ] {
        put_u64(out, v);
    }
    put_f64(out, s.p50_latency_us);
    put_f64(out, s.p99_latency_us);
    put_f64(out, s.max_latency_us);
    for v in [
        s.timed_decisions,
        s.decision_extract_ns,
        s.decision_embed_ns,
        s.decision_assign_ns,
        s.decision_label_ns,
    ] {
        put_u64(out, v);
    }
    put_f64(out, s.decision_p50_us);
    put_f64(out, s.decision_p99_us);
    for v in [
        s.read_decisions,
        s.write_decisions,
        s.write_lock_acquisitions,
        s.write_lock_wait_us,
        s.snapshot_swaps,
        s.deadline_skipped,
        s.journal_replayed,
        s.journal_appended,
        s.journal_skipped,
        s.shed,
        s.connections_accepted,
        s.connections_rejected,
        s.peak_connections,
        s.binary_requests,
        s.observes_journaled,
        s.observes_replayed,
        s.torn_tails,
        s.compactions,
        s.swaps,
        s.swap_requests,
        s.sync_requests,
        s.sync_records_sent,
        s.sync_bytes_sent,
        s.sync_records_applied,
    ] {
        put_u64(out, v);
    }
}

fn read_serving_report(r: &mut ByteReader) -> Result<ServingReport, ServeError> {
    let mut s = ServingReport::default();
    for field in [
        &mut s.requests,
        &mut s.select_requests,
        &mut s.feedback_requests,
        &mut s.stats_requests,
        &mut s.batch_requests,
        &mut s.max_batch_size,
        &mut s.errors,
        &mut s.deadline_exceeded,
        &mut s.cluster_hits,
        &mut s.new_clusters,
        &mut s.benchmarks_requested,
        &mut s.feedback_applied,
    ] {
        *field = r.u64("serving counter")?;
    }
    s.p50_latency_us = r.f64("p50_latency_us")?;
    s.p99_latency_us = r.f64("p99_latency_us")?;
    s.max_latency_us = r.f64("max_latency_us")?;
    for field in [
        &mut s.timed_decisions,
        &mut s.decision_extract_ns,
        &mut s.decision_embed_ns,
        &mut s.decision_assign_ns,
        &mut s.decision_label_ns,
    ] {
        *field = r.u64("serving counter")?;
    }
    s.decision_p50_us = r.f64("decision_p50_us")?;
    s.decision_p99_us = r.f64("decision_p99_us")?;
    for field in [
        &mut s.read_decisions,
        &mut s.write_decisions,
        &mut s.write_lock_acquisitions,
        &mut s.write_lock_wait_us,
        &mut s.snapshot_swaps,
        &mut s.deadline_skipped,
        &mut s.journal_replayed,
        &mut s.journal_appended,
        &mut s.journal_skipped,
        &mut s.shed,
        &mut s.connections_accepted,
        &mut s.connections_rejected,
        &mut s.peak_connections,
        &mut s.binary_requests,
        &mut s.observes_journaled,
        &mut s.observes_replayed,
        &mut s.torn_tails,
        &mut s.compactions,
        &mut s.swaps,
        &mut s.swap_requests,
        &mut s.sync_requests,
        &mut s.sync_records_sent,
        &mut s.sync_bytes_sent,
        &mut s.sync_records_applied,
    ] {
        *field = r.u64("serving counter")?;
    }
    Ok(s)
}

fn put_stats_reply(out: &mut Vec<u8>, reply: &StatsReply) {
    put_u32(out, reply.artifact_version);
    put_str(out, &reply.feature_digest);
    put_u16(out, reply.gpus.len() as u16);
    for g in &reply.gpus {
        put_str(out, &g.gpu);
        put_u64(out, g.clusters as u64);
        put_u64(out, g.unlabeled_clusters as u64);
        put_u64(out, g.staleness as u64);
        put_u64(out, g.training_records as u64);
        put_u64(out, g.shards as u64);
        put_u64(out, g.snapshot_version);
        put_u16(out, g.shard_feedbacks.len() as u16);
        for &f in &g.shard_feedbacks {
            put_u64(out, f);
        }
        put_f64(out, g.shard_imbalance);
    }
    put_serving_report(out, &reply.serving);
    put_lifecycle_stats(out, &reply.lifecycle);
}

fn put_lifecycle_stats(out: &mut Vec<u8>, l: &LifecycleStats) {
    put_bool(out, l.journal_attached);
    put_u64(out, l.last_seq);
    put_u64(out, l.applied_seq);
    put_u64(out, l.checkpoint_seq);
    put_u64(out, l.records_since_checkpoint);
    put_u64(out, l.journal_bytes);
    put_str(out, &l.context_digest);
    put_opt(out, &l.last_swap_digest, |o, s| put_str(o, s));
    put_u64(out, l.swaps);
    put_u64(out, l.compactions);
}

fn read_lifecycle_stats(r: &mut ByteReader) -> Result<LifecycleStats, ServeError> {
    Ok(LifecycleStats {
        journal_attached: r.bool("journal_attached")?,
        last_seq: r.u64("last_seq")?,
        applied_seq: r.u64("applied_seq")?,
        checkpoint_seq: r.u64("checkpoint_seq")?,
        records_since_checkpoint: r.u64("records_since_checkpoint")?,
        journal_bytes: r.u64("journal_bytes")?,
        context_digest: r.string("context_digest")?,
        last_swap_digest: r.opt("last_swap_digest", |r| r.string("last_swap_digest"))?,
        swaps: r.u64("swaps")?,
        compactions: r.u64("compactions")?,
    })
}

fn put_swap_reply(out: &mut Vec<u8>, reply: &SwapReply) {
    put_u32(out, reply.artifact_version);
    put_str(out, &reply.context_digest);
    put_str(out, &reply.previous_digest);
    put_u64(out, reply.gpus as u64);
    put_u64(out, reply.rebased);
    put_u64(out, reply.checkpoint_seq);
}

fn read_swap_reply(r: &mut ByteReader) -> Result<SwapReply, ServeError> {
    Ok(SwapReply {
        artifact_version: r.u32("artifact_version")?,
        context_digest: r.string("context_digest")?,
        previous_digest: r.string("previous_digest")?,
        gpus: r.usize("gpus")?,
        rebased: r.u64("rebased")?,
        checkpoint_seq: r.u64("checkpoint_seq")?,
    })
}

fn put_sync_reply(out: &mut Vec<u8>, reply: &SyncReply) {
    put_u64(out, reply.last_seq);
    put_u64(out, reply.checkpoint_seq);
    put_str(out, &reply.context_digest);
    put_opt(out, &reply.checkpoint, |o, s| put_lstr(o, s));
    put_u32(out, reply.records.len() as u32);
    for record in &reply.records {
        put_lstr(out, record);
    }
}

fn read_sync_reply(r: &mut ByteReader) -> Result<SyncReply, ServeError> {
    let last_seq = r.u64("last_seq")?;
    let checkpoint_seq = r.u64("checkpoint_seq")?;
    let context_digest = r.string("context_digest")?;
    let checkpoint = r.opt("checkpoint", |r| r.lstring("checkpoint"))?;
    let n = r.u32("record count")? as usize;
    // Each record costs at least its 4-byte length prefix; reject counts
    // the body cannot possibly hold before allocating for them.
    if n > r.buf.len() {
        return Err(malformed(format!(
            "sync reply declares {n} records in a {}-byte body",
            r.buf.len()
        )));
    }
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(r.lstring("journal record")?);
    }
    Ok(SyncReply {
        last_seq,
        checkpoint_seq,
        context_digest,
        checkpoint,
        records,
    })
}

fn read_stats_reply(r: &mut ByteReader) -> Result<StatsReply, ServeError> {
    let artifact_version = r.u32("artifact_version")?;
    let feature_digest = r.string("feature_digest")?;
    let n = r.u16("gpu count")? as usize;
    let mut gpus = Vec::with_capacity(n);
    for _ in 0..n {
        gpus.push(GpuStats {
            gpu: r.string("gpu")?,
            clusters: r.usize("clusters")?,
            unlabeled_clusters: r.usize("unlabeled_clusters")?,
            staleness: r.usize("staleness")?,
            training_records: r.usize("training_records")?,
            shards: r.usize("shards")?,
            snapshot_version: r.u64("snapshot_version")?,
            shard_feedbacks: {
                let n = r.u16("shard count")? as usize;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.u64("shard_feedbacks")?);
                }
                v
            },
            shard_imbalance: r.f64("shard_imbalance")?,
        });
    }
    Ok(StatsReply {
        artifact_version,
        feature_digest,
        gpus,
        serving: read_serving_report(r)?,
        lifecycle: read_lifecycle_stats(r)?,
    })
}

/// Response-section tags (exactly one per envelope).
mod section {
    pub const NONE: u8 = 0;
    pub const ERROR: u8 = 1;
    pub const SELECT: u8 = 2;
    pub const BATCH: u8 = 3;
    pub const FEEDBACK: u8 = 4;
    pub const STATS: u8 = 5;
    pub const SHUTDOWN: u8 = 6;
    pub const SWAP: u8 = 7;
    pub const SYNC: u8 = 8;
}

fn put_response_body(out: &mut Vec<u8>, response: &Response) {
    put_bool(out, response.ok);
    if let Some(e) = &response.error {
        out.push(section::ERROR);
        put_str(out, &e.code);
        put_str(out, &e.message);
    } else if let Some(s) = &response.select {
        out.push(section::SELECT);
        put_select_reply(out, s);
    } else if let Some(batch) = &response.batch {
        out.push(section::BATCH);
        put_u32(out, batch.len() as u32);
        for item in batch {
            put_response_body(out, item);
        }
    } else if let Some(fb) = &response.feedback {
        out.push(section::FEEDBACK);
        put_str(out, &fb.gpu);
        put_u64(out, fb.cluster as u64);
        put_str(out, &fb.format);
        put_u64(out, fb.unlabeled_clusters as u64);
        put_u64(out, fb.staleness as u64);
    } else if let Some(stats) = &response.stats {
        out.push(section::STATS);
        put_stats_reply(out, stats);
    } else if let Some(swap) = &response.swap {
        out.push(section::SWAP);
        put_swap_reply(out, swap);
    } else if let Some(sync) = &response.sync {
        out.push(section::SYNC);
        put_sync_reply(out, sync);
    } else if let Some(sd) = &response.shutdown {
        out.push(section::SHUTDOWN);
        put_bool(out, sd.stopping);
    } else {
        out.push(section::NONE);
    }
}

fn read_response_body(r: &mut ByteReader, depth: usize) -> Result<Response, ServeError> {
    if depth > 2 {
        return Err(malformed("response nests batches deeper than the protocol"));
    }
    let ok = r.bool("ok")?;
    let mut response = Response {
        ok,
        error: None,
        select: None,
        batch: None,
        feedback: None,
        stats: None,
        swap: None,
        sync: None,
        shutdown: None,
    };
    match r.u8("section tag")? {
        section::NONE => {}
        section::ERROR => {
            response.error = Some(ErrorEnvelope {
                code: r.string("error code")?,
                message: r.string("error message")?,
            });
        }
        section::SELECT => response.select = Some(read_select_reply(r)?),
        section::BATCH => {
            let n = r.u32("batch count")? as usize;
            if n > r.buf.len() {
                return Err(malformed(format!(
                    "batch reply declares {n} items in a {}-byte body",
                    r.buf.len()
                )));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_response_body(r, depth + 1)?);
            }
            response.batch = Some(items);
        }
        section::FEEDBACK => {
            response.feedback = Some(FeedbackReply {
                gpu: r.string("gpu")?,
                cluster: r.usize("cluster")?,
                format: r.string("format")?,
                unlabeled_clusters: r.usize("unlabeled_clusters")?,
                staleness: r.usize("staleness")?,
            });
        }
        section::STATS => response.stats = Some(read_stats_reply(r)?),
        section::SWAP => response.swap = Some(read_swap_reply(r)?),
        section::SYNC => response.sync = Some(read_sync_reply(r)?),
        section::SHUTDOWN => {
            response.shutdown = Some(ShutdownReply {
                stopping: r.bool("stopping")?,
            });
        }
        other => return Err(malformed(format!("unknown response section {other}"))),
    }
    Ok(response)
}

/// Encode one response as a complete frame (length prefix included).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut body = Vec::new();
    put_response_body(&mut body, response);
    frame(kind::RESPONSE, body)
}

/// Decode one response from a frame's `(kind, body)`.
pub fn decode_response(kind_byte: u8, body: &[u8]) -> Result<Response, ServeError> {
    if kind_byte != kind::RESPONSE {
        return Err(malformed(format!(
            "expected a response frame, got kind {kind_byte:#04x}"
        )));
    }
    let mut r = ByteReader::new(body);
    let response = read_response_body(&mut r, 0)?;
    r.finish("response")?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(r: &Request) -> Request {
        let bytes = encode_request(r);
        let mut fb = FrameBuffer::new();
        fb.push(&bytes);
        let (k, body) = fb.next_frame().unwrap().expect("one whole frame");
        assert!(fb.next_frame().unwrap().is_none(), "exactly one frame");
        decode_request(k, &body).unwrap()
    }

    #[test]
    fn unit_requests_round_trip() {
        assert_eq!(roundtrip_request(&Request::Stats), Request::Stats);
        assert_eq!(roundtrip_request(&Request::Shutdown), Request::Shutdown);
    }

    #[test]
    fn lifecycle_requests_round_trip() {
        for swap in [
            Request::Swap {
                path: "retrained.spsel".into(),
                expected_digest: Some("abc123".into()),
            },
            Request::Swap {
                path: "m.spsel".into(),
                expected_digest: None,
            },
        ] {
            assert_eq!(roundtrip_request(&swap), swap);
        }
        let sync = Request::Sync { from_seq: 42 };
        assert_eq!(roundtrip_request(&sync), sync);
    }

    #[test]
    fn frame_buffer_reassembles_any_split() {
        let bytes = encode_request(&Request::Feedback {
            gpu: "Volta".into(),
            cluster: 17,
            best: "HYB".into(),
        });
        for split in 0..=bytes.len() {
            let mut fb = FrameBuffer::new();
            fb.push(&bytes[..split]);
            if split < bytes.len() {
                assert!(fb.next_frame().unwrap().is_none(), "split {split}");
                fb.push(&bytes[split..]);
            }
            let (k, body) = fb.next_frame().unwrap().expect("reassembled");
            assert_eq!(k, kind::FEEDBACK);
            assert!(decode_request(k, &body).is_ok());
        }
    }

    #[test]
    fn frame_buffer_extracts_pipelined_frames_in_order() {
        let a = encode_request(&Request::Stats);
        let b = encode_request(&Request::Shutdown);
        let mut fb = FrameBuffer::new();
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        fb.push(&joined);
        assert_eq!(fb.next_frame().unwrap().unwrap().0, kind::STATS);
        assert_eq!(fb.next_frame().unwrap().unwrap().0, kind::SHUTDOWN);
        assert!(fb.next_frame().unwrap().is_none());
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn oversized_and_zero_lengths_are_typed_framing_errors() {
        let mut fb = FrameBuffer::new();
        fb.push(&(MAX_FRAME + 1).to_le_bytes());
        match fb.next_frame() {
            Err(ServeError::FrameTooLarge { declared, max }) => {
                assert_eq!(declared, MAX_FRAME + 1);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        let mut fb = FrameBuffer::new();
        fb.push(&0u32.to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(ServeError::Malformed { .. })));
    }

    #[test]
    fn truncated_and_trailing_bodies_are_malformed() {
        let whole = encode_request(&Request::Feedback {
            gpu: "Pascal".into(),
            cluster: 3,
            best: "CSR".into(),
        });
        let body = &whole[5..];
        // Every strict prefix of the body fails typed, never panics.
        for cut in 0..body.len() {
            let e = decode_request(kind::FEEDBACK, &body[..cut]).unwrap_err();
            assert_eq!(e.code(), "malformed", "cut {cut}: {e}");
        }
        // Trailing garbage after a complete body is rejected too.
        let mut long = body.to_vec();
        long.push(0xFF);
        assert!(decode_request(kind::FEEDBACK, &long).is_err());
    }

    #[test]
    fn unknown_kinds_and_sections_are_malformed() {
        assert!(decode_request(0x77, &[]).is_err());
        assert!(decode_response(kind::SELECT, &[]).is_err());
        assert!(decode_response(kind::RESPONSE, &[1, 99]).is_err());
    }
}
