//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, over a plain TCP
//! stream. Requests are an externally tagged enum: unit requests are bare
//! JSON strings (`"Stats"`, `"Shutdown"`), payload-carrying requests are
//! single-key objects (`{"Select": {...}}`). Every response is one flat
//! [`Response`] envelope: `ok` plus exactly one populated section (or
//! `error`), so clients never parse alternations.
//!
//! See the README for one worked request/response example per type.

use crate::error::{ErrorEnvelope, ServeError};
use serde::{Deserialize, Serialize};
use spsel_core::telemetry::ServingReport;
use spsel_gpusim::Gpu;
use spsel_matrix::{Format, Workload};

/// One format-selection query: a matrix by path *or* by inline Table 1
/// feature vector, on one GPU, for an iteration horizon.
///
/// `Deserialize` is hand-written (the derive requires every key): the
/// optional fields — `workload` in particular — may be absent on the
/// wire, and an absent `workload` means SpMV, which keeps every
/// pre-workload client bit-compatible.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SelectBody {
    /// Path to a Matrix Market file, readable by the server process.
    pub matrix: Option<String>,
    /// Inline Table 1 features (exactly 21 values, table order) —
    /// the zero-I/O path for clients that extract features themselves.
    pub features: Option<Vec<f64>>,
    /// GPU to decide for (`Pascal`, `Volta`, `Turing`).
    pub gpu: String,
    /// SpMV iteration horizon for the amortized recommendation
    /// (default 1000).
    pub iterations: Option<usize>,
    /// Whether this observation may update the online clustering
    /// (default true; set false for read-only probes).
    pub learn: Option<bool>,
    /// Workload to decide for (`spmv`, `spmm`, `spmm32`, ...); absent
    /// means SpMV — full wire compatibility with pre-workload clients.
    pub workload: Option<String>,
}

impl serde::Deserialize for SelectBody {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = serde::expect_object(v, "SelectBody")?;
        Ok(SelectBody {
            matrix: serde::get_field_opt(obj, "matrix")?,
            features: serde::get_field_opt(obj, "features")?,
            gpu: serde::get_field(obj, "gpu", "SelectBody")?,
            iterations: serde::get_field_opt(obj, "iterations")?,
            learn: serde::get_field_opt(obj, "learn")?,
            workload: serde::get_field_opt(obj, "workload")?,
        })
    }
}

/// One request line.
///
/// `Deserialize` is hand-written so optional `Select` fields (deadline,
/// learn flag, workload) may be absent on the wire; the derive would
/// demand every key and break older clients.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Request {
    /// Select a format for one matrix.
    Select {
        /// Path to a Matrix Market file.
        matrix: Option<String>,
        /// Inline Table 1 features (21 values).
        features: Option<Vec<f64>>,
        /// GPU to decide for.
        gpu: String,
        /// SpMV iteration horizon (default 1000).
        iterations: Option<usize>,
        /// Per-request deadline in milliseconds (overrides the server
        /// default; omit for the default).
        deadline_ms: Option<u64>,
        /// Whether the online clustering may learn from this observation.
        learn: Option<bool>,
        /// Workload to decide for; absent means SpMV.
        workload: Option<String>,
    },
    /// Select for many matrices in one round-trip; the worker fans the
    /// bodies out through the parallel runtime.
    Batch {
        /// The individual selection queries.
        requests: Vec<SelectBody>,
        /// Deadline for the whole batch, milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Report a measured best format for a cluster (the online loop):
    /// the server labels/refreshes that cluster without refitting.
    Feedback {
        /// GPU whose online selector to update.
        gpu: String,
        /// Cluster index from an earlier select response.
        cluster: usize,
        /// Measured best format (`COO`, `CSR`, `ELL`, `HYB`).
        best: String,
    },
    /// Fetch the serving counters and per-GPU online-clustering state.
    Stats,
    /// Hot-swap the serving model: load and digest-validate a retrained
    /// artifact, rebase the journal tail onto it, and publish it
    /// atomically — in-flight requests finish against the old model,
    /// nothing is dropped.
    Swap {
        /// Path to the retrained artifact, readable by the server
        /// process.
        path: String,
        /// Expected training-context digest; the swap is rejected when
        /// the artifact's digest differs. Omit to accept any valid
        /// artifact.
        expected_digest: Option<String>,
    },
    /// Replica catch-up: stream the checkpoint (when the caller is
    /// behind it) plus every journal record past `from_seq`, so a
    /// follower converges on the leader's online state.
    Sync {
        /// Highest sequence number the caller has already applied
        /// (0 for a cold follower).
        from_seq: u64,
    },
    /// Gracefully stop the daemon after answering this request.
    Shutdown,
}

impl serde::Deserialize for Request {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => match s.as_str() {
                "Stats" => Ok(Request::Stats),
                "Shutdown" => Ok(Request::Shutdown),
                other => Err(serde::Error::unknown_variant(other, "Request")),
            },
            serde::Value::Object(pairs) if pairs.len() == 1 => {
                let (key, val) = &pairs[0];
                match key.as_str() {
                    "Select" => {
                        let obj = serde::expect_object(val, "Request::Select")?;
                        Ok(Request::Select {
                            matrix: serde::get_field_opt(obj, "matrix")?,
                            features: serde::get_field_opt(obj, "features")?,
                            gpu: serde::get_field(obj, "gpu", "Request::Select")?,
                            iterations: serde::get_field_opt(obj, "iterations")?,
                            deadline_ms: serde::get_field_opt(obj, "deadline_ms")?,
                            learn: serde::get_field_opt(obj, "learn")?,
                            workload: serde::get_field_opt(obj, "workload")?,
                        })
                    }
                    "Batch" => {
                        let obj = serde::expect_object(val, "Request::Batch")?;
                        Ok(Request::Batch {
                            requests: serde::get_field(obj, "requests", "Request::Batch")?,
                            deadline_ms: serde::get_field_opt(obj, "deadline_ms")?,
                        })
                    }
                    "Feedback" => {
                        let obj = serde::expect_object(val, "Request::Feedback")?;
                        Ok(Request::Feedback {
                            gpu: serde::get_field(obj, "gpu", "Request::Feedback")?,
                            cluster: serde::get_field(obj, "cluster", "Request::Feedback")?,
                            best: serde::get_field(obj, "best", "Request::Feedback")?,
                        })
                    }
                    "Swap" => {
                        let obj = serde::expect_object(val, "Request::Swap")?;
                        Ok(Request::Swap {
                            path: serde::get_field(obj, "path", "Request::Swap")?,
                            expected_digest: serde::get_field_opt(obj, "expected_digest")?,
                        })
                    }
                    "Sync" => {
                        let obj = serde::expect_object(val, "Request::Sync")?;
                        Ok(Request::Sync {
                            from_seq: serde::get_field(obj, "from_seq", "Request::Sync")?,
                        })
                    }
                    other => Err(serde::Error::unknown_variant(other, "Request")),
                }
            }
            other => Err(serde::Error::expected("variant of Request", other.kind())),
        }
    }
}

impl Request {
    /// View a `Select` request as the batchable body it carries.
    #[allow(clippy::too_many_arguments)]
    pub fn select_body(
        matrix: &Option<String>,
        features: &Option<Vec<f64>>,
        gpu: &str,
        iterations: Option<usize>,
        learn: Option<bool>,
        workload: &Option<String>,
    ) -> SelectBody {
        SelectBody {
            matrix: matrix.clone(),
            features: features.clone(),
            gpu: gpu.to_string(),
            iterations,
            learn,
            workload: workload.clone(),
        }
    }
}

/// Predicted SpMV time of one format; `us` is absent when the format is
/// infeasible (out of memory) on the target GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormatTime {
    /// Format name.
    pub format: String,
    /// Predicted microseconds per SpMV, absent when infeasible.
    pub us: Option<f64>,
}

/// Answer to one selection query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectReply {
    /// GPU the decision is for.
    pub gpu: String,
    /// Workload the decision is for (`spmv` unless requested otherwise).
    pub workload: String,
    /// Recommended format (the cluster's label).
    pub format: String,
    /// Cluster the matrix was assigned to.
    pub cluster: usize,
    /// Observations in that cluster (training seed plus streamed).
    pub cluster_size: usize,
    /// Distance to the nearest centroid before this observation.
    pub centroid_distance: f64,
    /// Whether this matrix opened a brand-new online cluster.
    pub new_cluster: bool,
    /// Whether the server wants this matrix benchmarked (unlabeled
    /// cluster) — answer with a `Feedback` request.
    pub benchmark_requested: bool,
    /// Predicted per-format SpMV times.
    pub predicted: Vec<FormatTime>,
    /// Overhead-conscious recommendation at the iteration horizon.
    pub amortized_format: String,
    /// Total cost (conversion + iterations x kernel) of that choice, us.
    pub amortized_total_us: f64,
    /// Total cost of staying with CSR, us.
    pub csr_total_us: f64,
    /// Iterations after which leaving CSR pays off, absent when it never
    /// does.
    pub break_even_iterations: Option<usize>,
    /// Iteration horizon the amortized numbers used.
    pub iterations: usize,
}

/// Answer to a feedback request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackReply {
    /// GPU whose online selector was updated.
    pub gpu: String,
    /// Cluster that was labeled.
    pub cluster: usize,
    /// The label now carried by that cluster.
    pub format: String,
    /// Clusters still waiting for a benchmark label.
    pub unlabeled_clusters: usize,
    /// Observations absorbed by unlabeled clusters since their last
    /// benchmark.
    pub staleness: usize,
}

/// Per-GPU online-clustering state in a stats reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuStats {
    /// GPU name.
    pub gpu: String,
    /// Current online cluster count.
    pub clusters: usize,
    /// Clusters without a benchmark label.
    pub unlabeled_clusters: usize,
    /// Observations absorbed by unlabeled clusters.
    pub staleness: usize,
    /// Matrices used to train the batch selector behind this GPU.
    pub training_records: usize,
    /// Write shards the online label table is split over.
    pub shards: usize,
    /// Version of the GPU's current online snapshot (publishes since
    /// startup).
    pub snapshot_version: u64,
    /// Feedback labels applied per shard, shard order.
    pub shard_feedbacks: Vec<u64>,
    /// Busiest-shard feedback count over the mean (1.0 = balanced,
    /// 0.0 = no feedback yet).
    pub shard_imbalance: f64,
}

/// Model-lifecycle state in a stats reply: where the journal, the
/// checkpoint, and the serving model stand — replay and compaction
/// health without reading logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleStats {
    /// Whether a journal is attached (mutations are durable).
    pub journal_attached: bool,
    /// Highest journal sequence number assigned or seen.
    pub last_seq: u64,
    /// Highest sequence number this engine has applied (equals
    /// `last_seq` on a leader; trails it on a catching-up follower).
    pub applied_seq: u64,
    /// Highest sequence number folded into the checkpoint (0 before the
    /// first compaction).
    pub checkpoint_seq: u64,
    /// Journal records accumulated since the last checkpoint — the tail
    /// a restart would replay.
    pub records_since_checkpoint: u64,
    /// Current journal file size in bytes.
    pub journal_bytes: u64,
    /// Training-context digest of the serving model.
    pub context_digest: String,
    /// Context digest the last hot-swap published, absent before any
    /// swap.
    pub last_swap_digest: Option<String>,
    /// Hot-swaps published since startup.
    pub swaps: u64,
    /// Journal compactions completed since startup.
    pub compactions: u64,
}

/// Answer to a stats request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Artifact serialization version the engine was loaded from.
    pub artifact_version: u32,
    /// Feature-pipeline digest the engine's models consume.
    pub feature_digest: String,
    /// Per-GPU online state.
    pub gpus: Vec<GpuStats>,
    /// Serving counters since startup.
    pub serving: ServingReport,
    /// Journal/checkpoint/swap lifecycle state.
    pub lifecycle: LifecycleStats,
}

/// Answer to a hot-swap request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapReply {
    /// Serialization version of the artifact now serving.
    pub artifact_version: u32,
    /// Training-context digest of the artifact now serving.
    pub context_digest: String,
    /// Digest of the model that was replaced.
    pub previous_digest: String,
    /// GPUs in the new model.
    pub gpus: usize,
    /// Journal-tail records rebased onto the new model before it was
    /// published.
    pub rebased: u64,
    /// Checkpoint position after the swap's compaction (unchanged when
    /// no journal is attached).
    pub checkpoint_seq: u64,
}

/// Answer to a sync request: what the follower is missing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncReply {
    /// Leader's highest journal sequence number.
    pub last_seq: u64,
    /// Sequence the leader's checkpoint covers.
    pub checkpoint_seq: u64,
    /// Leader's training-context digest — a follower rejects state from
    /// a different context.
    pub context_digest: String,
    /// The checkpoint file, verbatim, when `from_seq` is behind it;
    /// absent when the follower only needs tail records.
    pub checkpoint: Option<String>,
    /// Journal records past `max(from_seq, checkpoint_seq)`, canonical
    /// v2 lines in sequence order.
    pub records: Vec<String>,
}

/// Answer to a shutdown request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShutdownReply {
    /// Always true: the daemon stops accepting connections after this
    /// response is written.
    pub stopping: bool,
}

/// One response line: `ok` plus exactly one populated section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Populated when `ok` is false.
    pub error: Option<ErrorEnvelope>,
    /// Populated for `Select` requests.
    pub select: Option<SelectReply>,
    /// Populated for `Batch` requests: one response per body, in order.
    pub batch: Option<Vec<Response>>,
    /// Populated for `Feedback` requests.
    pub feedback: Option<FeedbackReply>,
    /// Populated for `Stats` requests.
    pub stats: Option<StatsReply>,
    /// Populated for `Swap` requests.
    pub swap: Option<SwapReply>,
    /// Populated for `Sync` requests.
    pub sync: Option<SyncReply>,
    /// Populated for `Shutdown` requests.
    pub shutdown: Option<ShutdownReply>,
}

impl Response {
    fn empty(ok: bool) -> Self {
        Response {
            ok,
            error: None,
            select: None,
            batch: None,
            feedback: None,
            stats: None,
            swap: None,
            sync: None,
            shutdown: None,
        }
    }

    /// Error response carrying `e`'s envelope.
    pub fn from_error(e: &ServeError) -> Self {
        Response {
            error: Some(e.envelope()),
            ..Response::empty(false)
        }
    }

    /// Successful selection response.
    pub fn of_select(reply: SelectReply) -> Self {
        Response {
            select: Some(reply),
            ..Response::empty(true)
        }
    }

    /// Batch response; `ok` reflects whether every body succeeded.
    pub fn of_batch(responses: Vec<Response>) -> Self {
        let ok = responses.iter().all(|r| r.ok);
        Response {
            batch: Some(responses),
            ..Response::empty(ok)
        }
    }

    /// Successful feedback response.
    pub fn of_feedback(reply: FeedbackReply) -> Self {
        Response {
            feedback: Some(reply),
            ..Response::empty(true)
        }
    }

    /// Stats response.
    pub fn of_stats(reply: StatsReply) -> Self {
        Response {
            stats: Some(reply),
            ..Response::empty(true)
        }
    }

    /// Hot-swap response.
    pub fn of_swap(reply: SwapReply) -> Self {
        Response {
            swap: Some(reply),
            ..Response::empty(true)
        }
    }

    /// Sync (replica catch-up) response.
    pub fn of_sync(reply: SyncReply) -> Self {
        Response {
            sync: Some(reply),
            ..Response::empty(true)
        }
    }

    /// Shutdown acknowledgement.
    pub fn of_shutdown() -> Self {
        Response {
            shutdown: Some(ShutdownReply { stopping: true }),
            ..Response::empty(true)
        }
    }
}

/// Parse a GPU name from the wire (case-insensitive).
pub fn parse_gpu(name: &str) -> Result<Gpu, ServeError> {
    Gpu::ALL
        .into_iter()
        .find(|g| g.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| ServeError::UnknownGpu {
            name: name.to_string(),
        })
}

/// Parse a storage-format name from the wire (case-insensitive). The
/// whole format universe parses — feedback may name any format a served
/// registry could have recommended, not only the CUSP four.
pub fn parse_format(name: &str) -> Result<Format, ServeError> {
    Format::UNIVERSE
        .into_iter()
        .find(|f| f.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| ServeError::UnknownFormat {
            name: name.to_string(),
        })
}

/// Parse a workload name from the wire (`spmv`, `spmm`, `spmm32`, ...);
/// `None` means the client predates workloads and gets SpMV.
pub fn parse_workload(workload: &Option<String>) -> Result<Workload, ServeError> {
    match workload {
        None => Ok(Workload::SpMv),
        Some(name) => {
            Workload::parse(name).map_err(|_| ServeError::UnknownWorkload { name: name.clone() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            Request::Select {
                matrix: Some("a.mtx".into()),
                features: None,
                gpu: "Volta".into(),
                iterations: Some(500),
                deadline_ms: Some(20),
                learn: Some(false),
                workload: Some("spmm32".into()),
            },
            Request::Batch {
                requests: vec![SelectBody {
                    matrix: None,
                    features: Some(vec![1.0; 21]),
                    gpu: "Pascal".into(),
                    iterations: None,
                    learn: None,
                    workload: None,
                }],
                deadline_ms: None,
            },
            Request::Feedback {
                gpu: "Turing".into(),
                cluster: 3,
                best: "HYB".into(),
            },
            Request::Stats,
            Request::Swap {
                path: "retrained.spsel".into(),
                expected_digest: Some("abc123".into()),
            },
            Request::Sync { from_seq: 42 },
            Request::Shutdown,
        ];
        for r in reqs {
            let json = serde_json::to_string(&r).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
        // Unit requests are bare strings on the wire.
        assert_eq!(serde_json::to_string(&Request::Stats).unwrap(), "\"Stats\"");
        let back: Request = serde_json::from_str("\"Shutdown\"").unwrap();
        assert_eq!(back, Request::Shutdown);
    }

    #[test]
    fn responses_round_trip_and_batch_ok_aggregates() {
        let good = Response::of_shutdown();
        let bad = Response::from_error(&ServeError::UnknownGpu { name: "X".into() });
        assert!(good.ok && !bad.ok);
        let batch = Response::of_batch(vec![good.clone(), bad.clone()]);
        assert!(!batch.ok, "one failed body fails the batch");
        let json = serde_json::to_string(&batch).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, batch);
        assert_eq!(
            back.batch.as_ref().unwrap()[1].error.as_ref().unwrap().code,
            "unknown_gpu"
        );
    }

    #[test]
    fn gpu_and_format_names_parse_case_insensitively() {
        assert_eq!(parse_gpu("volta").unwrap(), Gpu::Volta);
        assert_eq!(parse_gpu("PASCAL").unwrap(), Gpu::Pascal);
        assert!(parse_gpu("TPU").is_err());
        assert_eq!(parse_format("hyb").unwrap(), Format::Hyb);
        assert_eq!(parse_format("Csr").unwrap(), Format::Csr);
        assert_eq!(parse_format("BSR").unwrap(), Format::Bsr);
        assert_eq!(parse_format("sell").unwrap(), Format::Sell);
        assert!(parse_format("CSC").is_err());
    }

    #[test]
    fn workload_names_parse_and_default_to_spmv() {
        assert_eq!(parse_workload(&None).unwrap(), Workload::SpMv);
        assert_eq!(
            parse_workload(&Some("SPMV".into())).unwrap(),
            Workload::SpMv
        );
        assert_eq!(
            parse_workload(&Some("spmm".into())).unwrap(),
            Workload::SpMm {
                k: Workload::DEFAULT_SPMM_K
            }
        );
        assert_eq!(
            parse_workload(&Some("spmm32".into())).unwrap(),
            Workload::SpMm { k: 32 }
        );
        let err = parse_workload(&Some("gemm".into())).unwrap_err();
        assert_eq!(err.code(), "unknown_workload");
    }

    #[test]
    fn select_requests_without_optional_keys_still_parse() {
        // Pre-workload clients omit `workload` (and may omit the other
        // optional keys); the hand-written Deserialize must accept that.
        let line = r#"{"Select":{"gpu":"Volta","features":[1.0,2.0]}}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        match req {
            Request::Select {
                gpu,
                workload,
                deadline_ms,
                matrix,
                ..
            } => {
                assert_eq!(gpu, "Volta");
                assert_eq!(workload, None);
                assert_eq!(deadline_ms, None);
                assert_eq!(matrix, None);
            }
            other => panic!("expected Select, got {other:?}"),
        }
        let line = r#"{"Batch":{"requests":[{"gpu":"Pascal"}]}}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        match req {
            Request::Batch {
                requests,
                deadline_ms,
            } => {
                assert_eq!(requests.len(), 1);
                assert_eq!(requests[0].gpu, "Pascal");
                assert_eq!(requests[0].workload, None);
                assert_eq!(deadline_ms, None);
            }
            other => panic!("expected Batch, got {other:?}"),
        }
    }
}
