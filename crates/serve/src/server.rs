//! The TCP serving loop: a nonblocking accept loop feeding readiness-
//! driven event-loop workers (see [`crate::event_loop`]), per-request
//! deadlines, load-shedding admission control, and graceful shutdown on
//! a `Shutdown` request.
//!
//! Each worker multiplexes thousands of persistent connections through
//! one `poll(2)` loop instead of parking a thread per connection, so the
//! connection count is bounded by file descriptors, not stacks. Both
//! wire protocols — newline-delimited JSON and the length-prefixed
//! binary frames of [`crate::framing`], negotiated per connection by its
//! first bytes — decode to the same [`Request`] and answer through the
//! same [`handle_request`], so the engine, journal, and contention
//! counters cannot tell them apart. Batch bodies still fan out through
//! the rayon shim, so one multi-matrix request uses every core.

use crate::engine::Engine;
use crate::error::{ErrorEnvelope, ServeError};
use crate::event_loop::{self, Inbox, LoopConfig};
use crate::metrics::ServeMetrics;
use crate::protocol::{Request, Response, SelectBody};
use rayon::prelude::*;
use spsel_core::telemetry::ServingReport;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Event-loop worker threads; 0 sizes the pool from the parallel
    /// runtime (`rayon::current_num_threads()`, minimum 2).
    pub workers: usize,
    /// Default per-request deadline in milliseconds; 0 means none.
    /// Requests can override it with `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Open-connection cap; a connection accepted past it is answered
    /// with one `shed` envelope and closed. 0 means unlimited.
    pub max_connections: usize,
    /// Per-connection pending-output bytes beyond which further requests
    /// are answered with `shed` envelopes instead of computed (a slow
    /// reader must not hold compute hostage). 0 disables shedding.
    pub shed_buffer_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            default_deadline_ms: 0,
            max_connections: 0,
            shed_buffer_bytes: 256 * 1024,
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener (fails fast on an unusable address).
    pub fn bind(engine: Arc<Engine>, opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        Ok(Server {
            listener,
            engine,
            opts,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the actual port when 0 was requested).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag external code can set to stop the server (equivalent to a
    /// `Shutdown` request).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until a `Shutdown` request (or the shutdown flag) stops the
    /// loop; drains the event-loop workers and returns the final
    /// counters.
    pub fn run(self) -> ServingReport {
        let Server {
            listener,
            engine,
            opts,
            shutdown,
        } = self;
        listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        let workers = if opts.workers > 0 {
            opts.workers
        } else {
            rayon::current_num_threads().max(2)
        };
        let cfg = LoopConfig {
            default_deadline_ms: opts.default_deadline_ms,
            shed_buffer_bytes: opts.shed_buffer_bytes,
        };
        let inboxes: Vec<Arc<Inbox>> = (0..workers).map(|_| Arc::new(Inbox::new())).collect();

        let mut handles = Vec::with_capacity(workers);
        for inbox in &inboxes {
            let inbox = Arc::clone(inbox);
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            handles.push(std::thread::spawn(move || {
                event_loop::run_worker(&inbox, &engine, &shutdown, &cfg)
            }));
        }

        // Round-robin accepted connections across worker inboxes; each
        // worker adopts its inbox on the next poll tick.
        let mut next_worker = 0usize;
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let metrics = engine.metrics();
                    if opts.max_connections > 0
                        && metrics.open_connections() >= opts.max_connections as u64
                    {
                        metrics.connection_rejected();
                        reject_connection(stream, opts.max_connections);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    metrics.connection_opened();
                    inboxes[next_worker].push(stream);
                    next_worker = (next_worker + 1) % inboxes.len();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Workers see the flag within one poll tick, flush what each
        // client is owed, and exit.
        for h in handles {
            let _ = h.join();
        }
        engine.serving_report()
    }
}

/// Answer a connection refused by the connection cap with one typed
/// `shed` line, then drop it. The envelope is built directly (there is
/// no per-connection buffer to report) but carries the same `shed` code
/// admission control uses, so clients handle both identically.
fn reject_connection(mut stream: TcpStream, max_connections: usize) {
    let response = Response {
        ok: false,
        error: Some(ErrorEnvelope {
            code: "shed".to_string(),
            message: format!("shed: connection cap of {max_connections} reached; retry later"),
        }),
        select: None,
        batch: None,
        feedback: None,
        stats: None,
        swap: None,
        sync: None,
        shutdown: None,
    };
    let payload = serde_json::to_string(&response).expect("response serializes");
    let _ = stream.write_all(payload.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Parse and answer one request line. Returns the response and whether
/// the daemon should stop.
pub fn handle_line(
    engine: &Engine,
    line: &str,
    received: Instant,
    default_deadline_ms: u64,
) -> (Response, bool) {
    engine.metrics().request();
    match serde_json::from_str::<Request>(line) {
        Ok(request) => handle_request(engine, &request, received, default_deadline_ms),
        Err(e) => {
            engine.metrics().error();
            (
                Response::from_error(&ServeError::BadRequest {
                    message: format!("unparsable request: {e}"),
                }),
                false,
            )
        }
    }
}

/// Answer one parsed request (shared by the socket loop and in-process
/// tests). Deadlines are enforced against `received` at both ends of
/// compute: a request whose deadline has already elapsed is rejected
/// before any work, and a response that took too long is replaced by a
/// `deadline_exceeded` envelope. Batch deadlines are instead enforced
/// *during* compute, item by item (see the `Batch` arm).
pub fn handle_request(
    engine: &Engine,
    request: &Request,
    received: Instant,
    default_deadline_ms: u64,
) -> (Response, bool) {
    let metrics = engine.metrics();
    match request {
        Request::Select {
            matrix,
            features,
            gpu,
            iterations,
            deadline_ms,
            learn,
            workload,
        } => {
            let deadline = deadline_ms.unwrap_or(default_deadline_ms);
            // Admission check: if the deadline elapsed while the request
            // sat in the read buffer or queue, reject it typed — don't
            // burn compute on a reply the client has already written off.
            if let Some(rejection) = admission_check(metrics, received, deadline) {
                return (rejection, false);
            }
            let body = Request::select_body(matrix, features, gpu, *iterations, *learn, workload);
            let response = select_response(engine, &body);
            (
                enforce_deadline(metrics, response, received, deadline),
                false,
            )
        }
        Request::Batch {
            requests,
            deadline_ms,
        } => {
            metrics.batch(requests.len());
            let deadline = deadline_ms.unwrap_or(default_deadline_ms);
            // Fan out through the parallel runtime; `map` preserves item
            // order, so results are deterministic regardless of worker
            // count. The deadline is enforced cooperatively: each item
            // re-checks the clock before computing, so a blown deadline
            // stops burning CPU mid-batch and the remainder comes back as
            // typed `deadline_skipped` envelopes while earlier items keep
            // their real replies.
            let responses: Vec<Response> = requests
                .par_iter()
                .map(|body| {
                    if deadline > 0 {
                        let elapsed_ms = received.elapsed().as_millis() as u64;
                        if elapsed_ms > deadline {
                            metrics.deadline_skipped();
                            return Response::from_error(&ServeError::DeadlineSkipped {
                                deadline_ms: deadline,
                                elapsed_ms,
                            });
                        }
                    }
                    select_response(engine, body)
                })
                .collect();
            (Response::of_batch(responses), false)
        }
        Request::Feedback { gpu, cluster, best } => match engine.feedback(gpu, *cluster, best) {
            Ok(reply) => (Response::of_feedback(reply), false),
            Err(e) => {
                metrics.error();
                (Response::from_error(&e), false)
            }
        },
        Request::Stats => (Response::of_stats(engine.stats()), false),
        Request::Swap {
            path,
            expected_digest,
        } => {
            metrics.swap_request();
            match engine.swap(path, expected_digest.as_deref()) {
                Ok(reply) => (Response::of_swap(reply), false),
                Err(e) => {
                    metrics.error();
                    (Response::from_error(&e), false)
                }
            }
        }
        Request::Sync { from_seq } => {
            metrics.sync_request();
            match engine.sync(*from_seq) {
                Ok(reply) => (Response::of_sync(reply), false),
                Err(e) => {
                    metrics.error();
                    (Response::from_error(&e), false)
                }
            }
        }
        Request::Shutdown => (Response::of_shutdown(), true),
    }
}

fn select_response(engine: &Engine, body: &SelectBody) -> Response {
    match engine.select(body) {
        Ok(reply) => Response::of_select(reply),
        Err(e) => {
            engine.metrics().error();
            Response::from_error(&e)
        }
    }
}

/// Pre-compute deadline check: `Some(rejection)` when the deadline had
/// already elapsed before any work was done.
fn admission_check(
    metrics: &ServeMetrics,
    received: Instant,
    deadline_ms: u64,
) -> Option<Response> {
    if deadline_ms == 0 {
        return None;
    }
    let elapsed_ms = received.elapsed().as_millis() as u64;
    if elapsed_ms <= deadline_ms {
        return None;
    }
    metrics.deadline_exceeded();
    Some(Response::from_error(&ServeError::DeadlineExceeded {
        deadline_ms,
        elapsed_ms,
    }))
}

fn enforce_deadline(
    metrics: &ServeMetrics,
    response: Response,
    received: Instant,
    deadline_ms: u64,
) -> Response {
    if deadline_ms == 0 {
        return response;
    }
    let elapsed_ms = received.elapsed().as_millis() as u64;
    if elapsed_ms <= deadline_ms {
        return response;
    }
    metrics.deadline_exceeded();
    Response::from_error(&ServeError::DeadlineExceeded {
        deadline_ms,
        elapsed_ms,
    })
}
