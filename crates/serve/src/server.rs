//! The TCP request loop: newline-delimited JSON over
//! [`std::net::TcpListener`], a fixed worker pool, per-request deadlines,
//! and graceful shutdown on a `Shutdown` request.
//!
//! The accept loop is non-blocking and hands connections to workers
//! through a condvar-guarded queue; workers poll their sockets with a
//! short read timeout so a shutdown (from any connection) drains every
//! worker within one poll interval. Batch bodies fan out through the
//! rayon shim, so one multi-matrix request uses every core.

use crate::engine::Engine;
use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::protocol::{Request, Response, SelectBody};
use rayon::prelude::*;
use spsel_core::telemetry::ServingReport;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Socket read timeout: the interval at which idle workers notice a
/// shutdown.
const READ_POLL: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker threads; 0 sizes the pool from the parallel runtime
    /// (`rayon::current_num_threads()`, minimum 2).
    pub workers: usize,
    /// Default per-request deadline in milliseconds; 0 means none.
    /// Requests can override it with `deadline_ms`.
    pub default_deadline_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            default_deadline_ms: 0,
        }
    }
}

struct ConnQueue {
    pending: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener (fails fast on an unusable address).
    pub fn bind(engine: Arc<Engine>, opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        Ok(Server {
            listener,
            engine,
            opts,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the actual port when 0 was requested).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag external code can set to stop the server (equivalent to a
    /// `Shutdown` request).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until a `Shutdown` request (or the shutdown flag) stops the
    /// loop; drains the worker pool and returns the final counters.
    pub fn run(self) -> ServingReport {
        let Server {
            listener,
            engine,
            opts,
            shutdown,
        } = self;
        listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        let workers = if opts.workers > 0 {
            opts.workers
        } else {
            rayon::current_num_threads().max(2)
        };
        let queue = Arc::new(ConnQueue {
            pending: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });

        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            let deadline = opts.default_deadline_ms;
            handles.push(std::thread::spawn(move || {
                worker_loop(&queue, &engine, &shutdown, deadline)
            }));
        }

        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let mut pending = queue.pending.lock().expect("conn queue lock");
                    pending.push_back(stream);
                    drop(pending);
                    queue.ready.notify_one();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Drain: wake every worker; each finishes its current connection,
        // sees the flag, and exits.
        queue.ready.notify_all();
        for h in handles {
            let _ = h.join();
        }
        engine.serving_report()
    }
}

fn worker_loop(
    queue: &ConnQueue,
    engine: &Engine,
    shutdown: &AtomicBool,
    default_deadline_ms: u64,
) {
    loop {
        let stream = {
            let mut pending = queue.pending.lock().expect("conn queue lock");
            loop {
                if let Some(s) = pending.pop_front() {
                    break Some(s);
                }
                if shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = queue
                    .ready
                    .wait_timeout(pending, READ_POLL)
                    .expect("conn queue wait");
                pending = guard;
            }
        };
        match stream {
            Some(s) => handle_connection(engine, s, shutdown, default_deadline_ms),
            None => return,
        }
    }
}

/// Serve one client connection: one response line per request line, until
/// EOF, an unrecoverable socket error, or shutdown.
fn handle_connection(
    engine: &Engine,
    stream: TcpStream,
    shutdown: &AtomicBool,
    default_deadline_ms: u64,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let received = Instant::now();
                if !line.trim().is_empty() {
                    let (response, stop) =
                        handle_line(engine, line.trim(), received, default_deadline_ms);
                    let payload = serde_json::to_string(&response).expect("response serializes");
                    if writer
                        .write_all(payload.as_bytes())
                        .and_then(|_| writer.write_all(b"\n"))
                        .and_then(|_| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                    engine.metrics().record_latency(received.elapsed());
                    if stop {
                        shutdown.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll: a partial line (if any) stays buffered in
                // `line` and the next read appends to it.
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Parse and answer one request line. Returns the response and whether
/// the daemon should stop.
pub fn handle_line(
    engine: &Engine,
    line: &str,
    received: Instant,
    default_deadline_ms: u64,
) -> (Response, bool) {
    engine.metrics().request();
    match serde_json::from_str::<Request>(line) {
        Ok(request) => handle_request(engine, &request, received, default_deadline_ms),
        Err(e) => {
            engine.metrics().error();
            (
                Response::from_error(&ServeError::BadRequest {
                    message: format!("unparsable request: {e}"),
                }),
                false,
            )
        }
    }
}

/// Answer one parsed request (shared by the socket loop and in-process
/// tests). Deadlines are enforced against `received` at both ends of
/// compute: a request whose deadline has already elapsed is rejected
/// before any work, and a response that took too long is replaced by a
/// `deadline_exceeded` envelope. Batch deadlines are instead enforced
/// *during* compute, item by item (see the `Batch` arm).
pub fn handle_request(
    engine: &Engine,
    request: &Request,
    received: Instant,
    default_deadline_ms: u64,
) -> (Response, bool) {
    let metrics = engine.metrics();
    match request {
        Request::Select {
            matrix,
            features,
            gpu,
            iterations,
            deadline_ms,
            learn,
        } => {
            let deadline = deadline_ms.unwrap_or(default_deadline_ms);
            // Admission check: if the deadline elapsed while the request
            // sat in the read buffer or queue, reject it typed — don't
            // burn compute on a reply the client has already written off.
            if let Some(rejection) = admission_check(metrics, received, deadline) {
                return (rejection, false);
            }
            let body = Request::select_body(matrix, features, gpu, *iterations, *learn);
            let response = select_response(engine, &body);
            (
                enforce_deadline(metrics, response, received, deadline),
                false,
            )
        }
        Request::Batch {
            requests,
            deadline_ms,
        } => {
            metrics.batch(requests.len());
            let deadline = deadline_ms.unwrap_or(default_deadline_ms);
            // Fan out through the parallel runtime; `map` preserves item
            // order, so results are deterministic regardless of worker
            // count. The deadline is enforced cooperatively: each item
            // re-checks the clock before computing, so a blown deadline
            // stops burning CPU mid-batch and the remainder comes back as
            // typed `deadline_skipped` envelopes while earlier items keep
            // their real replies.
            let responses: Vec<Response> = requests
                .par_iter()
                .map(|body| {
                    if deadline > 0 {
                        let elapsed_ms = received.elapsed().as_millis() as u64;
                        if elapsed_ms > deadline {
                            metrics.deadline_skipped();
                            return Response::from_error(&ServeError::DeadlineSkipped {
                                deadline_ms: deadline,
                                elapsed_ms,
                            });
                        }
                    }
                    select_response(engine, body)
                })
                .collect();
            (Response::of_batch(responses), false)
        }
        Request::Feedback { gpu, cluster, best } => match engine.feedback(gpu, *cluster, best) {
            Ok(reply) => (Response::of_feedback(reply), false),
            Err(e) => {
                metrics.error();
                (Response::from_error(&e), false)
            }
        },
        Request::Stats => (Response::of_stats(engine.stats()), false),
        Request::Shutdown => (Response::of_shutdown(), true),
    }
}

fn select_response(engine: &Engine, body: &SelectBody) -> Response {
    match engine.select(body) {
        Ok(reply) => Response::of_select(reply),
        Err(e) => {
            engine.metrics().error();
            Response::from_error(&e)
        }
    }
}

/// Pre-compute deadline check: `Some(rejection)` when the deadline had
/// already elapsed before any work was done.
fn admission_check(
    metrics: &ServeMetrics,
    received: Instant,
    deadline_ms: u64,
) -> Option<Response> {
    if deadline_ms == 0 {
        return None;
    }
    let elapsed_ms = received.elapsed().as_millis() as u64;
    if elapsed_ms <= deadline_ms {
        return None;
    }
    metrics.deadline_exceeded();
    Some(Response::from_error(&ServeError::DeadlineExceeded {
        deadline_ms,
        elapsed_ms,
    }))
}

fn enforce_deadline(
    metrics: &ServeMetrics,
    response: Response,
    received: Instant,
    deadline_ms: u64,
) -> Response {
    if deadline_ms == 0 {
        return response;
    }
    let elapsed_ms = received.elapsed().as_millis() as u64;
    if elapsed_ms <= deadline_ms {
        return response;
    }
    metrics.deadline_exceeded();
    Response::from_error(&ServeError::DeadlineExceeded {
        deadline_ms,
        elapsed_ms,
    })
}
