//! The nonblocking readiness loop behind [`crate::server::Server`].
//!
//! Each worker owns a set of nonblocking connections and multiplexes
//! them through a single hand-rolled `poll(2)` loop — no thread per
//! connection, so thousands of persistent clients cost one `pollfd`
//! each, not one stack each. Per connection the loop keeps a read
//! buffer (torn frames and torn lines reassemble across ticks), a write
//! buffer (a slow reader never blocks the worker — unwritten bytes wait
//! in userspace until the socket drains), and a protocol mode
//! negotiated from the first bytes: the [`crate::framing::MAGIC`]
//! preamble selects the binary frame protocol, anything else is
//! newline-delimited JSON.
//!
//! Requests are pipelined: every complete request in the buffer is
//! answered in arrival order before the next poll. Admission control is
//! wired into the same deadline machinery as compute: a request parsed
//! from a connection whose pending output already exceeds the shed
//! threshold is answered with a typed `shed` envelope instead of being
//! decided, and a request whose deadline elapsed while it sat behind a
//! deep pipeline is rejected by the existing pre-compute check (its
//! `received` instant is when its bytes arrived, not when they were
//! parsed).
//!
//! Lifecycle requests (`Swap`, `Sync`) ride the same loop as decisions:
//! a hot-swap publishes the new model between two pipelined requests on
//! the worker that carried it, while every other worker keeps answering
//! from whichever model it resolves at decision time — no connection is
//! paused, drained, or closed for a swap.

use crate::engine::Engine;
use crate::error::ServeError;
use crate::framing::{self, FrameBuffer, MAGIC};
use crate::protocol::Response;
use crate::server::{handle_line, handle_request};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Poll timeout: the latency bound for adopting new connections and
/// noticing a shutdown requested on another worker.
const POLL_TICK: i32 = 5;
/// Most bytes read from one connection per tick, so a firehose client
/// cannot starve its neighbours on the same worker.
const READ_BUDGET: usize = 256 * 1024;
/// A JSON line (or sniffed preamble) may grow this large before the
/// connection is declared malformed; binary frames have their own cap
/// ([`framing::MAX_FRAME`]).
const MAX_JSON_LINE: usize = 8 << 20;
/// How long the drain phase keeps flushing pending replies after
/// shutdown before giving up on unwritable clients.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Event-loop knobs, derived from [`crate::server::ServeOptions`].
#[derive(Debug, Clone, Copy)]
pub struct LoopConfig {
    /// Default per-request deadline (0 = none).
    pub default_deadline_ms: u64,
    /// Pending-output bytes beyond which a connection's further
    /// requests are shed instead of computed.
    pub shed_buffer_bytes: usize,
}

/// The accept loop hands connections to workers through this shared
/// inbox (one per worker, round-robin).
#[derive(Debug, Default)]
pub struct Inbox {
    pending: Mutex<Vec<TcpStream>>,
}

impl Inbox {
    /// Empty inbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a freshly accepted connection for this worker.
    pub fn push(&self, stream: TcpStream) {
        self.pending.lock().expect("inbox lock").push(stream);
    }

    fn drain(&self) -> Vec<TcpStream> {
        std::mem::take(&mut *self.pending.lock().expect("inbox lock"))
    }
}

// ---------------------------------------------------------------------
// poll(2) via FFI — the readiness primitive itself, hand-rolled like
// the rest of the workspace's shims because the build has no libc
// crate. `poll` is in every libc that std already links against.
// ---------------------------------------------------------------------
#[cfg(unix)]
mod sys {
    use std::os::unix::io::RawFd;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Level-triggered readiness over `fds`; returns how many entries
    /// have nonzero `revents`. An empty slice is a plain sleep.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

#[cfg(not(unix))]
mod sys {
    //! Degenerate fallback for non-unix targets: report everything
    //! ready and let the nonblocking reads/writes sort it out.
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(1) as u64));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

// ---------------------------------------------------------------------
// Per-connection state
// ---------------------------------------------------------------------

/// Pending output: bytes the socket would not take yet. `pos` marks the
/// written prefix; compaction is amortized so a slow client costs one
/// buffer, not quadratic copies.
#[derive(Debug, Default)]
struct WriteBuf {
    data: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    fn push(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    fn pending(&self) -> usize {
        self.data.len() - self.pos
    }

    fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Write as much as the socket takes right now. `Ok(false)` means
    /// the connection is gone.
    fn flush(&mut self, stream: &mut TcpStream) -> bool {
        while self.pos < self.data.len() {
            match stream.write(&self.data[self.pos..]) {
                Ok(0) => return false,
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.pos == self.data.len() {
            self.data.clear();
            self.pos = 0;
        } else if self.pos >= 64 * 1024 {
            self.data.drain(..self.pos);
            self.pos = 0;
        }
        true
    }
}

/// Wire protocol spoken on one connection, decided by its first bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Not enough bytes yet to tell.
    Sniffing,
    /// Newline-delimited JSON (the PR-4 protocol, unchanged).
    Json,
    /// Length-prefixed binary frames (see [`framing`]).
    Binary,
}

struct Conn {
    stream: TcpStream,
    mode: Mode,
    /// Sniffing preamble + JSON line accumulation.
    inbuf: Vec<u8>,
    /// Binary frame reassembly.
    frames: FrameBuffer,
    wbuf: WriteBuf,
    /// When the oldest still-unanswered bytes arrived — the `received`
    /// instant for deadline checks, so pipelined requests age while
    /// they wait behind earlier ones.
    arrival: Instant,
    /// Reading is over (EOF, protocol error, or shutdown); close once
    /// `wbuf` drains.
    draining: bool,
    /// Tear down now, pending output lost.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            mode: Mode::Sniffing,
            inbuf: Vec::new(),
            frames: FrameBuffer::new(),
            wbuf: WriteBuf::default(),
            arrival: Instant::now(),
            draining: false,
            dead: false,
        }
    }

    fn wants_write(&self) -> bool {
        !self.wbuf.is_empty()
    }

    fn finished(&self) -> bool {
        self.dead || (self.draining && self.wbuf.is_empty())
    }
}

// ---------------------------------------------------------------------
// The worker loop
// ---------------------------------------------------------------------

/// Run one event-loop worker until shutdown. Adopts connections from
/// `inbox`, multiplexes them through `poll`, and leaves only after
/// every pending reply is flushed (or the drain grace expires).
pub fn run_worker(inbox: &Inbox, engine: &Engine, shutdown: &AtomicBool, cfg: &LoopConfig) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];

    while !shutdown.load(Ordering::SeqCst) {
        for stream in inbox.drain() {
            conns.push(Conn::new(stream));
        }
        poll_once(&mut conns, &mut scratch, engine, shutdown, cfg, POLL_TICK);
        reap(&mut conns, engine);
    }

    // Drain phase: stop reading, flush what each client is owed (the
    // shutdown acknowledgement itself travels this path), give up on
    // sockets that stay unwritable past the grace period.
    let grace = Instant::now();
    for c in &mut conns {
        c.draining = true;
    }
    while conns.iter().any(|c| !c.finished()) && grace.elapsed() < DRAIN_GRACE {
        poll_once(&mut conns, &mut scratch, engine, shutdown, cfg, POLL_TICK);
        reap(&mut conns, engine);
    }
    for _ in &conns {
        engine.metrics().connection_closed();
    }
}

/// One poll tick: wait for readiness, then service every ready
/// connection (reads, request handling, writes).
fn poll_once(
    conns: &mut [Conn],
    scratch: &mut [u8],
    engine: &Engine,
    shutdown: &AtomicBool,
    cfg: &LoopConfig,
    tick_ms: i32,
) {
    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;

    let mut fds: Vec<sys::PollFd> = conns
        .iter()
        .map(|c| sys::PollFd {
            #[cfg(unix)]
            fd: c.stream.as_raw_fd(),
            #[cfg(not(unix))]
            fd: 0,
            events: if c.draining {
                sys::POLLOUT
            } else {
                sys::POLLIN | if c.wants_write() { sys::POLLOUT } else { 0 }
            },
            revents: 0,
        })
        .collect();
    if sys::poll_fds(&mut fds, tick_ms).is_err() {
        return;
    }

    for (conn, fd) in conns.iter_mut().zip(&fds) {
        if conn.dead {
            continue;
        }
        if fd.revents & (sys::POLLERR | sys::POLLNVAL) != 0 {
            conn.dead = true;
            continue;
        }
        if fd.revents & sys::POLLOUT != 0 && !conn.wbuf.flush(&mut conn.stream) {
            conn.dead = true;
            continue;
        }
        if fd.revents & (sys::POLLIN | sys::POLLHUP) != 0 && !conn.draining {
            service_readable(conn, scratch, engine, shutdown, cfg);
        }
        // Opportunistic flush of anything the handlers just queued; the
        // remainder waits for the next POLLOUT.
        if !conn.dead && conn.wants_write() && !conn.wbuf.flush(&mut conn.stream) {
            conn.dead = true;
        }
    }
}

/// Drop finished connections, updating the gauge.
fn reap(conns: &mut Vec<Conn>, engine: &Engine) {
    conns.retain(|c| {
        if c.finished() {
            engine.metrics().connection_closed();
            false
        } else {
            true
        }
    });
}

/// Read what the socket has (bounded per tick), then answer every
/// complete request that produced.
fn service_readable(
    conn: &mut Conn,
    scratch: &mut [u8],
    engine: &Engine,
    shutdown: &AtomicBool,
    cfg: &LoopConfig,
) {
    let had_backlog = backlog(conn) > 0;
    let mut budget = READ_BUDGET;
    let mut eof = false;
    while budget > 0 {
        let want = budget.min(scratch.len());
        match conn.stream.read(&mut scratch[..want]) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                match conn.mode {
                    Mode::Binary => conn.frames.push(&scratch[..n]),
                    _ => conn.inbuf.extend_from_slice(&scratch[..n]),
                }
                budget -= n;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    // The oldest unanswered bytes define the queue-time clock; only
    // reset it when the previous backlog was fully answered.
    if !had_backlog {
        conn.arrival = Instant::now();
    }

    process_backlog(conn, engine, shutdown, cfg, eof);
    if eof {
        conn.draining = true;
    }
}

/// Unanswered bytes currently buffered for this connection.
fn backlog(conn: &Conn) -> usize {
    conn.inbuf.len() + conn.frames.pending()
}

/// Parse and answer everything complete in the connection's buffers.
fn process_backlog(
    conn: &mut Conn,
    engine: &Engine,
    shutdown: &AtomicBool,
    cfg: &LoopConfig,
    eof: bool,
) {
    if conn.mode == Mode::Sniffing {
        sniff(conn, eof);
    }
    match conn.mode {
        Mode::Sniffing => {} // still waiting for the preamble
        Mode::Json => process_json(conn, engine, shutdown, cfg, eof),
        Mode::Binary => process_binary(conn, engine, shutdown, cfg, eof),
    }
}

/// Decide the connection's protocol from its first bytes. The binary
/// magic starts with `S`, which no JSON request line can: anything else
/// is JSON immediately; an `S` that turns out not to be the magic is a
/// typed error and the connection closes.
fn sniff(conn: &mut Conn, eof: bool) {
    let Some(&first) = conn.inbuf.first() else {
        return;
    };
    if first != MAGIC[0] {
        conn.mode = Mode::Json;
        return;
    }
    if conn.inbuf.len() < MAGIC.len() {
        if eof {
            conn.draining = true;
        }
        return;
    }
    if conn.inbuf[..MAGIC.len()] == MAGIC {
        conn.mode = Mode::Binary;
        // Acknowledge the negotiation with the same magic, then move
        // any bytes that followed the preamble into the frame buffer.
        conn.wbuf.push(&MAGIC);
        conn.frames.push(&conn.inbuf[MAGIC.len()..]);
        conn.inbuf.clear();
    } else {
        let e = ServeError::BadRequest {
            message: format!(
                "connection preamble {:?} is neither JSON nor the {:?} binary magic",
                &conn.inbuf[..MAGIC.len().min(conn.inbuf.len())],
                MAGIC
            ),
        };
        push_json_response(conn, &Response::from_error(&e));
        conn.draining = true;
    }
}

fn push_json_response(conn: &mut Conn, response: &Response) {
    let payload = serde_json::to_string(response).expect("response serializes");
    conn.wbuf.push(payload.as_bytes());
    conn.wbuf.push(b"\n");
}

/// Answer every complete JSON line in the buffer (and, at EOF, a final
/// unterminated line, matching the old reader-loop behavior).
fn process_json(
    conn: &mut Conn,
    engine: &Engine,
    shutdown: &AtomicBool,
    cfg: &LoopConfig,
    eof: bool,
) {
    loop {
        let line_end = conn.inbuf.iter().position(|&b| b == b'\n');
        let line = match line_end {
            Some(end) => {
                let line: Vec<u8> = conn.inbuf.drain(..=end).collect();
                line
            }
            None if eof && !conn.inbuf.is_empty() => std::mem::take(&mut conn.inbuf),
            None => {
                if conn.inbuf.len() > MAX_JSON_LINE {
                    let e = ServeError::BadRequest {
                        message: format!(
                            "request line exceeds {MAX_JSON_LINE} bytes without a newline"
                        ),
                    };
                    push_json_response(conn, &Response::from_error(&e));
                    conn.draining = true;
                }
                return;
            }
        };
        let line = String::from_utf8_lossy(&line);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(shed) = shed_check(conn, engine, cfg, false) {
            push_json_response(conn, &shed);
            continue;
        }
        let (response, stop) = handle_line(engine, line, conn.arrival, cfg.default_deadline_ms);
        push_json_response(conn, &response);
        engine.metrics().record_latency(conn.arrival.elapsed());
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            conn.draining = true;
            return;
        }
    }
}

/// Answer every complete binary frame in the buffer. Framing errors
/// (oversized or zero lengths) are answered typed and close the
/// connection — the stream cannot be resynchronized; body-level decode
/// errors are answered typed and the connection stays usable.
fn process_binary(
    conn: &mut Conn,
    engine: &Engine,
    shutdown: &AtomicBool,
    cfg: &LoopConfig,
    eof: bool,
) {
    loop {
        let (kind_byte, body) = match conn.frames.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                if eof && conn.frames.pending() > 0 {
                    // A torn tail: the peer closed mid-frame. Answer
                    // typed (the envelope may still be deliverable) and
                    // give up on the stream.
                    let e = ServeError::Malformed {
                        message: format!(
                            "connection closed inside a frame ({} bytes of it arrived)",
                            conn.frames.pending()
                        ),
                    };
                    engine.metrics().error();
                    conn.wbuf
                        .push(&framing::encode_response(&Response::from_error(&e)));
                    conn.draining = true;
                }
                return;
            }
            Err(e) => {
                engine.metrics().error();
                conn.wbuf
                    .push(&framing::encode_response(&Response::from_error(&e)));
                conn.draining = true;
                return;
            }
        };
        engine.metrics().request();
        engine.metrics().binary_request();
        if let Some(shed) = shed_check(conn, engine, cfg, true) {
            conn.wbuf.push(&framing::encode_response(&shed));
            continue;
        }
        let (response, stop) = match framing::decode_request(kind_byte, &body) {
            Ok(request) => handle_request(engine, &request, conn.arrival, cfg.default_deadline_ms),
            Err(e) => {
                engine.metrics().error();
                (Response::from_error(&e), false)
            }
        };
        conn.wbuf.push(&framing::encode_response(&response));
        engine.metrics().record_latency(conn.arrival.elapsed());
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            conn.draining = true;
            return;
        }
    }
}

/// Admission control: a connection that is not draining its replies
/// gets `shed` envelopes instead of compute until it catches up. The
/// envelope is a few dozen bytes, so shedding itself cannot blow the
/// buffer up further in any meaningful way.
fn shed_check(conn: &Conn, engine: &Engine, cfg: &LoopConfig, counted: bool) -> Option<Response> {
    if cfg.shed_buffer_bytes == 0 || conn.wbuf.pending() < cfg.shed_buffer_bytes {
        return None;
    }
    if !counted {
        engine.metrics().request();
    }
    engine.metrics().shed();
    Some(Response::from_error(&ServeError::Shed {
        pending_bytes: conn.wbuf.pending(),
        threshold_bytes: cfg.shed_buffer_bytes,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_buf_tracks_pending_and_compacts() {
        let mut wb = WriteBuf::default();
        assert!(wb.is_empty());
        wb.push(b"hello");
        wb.push(b" world");
        assert_eq!(wb.pending(), 11);
        // Simulate a partial write without a socket.
        wb.pos = 5;
        assert_eq!(wb.pending(), 6);
        wb.pos = wb.data.len();
        assert_eq!(wb.pending(), 0);
    }

    #[test]
    fn poll_on_no_fds_is_a_bounded_sleep() {
        let start = Instant::now();
        sys::poll_fds(&mut [], 20).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(10), "slept {elapsed:?}");
        assert!(elapsed < Duration::from_secs(2), "woke up {elapsed:?}");
    }
}
