//! The decision engine: one codepath shared by the `select` CLI, the
//! daemon, and tests.
//!
//! An [`Engine`] holds, per GPU, the fitted batch selector (for
//! explanations) and a [`ShardedOnlineSelector`] warm-started from it
//! (for streaming decisions and feedback). Read-only decisions
//! (`learn: false`) are answered lock-free from the selector's published
//! snapshot; observations and feedback go through its sharded write
//! side, so decisions scale with cores instead of serializing per GPU.
//! Decisions are fully deterministic: the simulated measurement noise is
//! seeded by a hash of the matrix's own feature bits, so the same matrix
//! always sees the same predicted times — which is what makes artifact
//! round-trips bit-identical and testable.
//!
//! The whole per-GPU model lives behind one `RwLock<Arc<ModelState>>`
//! slot: readers clone the `Arc` and drop the guard immediately, so a
//! hot-swap ([`Engine::swap`]) is one pointer store — in-flight requests
//! finish against the model they started with and the next request sees
//! the new one, with nothing dropped. When a journal is attached, every
//! state mutation (a `learn: true` observe, an applied feedback) is
//! serialized under one lifecycle lock and journaled in application
//! order before its reply is produced, which is what makes a restarted
//! daemon byte-identical to one that never died (see
//! [`crate::journal`] for the durable format, compaction, and the crash
//! harness).

use crate::artifact::{
    self, feature_pipeline_digest, registry_for_digest, ModelArtifact, ARTIFACT_VERSION,
};
use crate::error::ServeError;
use crate::journal::{self, CrashPoint, FeedbackJournal, JournalLine};
use crate::metrics::ServeMetrics;
use crate::protocol::{
    parse_format, parse_gpu, parse_workload, FeedbackReply, FormatTime, GpuStats, LifecycleStats,
    SelectBody, SelectReply, StatsReply, SwapReply, SyncReply,
};
use spsel_core::cache::KeyWriter;
use spsel_core::overhead::{
    amortized_best, amortized_best_workload, break_even_iterations, break_even_iterations_workload,
};
use spsel_core::semi::SemiSupervisedSelector;
use spsel_core::telemetry::ServingReport;
use spsel_core::{DecisionPhaseNs, ShardedOnlineSelector};
use spsel_features::{FeatureExtractor, FeatureId, FeatureVector, MatrixStats, NUM_FEATURES};
use spsel_gpusim::cost::ConversionCostModel;
use spsel_gpusim::{predict_times, predict_workload_times, Gpu};
use spsel_matrix::{io, CsrMatrix, Format, FormatRegistry, Workload};
use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

thread_local! {
    /// Per-thread single-pass feature extractor: its scratch (row-count
    /// table, column histogram, diagonal census stamps) is reused across
    /// requests, so steady-state featurization of a matrix allocates
    /// nothing beyond the matrix itself.
    static EXTRACTOR: RefCell<FeatureExtractor> = RefCell::new(FeatureExtractor::new());
}

/// Online-learning knobs for the serving engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// Embedded-space distance beyond which a streamed matrix opens a new
    /// online cluster.
    pub online_threshold: f64,
    /// Upper bound on online cluster growth.
    pub online_max_clusters: usize,
    /// Write shards per GPU for the online label table; 0 means one per
    /// parallel-runtime worker.
    pub write_shards: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            online_threshold: 0.5,
            online_max_clusters: 256,
            write_shards: 0,
        }
    }
}

/// Durability knobs for an attached journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalConfig {
    /// fsync every append before acknowledging it (checkpoint and
    /// rotation boundaries are always fsynced, regardless).
    pub fsync: bool,
    /// Compact the journal into a checkpoint once this many records have
    /// accumulated since the last one; 0 disables automatic compaction.
    pub checkpoint_every: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            fsync: false,
            checkpoint_every: 4096,
        }
    }
}

struct GpuState {
    gpu: Gpu,
    batch: SemiSupervisedSelector,
    online: ShardedOnlineSelector,
    training_records: usize,
    /// Per-workload cluster-label tables (training-cluster order), for
    /// every registered workload other than SpMV. SpMV labels live in
    /// the online selector itself; online clusters past the training
    /// set fall back to the SpMV decision.
    workload_labels: Vec<(Workload, Vec<Format>)>,
}

/// Everything that swaps atomically when a retrained artifact is
/// published: the per-GPU selectors, the conversion model, the format
/// registry the labels were drawn from, and the identity of the training
/// context they came from.
struct ModelState {
    states: Vec<GpuState>,
    conversion: ConversionCostModel,
    registry: FormatRegistry,
    artifact_version: u32,
    context_digest: String,
}

type SelectorSeed = (
    Gpu,
    SemiSupervisedSelector,
    usize,
    Vec<(Workload, Vec<Format>)>,
);

impl ModelState {
    fn build(
        selectors: Vec<SelectorSeed>,
        conversion: ConversionCostModel,
        registry: FormatRegistry,
        opts: &EngineOptions,
        shards: usize,
        context_digest: String,
    ) -> ModelState {
        let states = selectors
            .into_iter()
            .map(|(gpu, batch, training_records, workload_labels)| GpuState {
                gpu,
                online: ShardedOnlineSelector::from_batch(
                    &batch,
                    opts.online_threshold,
                    opts.online_max_clusters,
                    shards,
                ),
                batch,
                training_records,
                workload_labels,
            })
            .collect();
        ModelState {
            states,
            conversion,
            registry,
            artifact_version: ARTIFACT_VERSION,
            context_digest,
        }
    }

    fn from_artifact(
        artifact: &ModelArtifact,
        opts: &EngineOptions,
        shards: usize,
    ) -> Result<ModelState, ServeError> {
        let registry = registry_for_digest(&artifact.registry_digest).ok_or_else(|| {
            ServeError::RegistryDigestMismatch {
                found: artifact.registry_digest.clone(),
                expected: FormatRegistry::cusp_default().digest(),
            }
        })?;
        let mut pairs = Vec::new();
        for g in &artifact.gpus {
            let gpu = parse_gpu(&g.gpu)?;
            // Workload names the build does not know are skipped, not
            // fatal: the SpMV fallback still answers them correctly.
            let workload_labels = g
                .workload_labels
                .iter()
                .filter_map(|wl| {
                    Workload::parse(&wl.workload)
                        .ok()
                        .map(|w| (w, wl.labels.clone()))
                })
                .collect();
            pairs.push((gpu, g.selector.clone(), g.training_records, workload_labels));
        }
        Ok(ModelState::build(
            pairs,
            artifact.conversion,
            registry,
            opts,
            shards,
            artifact.context_digest.clone(),
        ))
    }

    fn state(&self, gpu: Gpu) -> Result<&GpuState, ServeError> {
        self.states
            .iter()
            .find(|s| s.gpu == gpu)
            .ok_or_else(|| ServeError::UnknownGpu {
                name: format!("{} (not in the loaded model)", gpu.name()),
            })
    }
}

/// Mutable lifecycle state, serialized under one lock: the open journal,
/// where the last checkpoint left off, and how far the tail has grown.
/// Lock ordering: the lifecycle lock is always taken *before* the model
/// slot's write lock, never while holding a model guard.
struct Lifecycle {
    journal: Option<FeedbackJournal>,
    checkpoint_seq: u64,
    records_since_checkpoint: u64,
    checkpoint_every: u64,
    last_swap_digest: Option<String>,
}

/// A loaded model ready to answer selection queries.
pub struct Engine {
    model: RwLock<Arc<ModelState>>,
    opts: EngineOptions,
    shards: usize,
    metrics: ServeMetrics,
    feature_digest: String,
    default_iterations: usize,
    lifecycle: Mutex<Lifecycle>,
    /// Fast-path gate: when no journal is attached, mutations skip the
    /// lifecycle lock entirely and serving behaves exactly as before.
    journal_active: AtomicBool,
    journal_replayed: AtomicU64,
    journal_appended: AtomicU64,
    journal_skipped: AtomicU64,
    observes_journaled: AtomicU64,
    observes_replayed: AtomicU64,
    torn_tails: AtomicU64,
    compactions: AtomicU64,
    swaps: AtomicU64,
    sync_records_sent: AtomicU64,
    sync_bytes_sent: AtomicU64,
    sync_records_applied: AtomicU64,
    last_seq: AtomicU64,
    applied_seq: AtomicU64,
}

impl Engine {
    /// Build from a validated artifact. Fails only if an entry names a
    /// GPU this build does not simulate.
    pub fn from_artifact(
        artifact: &ModelArtifact,
        opts: &EngineOptions,
    ) -> Result<Self, ServeError> {
        let shards = Self::shard_count(opts);
        let model = ModelState::from_artifact(artifact, opts, shards)?;
        Ok(Self::assemble(model, *opts, shards))
    }

    /// Build from freshly fitted selectors (the CLI's train-on-demand
    /// path); `training_records` rides along for stats. Always a
    /// CUSP-default model: the CLI path labels SpMV only.
    pub fn from_selectors(
        selectors: Vec<(Gpu, SemiSupervisedSelector, usize)>,
        conversion: ConversionCostModel,
        opts: &EngineOptions,
    ) -> Self {
        let shards = Self::shard_count(opts);
        let seeds = selectors
            .into_iter()
            .map(|(gpu, batch, n)| (gpu, batch, n, Vec::new()))
            .collect();
        let model = ModelState::build(
            seeds,
            conversion,
            FormatRegistry::cusp_default(),
            opts,
            shards,
            String::new(),
        );
        Self::assemble(model, *opts, shards)
    }

    fn shard_count(opts: &EngineOptions) -> usize {
        if opts.write_shards == 0 {
            rayon::current_num_threads()
        } else {
            opts.write_shards
        }
    }

    fn assemble(model: ModelState, opts: EngineOptions, shards: usize) -> Engine {
        Engine {
            model: RwLock::new(Arc::new(model)),
            opts,
            shards,
            metrics: ServeMetrics::new(),
            feature_digest: feature_pipeline_digest(),
            default_iterations: 1000,
            lifecycle: Mutex::new(Lifecycle {
                journal: None,
                checkpoint_seq: 0,
                records_since_checkpoint: 0,
                checkpoint_every: 0,
                last_swap_digest: None,
            }),
            journal_active: AtomicBool::new(false),
            journal_replayed: AtomicU64::new(0),
            journal_appended: AtomicU64::new(0),
            journal_skipped: AtomicU64::new(0),
            observes_journaled: AtomicU64::new(0),
            observes_replayed: AtomicU64::new(0),
            torn_tails: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            sync_records_sent: AtomicU64::new(0),
            sync_bytes_sent: AtomicU64::new(0),
            sync_records_applied: AtomicU64::new(0),
            last_seq: AtomicU64::new(0),
            applied_seq: AtomicU64::new(0),
        }
    }

    /// The current model. The slot's read guard is held only long enough
    /// to clone the `Arc`, so a request works entirely off the model it
    /// started with even if a swap publishes a new one mid-flight.
    fn model(&self) -> Arc<ModelState> {
        Arc::clone(&self.model.read().expect("model slot poisoned"))
    }

    fn lifecycle_lock(&self) -> Result<std::sync::MutexGuard<'_, Lifecycle>, ServeError> {
        self.lifecycle.lock().map_err(|_| ServeError::LockPoisoned {
            what: "engine lifecycle".to_string(),
        })
    }

    /// Restore durable online state and keep the journal open for
    /// appending, with default durability knobs. See
    /// [`Engine::attach_journal_with`].
    pub fn attach_journal(&mut self, path: impl AsRef<Path>) -> Result<(u64, u64), ServeError> {
        self.attach_journal_with(path, JournalConfig::default())
    }

    /// Restore durable online state: install the checkpoint (if one
    /// exists and matches this model's training context), replay the
    /// journal tail — observes and feedback past the checkpoint — onto
    /// the online selectors, then keep the journal open so every
    /// mutation from now on is journaled before it is acknowledged.
    /// Returns `(replayed, skipped)` feedback-record counts — skipped
    /// counts malformed lines and records that no longer apply (e.g. a
    /// cluster index past the warm-start), neither of which is fatal.
    /// Call before sharing the engine (`&mut self` enforces this).
    pub fn attach_journal_with(
        &mut self,
        path: impl AsRef<Path>,
        cfg: JournalConfig,
    ) -> Result<(u64, u64), ServeError> {
        let path = path.as_ref();
        let model = self.model();

        // 1. Checkpoint, if any: a compacted fold of everything up to
        //    its `last_seq`. One from a different training context is
        //    ignored (the artifact changed under it) and the daemon
        //    starts from the artifact's warm start instead.
        let mut checkpoint_seq = 0u64;
        match journal::load_checkpoint(&journal::checkpoint_path(path)) {
            Ok(Some(ckpt)) if ckpt.context_digest == model.context_digest => {
                install_checkpoint(&model, &ckpt);
                checkpoint_seq = ckpt.last_seq;
            }
            Ok(_) => {}
            // Unreadable checkpoints should be impossible (they are
            // published by atomic rename), but a corrupt disk is not a
            // reason to refuse to serve: fall back to the warm start.
            Err(_) => {
                self.torn_tails.fetch_add(1, Ordering::Relaxed);
            }
        }

        // 2. The tail: every record past the checkpoint, in order.
        let scan = journal::read_journal(path)?;
        self.torn_tails.fetch_add(scan.malformed, Ordering::Relaxed);
        let (observes, replayed, apply_skipped) =
            replay_entries(&model, &scan.entries, checkpoint_seq);
        let skipped = scan.malformed + apply_skipped;
        self.observes_replayed.store(observes, Ordering::Relaxed);
        self.journal_replayed.store(replayed, Ordering::Relaxed);
        self.journal_skipped.store(skipped, Ordering::Relaxed);

        // 3. Reopen for appending; numbering continues above both the
        //    tail and the checkpoint.
        let journal = FeedbackJournal::open_with(path, cfg.fsync)?;
        journal.ensure_seq_above(checkpoint_seq);
        self.last_seq.store(journal.last_seq(), Ordering::Relaxed);
        self.applied_seq
            .store(journal.last_seq(), Ordering::Relaxed);
        let mut lc = self.lifecycle_lock()?;
        lc.journal = Some(journal);
        lc.checkpoint_seq = checkpoint_seq;
        lc.records_since_checkpoint = observes + replayed;
        lc.checkpoint_every = cfg.checkpoint_every;
        drop(lc);
        self.journal_active.store(true, Ordering::Release);
        Ok((replayed, skipped))
    }

    /// GPUs this engine can decide for, in artifact order.
    pub fn gpus(&self) -> Vec<Gpu> {
        self.model().states.iter().map(|s| s.gpu).collect()
    }

    /// The engine's serving counters (shared with the request loop).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Run `f` against the batch selector backing one GPU (for
    /// explanations); `None` when the model does not know the GPU.
    pub fn with_batch_selector<R>(
        &self,
        gpu: Gpu,
        f: impl FnOnce(&SemiSupervisedSelector) -> R,
    ) -> Option<R> {
        let model = self.model();
        model
            .states
            .iter()
            .find(|s| s.gpu == gpu)
            .map(|s| f(&s.batch))
    }

    /// Resolve a request body to `(features, stats)`: read and
    /// featurize the matrix file, or reconstruct stats from an inline
    /// Table 1 vector.
    pub fn resolve_features(
        &self,
        body: &SelectBody,
    ) -> Result<(FeatureVector, MatrixStats), ServeError> {
        let (fv, stats, _) = self.resolve_features_timed(body)?;
        Ok((fv, stats))
    }

    /// [`Self::resolve_features`] plus the nanoseconds spent in feature
    /// extraction proper (the single-pass walk over the CSR form — file
    /// IO and format conversion are excluded; 0 for inline vectors).
    fn resolve_features_timed(
        &self,
        body: &SelectBody,
    ) -> Result<(FeatureVector, MatrixStats, u64), ServeError> {
        if let Some(path) = &body.matrix {
            let coo = io::read_matrix_market_file(path).map_err(|e| ServeError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            let csr = CsrMatrix::from(&coo);
            let start = Instant::now();
            let stats = EXTRACTOR.with(|ex| ex.borrow_mut().stats(&csr));
            let fv = FeatureVector::from_stats(&stats);
            let extract_ns = start.elapsed().as_nanos() as u64;
            return Ok((fv, stats, extract_ns));
        }
        if let Some(values) = &body.features {
            if values.len() != NUM_FEATURES {
                return Err(ServeError::FeatureDim {
                    got: values.len(),
                    expected: NUM_FEATURES,
                });
            }
            let mut raw = [0.0; NUM_FEATURES];
            raw.copy_from_slice(values);
            let fv = FeatureVector::from_raw(raw);
            let stats = stats_from_features(&fv);
            return Ok((fv, stats, 0));
        }
        Err(ServeError::BadRequest {
            message: "select needs `matrix` (a path) or `features` (21 values)".into(),
        })
    }

    /// One online decision, journaled when it mutates durable state.
    ///
    /// `learn: false` never touches a write lock: the whole view comes
    /// from one immutable snapshot of the model the request started
    /// with. `learn: true` with a journal attached serializes under the
    /// lifecycle lock so the journal's append order equals the
    /// application order (observe replay is order-dependent), and the
    /// observe is durable before the reply exists.
    fn decide(
        &self,
        model: &Arc<ModelState>,
        gpu: Gpu,
        fv: &FeatureVector,
        learn: bool,
    ) -> Result<(spsel_core::OnlineView, DecisionPhaseNs), ServeError> {
        if !(learn && self.journal_active.load(Ordering::Acquire)) {
            let state = model.state(gpu)?;
            return Ok(state.online.decide_phased(fv, learn));
        }
        let mut lc = self.lifecycle_lock()?;
        // Re-resolve under the lock: a swap that landed between the
        // caller's model read and here must not have its rebased state
        // bypassed by an observe applied to the superseded model.
        let model = self.model();
        let state = model.state(gpu)?;
        let (view, phases) = state.online.decide_phased(fv, true);
        if let Some(journal) = lc.journal.as_ref() {
            let seq = journal.append_observe(gpu.name(), fv.as_slice())?;
            self.observes_journaled.fetch_add(1, Ordering::Relaxed);
            self.last_seq.store(seq, Ordering::Relaxed);
            self.applied_seq.store(seq, Ordering::Relaxed);
            lc.records_since_checkpoint += 1;
            self.maybe_compact(&mut lc)?;
        }
        Ok((view, phases))
    }

    /// Answer one selection query end to end. This is the single decision
    /// codepath: CLI, daemon, and batch requests all land here.
    pub fn select(&self, body: &SelectBody) -> Result<SelectReply, ServeError> {
        let gpu = parse_gpu(&body.gpu)?;
        let workload = parse_workload(&body.workload)?;
        let model = self.model();
        model.state(gpu)?;
        let (fv, stats, extract_ns) = self.resolve_features_timed(body)?;
        let iterations = body.iterations.unwrap_or(self.default_iterations);
        let learn = body.learn.unwrap_or(true);

        let (view, phases) = self.decide(&model, gpu, &fv, learn)?;
        let decision = view.decision;
        self.metrics
            .select(decision.new_cluster, decision.benchmark_requested);
        if !learn {
            self.metrics.decision_phases(extract_ns, phases);
        }

        // The SpMV path is the original four-format codepath, untouched:
        // a CUSP-default model answers SpMV requests byte-identically to
        // builds that predate workloads. Other workloads (and wider
        // registries) go through the workload-generic tables.
        let legacy_spmv = workload == Workload::SpMv
            && model.registry.digest() == FormatRegistry::cusp_default().digest();
        let (format, predicted, amortized, break_even) = if legacy_spmv {
            let times = predict_times(&gpu.spec(), &stats, matrix_id(&fv));
            let amortized = amortized_best(&times, &model.conversion, iterations);
            let break_even = break_even_iterations(&times, &model.conversion, amortized.format);
            let predicted = Format::ALL
                .into_iter()
                .map(|f| {
                    let t = times.get(f);
                    FormatTime {
                        format: f.name().to_string(),
                        us: t.is_finite().then_some(t),
                    }
                })
                .collect();
            (decision.format, predicted, amortized, break_even)
        } else {
            let state = model.state(gpu)?;
            // Non-SpMV format: the cluster's per-workload label when the
            // cluster was seen in training; the SpMV decision otherwise
            // (online clusters opened after training have no table row).
            let format = if workload == Workload::SpMv {
                decision.format
            } else {
                state
                    .workload_labels
                    .iter()
                    .find(|(w, _)| *w == workload)
                    .and_then(|(_, labels)| labels.get(decision.cluster))
                    .copied()
                    .unwrap_or(decision.format)
            };
            let times = predict_workload_times(
                &gpu.spec(),
                &stats,
                matrix_id(&fv),
                &model.registry,
                workload,
            );
            let formats = model.registry.formats();
            let amortized =
                amortized_best_workload(&times, &formats, &model.conversion, iterations);
            let break_even =
                break_even_iterations_workload(&times, &model.conversion, amortized.format);
            let predicted = formats
                .iter()
                .map(|&f| {
                    let t = times.get(f);
                    FormatTime {
                        format: f.name().to_string(),
                        us: t.is_finite().then_some(t),
                    }
                })
                .collect();
            (format, predicted, amortized, break_even)
        };

        Ok(SelectReply {
            gpu: gpu.name().to_string(),
            workload: workload.name(),
            format: format.name().to_string(),
            cluster: decision.cluster,
            cluster_size: view.cluster_size,
            centroid_distance: view.distance,
            new_cluster: decision.new_cluster,
            benchmark_requested: decision.benchmark_requested,
            predicted,
            amortized_format: amortized.format.name().to_string(),
            amortized_total_us: amortized.total_us,
            csr_total_us: amortized.csr_total_us,
            break_even_iterations: break_even,
            iterations,
        })
    }

    /// Apply a measured label to an online cluster (the feedback loop),
    /// counting it and journaling it when a journal is attached. Without
    /// a journal only the cluster's own shard lock is taken — feedback
    /// never blocks reads, and never blocks observations landing in
    /// other shards. With a journal, application and append are one
    /// critical section so journal order equals application order.
    pub fn feedback(
        &self,
        gpu: &str,
        cluster: usize,
        best: &str,
    ) -> Result<FeedbackReply, ServeError> {
        if !self.journal_active.load(Ordering::Acquire) {
            let reply = apply_feedback_to(&self.model(), gpu, cluster, best)?;
            self.metrics.feedback();
            return Ok(reply);
        }
        let mut lc = self.lifecycle_lock()?;
        let reply = apply_feedback_to(&self.model(), gpu, cluster, best)?;
        self.metrics.feedback();
        if let Some(journal) = lc.journal.as_ref() {
            let seq = journal.append_feedback(&reply.gpu, reply.cluster, &reply.format)?;
            self.journal_appended.fetch_add(1, Ordering::Relaxed);
            self.last_seq.store(seq, Ordering::Relaxed);
            self.applied_seq.store(seq, Ordering::Relaxed);
            lc.records_since_checkpoint += 1;
            self.maybe_compact(&mut lc)?;
        }
        Ok(reply)
    }

    fn maybe_compact(&self, lc: &mut Lifecycle) -> Result<(), ServeError> {
        if lc.checkpoint_every > 0 && lc.records_since_checkpoint >= lc.checkpoint_every {
            self.compact_locked(lc, CrashPoint::None)?;
        }
        Ok(())
    }

    /// Compact the journal now: fold the full online state into a
    /// checkpoint (temp-file-then-atomic-rename, fsynced), then rotate
    /// the journal down to a header. Returns `true` when the journal was
    /// rotated. Errors when no journal is attached.
    pub fn compact(&self) -> Result<bool, ServeError> {
        let mut lc = self.lifecycle_lock()?;
        self.compact_locked(&mut lc, CrashPoint::None)
    }

    /// [`Engine::compact`] with a deterministic kill switch, for the
    /// crash-fault harness: the compaction stops dead at `crash`,
    /// exactly as if the process had been `kill -9`ed there, and returns
    /// `false`. Every stop point leaves the pair (checkpoint, journal)
    /// in a state a restart recovers from.
    pub fn compact_with_crash(&self, crash: CrashPoint) -> Result<bool, ServeError> {
        let mut lc = self.lifecycle_lock()?;
        self.compact_locked(&mut lc, crash)
    }

    fn compact_locked(&self, lc: &mut Lifecycle, crash: CrashPoint) -> Result<bool, ServeError> {
        let Some(journal) = lc.journal.as_ref() else {
            return Err(ServeError::BadRequest {
                message: "no journal attached; nothing to compact".into(),
            });
        };
        // The checkpoint must not claim records the disk does not hold.
        journal.sync()?;
        let model = self.model();
        let last_seq = journal.last_seq();
        let checkpoint = journal::Checkpoint {
            checkpoint_version: journal::CHECKPOINT_VERSION,
            context_digest: model.context_digest.clone(),
            last_seq,
            gpus: model
                .states
                .iter()
                .map(|s| journal::CheckpointGpu {
                    gpu: s.gpu.name().to_string(),
                    state: s.online.export_state(),
                })
                .collect(),
        };
        let path = journal::checkpoint_path(journal.path());
        if !journal::write_checkpoint(&path, &checkpoint, crash)? {
            return Ok(false);
        }
        // Never rotate the tail away unless the published checkpoint
        // reads back.
        journal::load_checkpoint(&path)?;
        if crash == CrashPoint::AfterCheckpointRename {
            return Ok(false);
        }
        if !journal.rotate(last_seq, crash)? {
            return Ok(false);
        }
        lc.checkpoint_seq = last_seq;
        lc.records_since_checkpoint = 0;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Zero-downtime hot-swap: load and digest-validate a retrained
    /// artifact, warm-start a fresh model from it, rebase the journal
    /// tail (every record past the checkpoint) onto it, and publish it
    /// atomically. In-flight requests finish against the old model;
    /// nothing is dropped or shed. When a journal is attached the swap
    /// ends with a compaction, so the durable state on disk carries the
    /// new training context and a restart resumes from the new artifact.
    pub fn swap(&self, path: &str, expected_digest: Option<&str>) -> Result<SwapReply, ServeError> {
        let artifact = artifact::load(path)?;
        if let Some(expected) = expected_digest {
            if expected != artifact.context_digest {
                return Err(ServeError::ContextDigestMismatch {
                    found: artifact.context_digest.clone(),
                    expected: expected.to_string(),
                });
            }
        }
        let mut lc = self.lifecycle_lock()?;
        let next = Arc::new(ModelState::from_artifact(
            &artifact,
            &self.opts,
            self.shards,
        )?);
        let mut rebased = 0u64;
        if let Some(journal) = lc.journal.as_ref() {
            journal.sync()?;
            let scan = journal::read_journal(journal.path())?;
            let (observes, feedback, _skipped) =
                replay_entries(&next, &scan.entries, lc.checkpoint_seq);
            rebased = observes + feedback;
        }
        let previous_digest = self.model().context_digest.clone();
        *self.model.write().expect("model slot poisoned") = Arc::clone(&next);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        lc.last_swap_digest = Some(next.context_digest.clone());
        if lc.journal.is_some() {
            self.compact_locked(&mut lc, CrashPoint::None)?;
        }
        Ok(SwapReply {
            artifact_version: next.artifact_version,
            context_digest: next.context_digest.clone(),
            previous_digest,
            gpus: next.states.len(),
            rebased,
            checkpoint_seq: lc.checkpoint_seq,
        })
    }

    /// Replica catch-up, leader side: everything a follower at
    /// `from_seq` is missing — the checkpoint (when the follower is
    /// behind it) plus the journal records past `max(from_seq,
    /// checkpoint)`, re-serialized as canonical v2 lines in sequence
    /// order. Requires an attached journal.
    pub fn sync(&self, from_seq: u64) -> Result<SyncReply, ServeError> {
        let lc = self.lifecycle_lock()?;
        let Some(journal) = lc.journal.as_ref() else {
            return Err(ServeError::BadRequest {
                message: "sync requires a journal-backed leader (start it with --journal)".into(),
            });
        };
        journal.sync()?;
        let model = self.model();
        let mut checkpoint = None;
        if from_seq < lc.checkpoint_seq {
            let path = journal::checkpoint_path(journal.path());
            checkpoint = Some(std::fs::read_to_string(&path).map_err(|e| ServeError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?);
        }
        let floor = lc.checkpoint_seq.max(from_seq);
        let scan = journal::read_journal(journal.path())?;
        let mut records = Vec::new();
        for entry in &scan.entries {
            if entry.seq() > floor {
                records.push(
                    serde_json::to_string(entry).map_err(|e| ServeError::Malformed {
                        message: e.to_string(),
                    })?,
                );
            }
        }
        let bytes = records.iter().map(|r| r.len() as u64).sum::<u64>()
            + checkpoint.as_ref().map_or(0, |c| c.len() as u64);
        self.sync_records_sent
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        self.sync_bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        Ok(SyncReply {
            last_seq: journal.last_seq(),
            checkpoint_seq: lc.checkpoint_seq,
            context_digest: model.context_digest.clone(),
            checkpoint,
            records,
        })
    }

    /// Replica catch-up, follower side: install the checkpoint (if the
    /// reply carries one) and apply every record above what this engine
    /// has already applied, in order and without re-journaling. Returns
    /// the number of records applied. Rejects state from a different
    /// training context — a replica must serve the same artifact as its
    /// leader.
    pub fn apply_sync(&self, reply: &SyncReply) -> Result<u64, ServeError> {
        let mut lc = self.lifecycle_lock()?;
        let model = self.model();
        if reply.context_digest != model.context_digest {
            return Err(ServeError::ContextDigestMismatch {
                found: reply.context_digest.clone(),
                expected: model.context_digest.clone(),
            });
        }
        let mut applied = 0u64;
        if let Some(raw) = &reply.checkpoint {
            let ckpt = journal::parse_checkpoint(raw)?;
            if ckpt.context_digest != model.context_digest {
                return Err(ServeError::ContextDigestMismatch {
                    found: ckpt.context_digest.clone(),
                    expected: model.context_digest.clone(),
                });
            }
            install_checkpoint(&model, &ckpt);
            self.applied_seq.fetch_max(ckpt.last_seq, Ordering::Relaxed);
            lc.checkpoint_seq = lc.checkpoint_seq.max(ckpt.last_seq);
        }
        for line in &reply.records {
            let Some(entry) = journal::parse_line(line, 0) else {
                self.torn_tails.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let seq = entry.seq();
            if seq <= self.applied_seq.load(Ordering::Relaxed) {
                continue;
            }
            let ok = match &entry {
                JournalLine::Observe { gpu, features, .. } => {
                    apply_observe_to(&model, gpu, features).is_ok()
                }
                JournalLine::Feedback {
                    gpu, cluster, best, ..
                } => apply_feedback_to(&model, gpu, *cluster, best).is_ok(),
                JournalLine::Header { .. } => false,
            };
            if ok {
                applied += 1;
            }
            self.applied_seq.fetch_max(seq, Ordering::Relaxed);
        }
        self.sync_records_applied
            .fetch_add(applied, Ordering::Relaxed);
        self.last_seq.fetch_max(reply.last_seq, Ordering::Relaxed);
        Ok(applied)
    }

    /// The highest sequence number this engine has applied (its own
    /// appends, startup replay, or follower catch-up) — what a follower
    /// passes as the next `Sync.from_seq`.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::Relaxed)
    }

    /// The full serving report: wire counters from [`ServeMetrics`] plus
    /// the engine-level online-contention, journal, and lifecycle
    /// counters.
    pub fn serving_report(&self) -> ServingReport {
        let mut report = self.metrics.report();
        let model = self.model();
        for s in &model.states {
            let c = s.online.contention().report();
            report.read_decisions += c.read_decisions;
            report.write_decisions += c.write_decisions;
            report.write_lock_acquisitions += c.write_lock_acquisitions;
            report.write_lock_wait_us += c.write_lock_wait_us;
            report.snapshot_swaps += c.snapshot_swaps;
        }
        report.journal_replayed = self.journal_replayed.load(Ordering::Relaxed);
        report.journal_appended = self.journal_appended.load(Ordering::Relaxed);
        report.journal_skipped = self.journal_skipped.load(Ordering::Relaxed);
        report.observes_journaled = self.observes_journaled.load(Ordering::Relaxed);
        report.observes_replayed = self.observes_replayed.load(Ordering::Relaxed);
        report.torn_tails = self.torn_tails.load(Ordering::Relaxed);
        report.compactions = self.compactions.load(Ordering::Relaxed);
        report.swaps = self.swaps.load(Ordering::Relaxed);
        report.sync_records_sent = self.sync_records_sent.load(Ordering::Relaxed);
        report.sync_bytes_sent = self.sync_bytes_sent.load(Ordering::Relaxed);
        report.sync_records_applied = self.sync_records_applied.load(Ordering::Relaxed);
        report
    }

    /// Snapshot the serving counters, per-GPU online state, and the
    /// model lifecycle (journal length, checkpoint position, last swap).
    pub fn stats(&self) -> StatsReply {
        self.metrics.stats();
        let model = self.model();
        let gpus = model
            .states
            .iter()
            .map(|s| {
                let snap = s.online.snapshot();
                let contention = s.online.contention().report();
                GpuStats {
                    gpu: s.gpu.name().to_string(),
                    clusters: snap.n_clusters(),
                    unlabeled_clusters: snap.unlabeled_clusters(),
                    staleness: snap.staleness(),
                    training_records: s.training_records,
                    shards: s.online.shards(),
                    snapshot_version: snap.version(),
                    shard_imbalance: contention.shard_imbalance(),
                    shard_feedbacks: contention.shard_feedbacks,
                }
            })
            .collect();
        let lifecycle = match self.lifecycle.lock() {
            Ok(lc) => LifecycleStats {
                journal_attached: lc.journal.is_some(),
                last_seq: self.last_seq.load(Ordering::Relaxed),
                applied_seq: self.applied_seq.load(Ordering::Relaxed),
                checkpoint_seq: lc.checkpoint_seq,
                records_since_checkpoint: lc.records_since_checkpoint,
                journal_bytes: lc
                    .journal
                    .as_ref()
                    .and_then(|j| std::fs::metadata(j.path()).ok())
                    .map_or(0, |m| m.len()),
                context_digest: model.context_digest.clone(),
                last_swap_digest: lc.last_swap_digest.clone(),
                swaps: self.swaps.load(Ordering::Relaxed),
                compactions: self.compactions.load(Ordering::Relaxed),
            },
            // A poisoned lifecycle must not take stats down with it.
            Err(_) => LifecycleStats {
                journal_attached: self.journal_active.load(Ordering::Relaxed),
                last_seq: self.last_seq.load(Ordering::Relaxed),
                applied_seq: self.applied_seq.load(Ordering::Relaxed),
                checkpoint_seq: 0,
                records_since_checkpoint: 0,
                journal_bytes: 0,
                context_digest: model.context_digest.clone(),
                last_swap_digest: None,
                swaps: self.swaps.load(Ordering::Relaxed),
                compactions: self.compactions.load(Ordering::Relaxed),
            },
        };
        StatsReply {
            artifact_version: model.artifact_version,
            feature_digest: self.feature_digest.clone(),
            gpus,
            serving: self.serving_report(),
            lifecycle,
        }
    }
}

/// The label-application core of the feedback loop, shared by wire
/// requests, journal replay, swap rebasing, and follower catch-up.
/// Validates the cluster index so a bad client (or a stale journal
/// record) gets a typed error instead of an out-of-range panic. Touches
/// neither metrics nor the journal.
fn apply_feedback_to(
    model: &ModelState,
    gpu: &str,
    cluster: usize,
    best: &str,
) -> Result<FeedbackReply, ServeError> {
    let gpu = parse_gpu(gpu)?;
    let state = model.state(gpu)?;
    let format = parse_format(best)?;
    let view = state
        .online
        .report_benchmark(cluster, format)
        .ok_or_else(|| ServeError::UnknownCluster {
            gpu: gpu.name().to_string(),
            cluster,
            clusters: state.online.n_clusters(),
        })?;
    Ok(FeedbackReply {
        gpu: gpu.name().to_string(),
        cluster,
        format: format.name().to_string(),
        unlabeled_clusters: view.unlabeled_clusters,
        staleness: view.staleness,
    })
}

/// Re-apply one journaled observation: the raw feature values go through
/// the same `decide(learn: true)` path the original request took, so
/// centroid motion and cluster creation replay bit-exactly.
fn apply_observe_to(model: &ModelState, gpu: &str, features: &[f64]) -> Result<(), ServeError> {
    let gpu = parse_gpu(gpu)?;
    let state = model.state(gpu)?;
    if features.len() != NUM_FEATURES {
        return Err(ServeError::FeatureDim {
            got: features.len(),
            expected: NUM_FEATURES,
        });
    }
    let mut raw = [0.0; NUM_FEATURES];
    raw.copy_from_slice(features);
    state.online.decide(&FeatureVector::from_raw(raw), true);
    Ok(())
}

/// Replay journal entries with `seq > after_seq` onto `model`, in file
/// order. Returns `(observes_applied, feedback_applied, skipped)`;
/// records that no longer apply are skipped, never fatal.
fn replay_entries(model: &ModelState, entries: &[JournalLine], after_seq: u64) -> (u64, u64, u64) {
    let (mut observes, mut feedback, mut skipped) = (0u64, 0u64, 0u64);
    for entry in entries {
        match entry {
            JournalLine::Observe { seq, gpu, features } if *seq > after_seq => {
                match apply_observe_to(model, gpu, features) {
                    Ok(()) => observes += 1,
                    Err(_) => skipped += 1,
                }
            }
            JournalLine::Feedback {
                seq,
                gpu,
                cluster,
                best,
            } if *seq > after_seq => match apply_feedback_to(model, gpu, *cluster, best) {
                Ok(_) => feedback += 1,
                Err(_) => skipped += 1,
            },
            _ => {}
        }
    }
    (observes, feedback, skipped)
}

/// Install a checkpoint's per-GPU state into a model (GPUs are matched
/// by name; a checkpoint entry for a GPU the model lacks is ignored).
fn install_checkpoint(model: &ModelState, checkpoint: &journal::Checkpoint) {
    for g in &checkpoint.gpus {
        if let Some(state) = model
            .states
            .iter()
            .find(|s| s.gpu.name().eq_ignore_ascii_case(&g.gpu))
        {
            state.online.install_state(&g.state);
        }
    }
}

/// Deterministic measurement-noise seed for a matrix: an FNV-1a hash of
/// its feature bits. The same matrix (by features) always sees the same
/// simulated times, on the CLI, the daemon, and across artifact reloads.
pub fn matrix_id(fv: &FeatureVector) -> u64 {
    let mut w = KeyWriter::new();
    for &v in fv.as_slice() {
        w.f64(v);
    }
    w.finish()
}

/// Reconstruct the raw [`MatrixStats`] the GPU performance model needs
/// from a Table 1 feature vector. Every stats field is either a feature
/// itself or derivable from one (`hyb_ell_nnz = nnz - hyb_coo`,
/// `hyb_ell_width = hyb_ell_size / nrows`), which is what makes the
/// inline-features request path possible without shipping the matrix.
pub fn stats_from_features(fv: &FeatureVector) -> MatrixStats {
    let count = |id: FeatureId| fv.get(id).max(0.0).round() as usize;
    let nrows = count(FeatureId::NRows);
    let nnz = count(FeatureId::Nnz);
    let hyb_ell_size = count(FeatureId::HybEllSize);
    let hyb_coo_nnz = count(FeatureId::HybCoo);
    MatrixStats {
        nrows,
        ncols: count(FeatureId::NCols),
        nnz,
        nnz_min: count(FeatureId::NnzMin),
        nnz_max: count(FeatureId::NnzMax),
        nnz_mean: fv.get(FeatureId::NnzMu),
        nnz_std: fv.get(FeatureId::NnzSig),
        sig_lower: fv.get(FeatureId::SigLower),
        sig_higher: fv.get(FeatureId::SigHigher),
        csr_max: count(FeatureId::CsrMax),
        hyb_ell_width: hyb_ell_size.checked_div(nrows).unwrap_or(0),
        hyb_ell_size,
        hyb_ell_nnz: nnz.saturating_sub(hyb_coo_nnz),
        hyb_coo_nnz,
        diagonals: count(FeatureId::Diagonals),
        dia_size: count(FeatureId::DiaSize),
        ell_size: count(FeatureId::EllSize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_matrix::gen;

    #[test]
    fn stats_survive_the_feature_round_trip() {
        // matrix -> stats -> features -> stats must reproduce every field
        // the GPU model reads, so inline-feature requests decide exactly
        // like matrix-path requests.
        for seed in 0..5u64 {
            let csr = CsrMatrix::from(&gen::power_law(200, 200, 2, 2.3, 80, seed));
            let stats = MatrixStats::from_csr(&csr);
            let fv = FeatureVector::from_stats(&stats);
            let back = stats_from_features(&fv);
            assert_eq!(back, stats);
            assert_eq!(matrix_id(&fv), matrix_id(&FeatureVector::from_stats(&back)));
        }
    }

    #[test]
    fn matrix_id_distinguishes_matrices() {
        let a = FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(10, 0)));
        let b = FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(11, 0)));
        assert_ne!(matrix_id(&a), matrix_id(&b));
        assert_eq!(matrix_id(&a), matrix_id(&a));
    }
}
