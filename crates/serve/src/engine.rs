//! The decision engine: one codepath shared by the `select` CLI, the
//! daemon, and tests.
//!
//! An [`Engine`] holds, per GPU, the fitted batch selector (for
//! explanations) and a [`ShardedOnlineSelector`] warm-started from it
//! (for streaming decisions and feedback). Read-only decisions
//! (`learn: false`) are answered lock-free from the selector's published
//! snapshot; observations and feedback go through its sharded write
//! side, so decisions scale with cores instead of serializing per GPU.
//! Decisions are fully deterministic: the simulated measurement noise is
//! seeded by a hash of the matrix's own feature bits, so the same matrix
//! always sees the same predicted times — which is what makes artifact
//! round-trips bit-identical and testable.

use crate::artifact::{feature_pipeline_digest, ModelArtifact, ARTIFACT_VERSION};
use crate::error::ServeError;
use crate::journal::{self, FeedbackJournal, JournalRecord};
use crate::metrics::ServeMetrics;
use crate::protocol::{
    parse_format, parse_gpu, FormatTime, GpuStats, SelectBody, SelectReply, StatsReply,
};
use spsel_core::cache::KeyWriter;
use spsel_core::overhead::{amortized_best, break_even_iterations};
use spsel_core::semi::SemiSupervisedSelector;
use spsel_core::telemetry::ServingReport;
use spsel_core::ShardedOnlineSelector;
use spsel_features::{FeatureId, FeatureVector, MatrixStats, NUM_FEATURES};
use spsel_gpusim::cost::ConversionCostModel;
use spsel_gpusim::{predict_times, Gpu};
use spsel_matrix::{io, CsrMatrix, Format};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Online-learning knobs for the serving engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// Embedded-space distance beyond which a streamed matrix opens a new
    /// online cluster.
    pub online_threshold: f64,
    /// Upper bound on online cluster growth.
    pub online_max_clusters: usize,
    /// Write shards per GPU for the online label table; 0 means one per
    /// parallel-runtime worker.
    pub write_shards: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            online_threshold: 0.5,
            online_max_clusters: 256,
            write_shards: 0,
        }
    }
}

struct GpuState {
    gpu: Gpu,
    batch: SemiSupervisedSelector,
    online: ShardedOnlineSelector,
    training_records: usize,
}

/// A loaded model ready to answer selection queries.
pub struct Engine {
    states: Vec<GpuState>,
    conversion: ConversionCostModel,
    metrics: ServeMetrics,
    artifact_version: u32,
    feature_digest: String,
    default_iterations: usize,
    journal: Option<FeedbackJournal>,
    journal_replayed: AtomicU64,
    journal_appended: AtomicU64,
    journal_skipped: AtomicU64,
}

impl Engine {
    /// Build from a validated artifact. Fails only if an entry names a
    /// GPU this build does not simulate.
    pub fn from_artifact(
        artifact: &ModelArtifact,
        opts: &EngineOptions,
    ) -> Result<Self, ServeError> {
        let mut pairs = Vec::new();
        for g in &artifact.gpus {
            let gpu = parse_gpu(&g.gpu)?;
            pairs.push((gpu, g.selector.clone(), g.training_records));
        }
        Ok(Self::build(pairs, artifact.conversion, opts))
    }

    /// Build from freshly fitted selectors (the CLI's train-on-demand
    /// path); `training_records` rides along for stats.
    pub fn from_selectors(
        selectors: Vec<(Gpu, SemiSupervisedSelector, usize)>,
        conversion: ConversionCostModel,
        opts: &EngineOptions,
    ) -> Self {
        Self::build(selectors, conversion, opts)
    }

    fn build(
        selectors: Vec<(Gpu, SemiSupervisedSelector, usize)>,
        conversion: ConversionCostModel,
        opts: &EngineOptions,
    ) -> Self {
        let shards = if opts.write_shards == 0 {
            rayon::current_num_threads()
        } else {
            opts.write_shards
        };
        let states = selectors
            .into_iter()
            .map(|(gpu, batch, training_records)| GpuState {
                gpu,
                online: ShardedOnlineSelector::from_batch(
                    &batch,
                    opts.online_threshold,
                    opts.online_max_clusters,
                    shards,
                ),
                batch,
                training_records,
            })
            .collect();
        Engine {
            states,
            conversion,
            metrics: ServeMetrics::new(),
            artifact_version: ARTIFACT_VERSION,
            feature_digest: feature_pipeline_digest(),
            default_iterations: 1000,
            journal: None,
            journal_replayed: AtomicU64::new(0),
            journal_appended: AtomicU64::new(0),
            journal_skipped: AtomicU64::new(0),
        }
    }

    /// Replay a feedback journal into the freshly warm-started online
    /// state, then keep the file open for appending: every feedback
    /// applied from now on is journaled. Returns `(replayed, skipped)` —
    /// skipped counts malformed lines and records that no longer apply
    /// (e.g. a cluster index past the warm-start), neither of which is
    /// fatal. Call before sharing the engine (`&mut self` enforces this).
    pub fn attach_journal(&mut self, path: impl AsRef<Path>) -> Result<(u64, u64), ServeError> {
        let (records, malformed) = journal::read(&path)?;
        let mut replayed = 0u64;
        let mut skipped = malformed;
        for r in &records {
            match self.apply_feedback(&r.gpu, r.cluster, &r.best) {
                Ok(_) => replayed += 1,
                Err(_) => skipped += 1,
            }
        }
        self.journal_replayed.store(replayed, Ordering::Relaxed);
        self.journal_skipped.store(skipped, Ordering::Relaxed);
        self.journal = Some(FeedbackJournal::open(path)?);
        Ok((replayed, skipped))
    }

    /// GPUs this engine can decide for, in artifact order.
    pub fn gpus(&self) -> Vec<Gpu> {
        self.states.iter().map(|s| s.gpu).collect()
    }

    /// The engine's serving counters (shared with the request loop).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The batch selector backing one GPU (for explanations).
    pub fn batch_selector(&self, gpu: Gpu) -> Option<&SemiSupervisedSelector> {
        self.states.iter().find(|s| s.gpu == gpu).map(|s| &s.batch)
    }

    fn state(&self, gpu: Gpu) -> Result<&GpuState, ServeError> {
        self.states
            .iter()
            .find(|s| s.gpu == gpu)
            .ok_or_else(|| ServeError::UnknownGpu {
                name: format!("{} (not in the loaded model)", gpu.name()),
            })
    }

    /// Resolve a request body to `(features, stats)`: read and
    /// featurize the matrix file, or reconstruct stats from an inline
    /// Table 1 vector.
    pub fn resolve_features(
        &self,
        body: &SelectBody,
    ) -> Result<(FeatureVector, MatrixStats), ServeError> {
        if let Some(path) = &body.matrix {
            let coo = io::read_matrix_market_file(path).map_err(|e| ServeError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            let csr = CsrMatrix::from(&coo);
            let stats = MatrixStats::from_csr(&csr);
            let fv = FeatureVector::from_stats(&stats);
            return Ok((fv, stats));
        }
        if let Some(values) = &body.features {
            if values.len() != NUM_FEATURES {
                return Err(ServeError::FeatureDim {
                    got: values.len(),
                    expected: NUM_FEATURES,
                });
            }
            let mut raw = [0.0; NUM_FEATURES];
            raw.copy_from_slice(values);
            let fv = FeatureVector::from_raw(raw);
            let stats = stats_from_features(&fv);
            return Ok((fv, stats));
        }
        Err(ServeError::BadRequest {
            message: "select needs `matrix` (a path) or `features` (21 values)".into(),
        })
    }

    /// Answer one selection query end to end. This is the single decision
    /// codepath: CLI, daemon, and batch requests all land here.
    pub fn select(&self, body: &SelectBody) -> Result<SelectReply, ServeError> {
        let gpu = parse_gpu(&body.gpu)?;
        let state = self.state(gpu)?;
        let (fv, stats) = self.resolve_features(body)?;
        let iterations = body.iterations.unwrap_or(self.default_iterations);
        let learn = body.learn.unwrap_or(true);

        // `learn: false` never touches a write lock: the whole view —
        // novelty distance, cluster, label, occupancy — comes from one
        // immutable snapshot. `learn: true` serializes with other
        // observations and publishes a fresh snapshot before replying.
        let view = state.online.decide(&fv, learn);
        let decision = view.decision;
        self.metrics
            .select(decision.new_cluster, decision.benchmark_requested);

        let times = predict_times(&gpu.spec(), &stats, matrix_id(&fv));
        let amortized = amortized_best(&times, &self.conversion, iterations);
        let break_even = break_even_iterations(&times, &self.conversion, amortized.format);
        let predicted = Format::ALL
            .into_iter()
            .map(|f| {
                let t = times.get(f);
                FormatTime {
                    format: f.name().to_string(),
                    us: t.is_finite().then_some(t),
                }
            })
            .collect();

        Ok(SelectReply {
            gpu: gpu.name().to_string(),
            format: decision.format.name().to_string(),
            cluster: decision.cluster,
            cluster_size: view.cluster_size,
            centroid_distance: view.distance,
            new_cluster: decision.new_cluster,
            benchmark_requested: decision.benchmark_requested,
            predicted,
            amortized_format: amortized.format.name().to_string(),
            amortized_total_us: amortized.total_us,
            csr_total_us: amortized.csr_total_us,
            break_even_iterations: break_even,
            iterations,
        })
    }

    /// The label-application core of the feedback loop, shared by wire
    /// requests and journal replay. Validates the cluster index so a bad
    /// client (or a stale journal record) gets a typed error instead of
    /// an out-of-range panic. Touches neither metrics nor the journal.
    fn apply_feedback(
        &self,
        gpu: &str,
        cluster: usize,
        best: &str,
    ) -> Result<crate::protocol::FeedbackReply, ServeError> {
        let gpu = parse_gpu(gpu)?;
        let state = self.state(gpu)?;
        let format = parse_format(best)?;
        let view = state
            .online
            .report_benchmark(cluster, format)
            .ok_or_else(|| ServeError::UnknownCluster {
                gpu: gpu.name().to_string(),
                cluster,
                clusters: state.online.n_clusters(),
            })?;
        Ok(crate::protocol::FeedbackReply {
            gpu: gpu.name().to_string(),
            cluster,
            format: format.name().to_string(),
            unlabeled_clusters: view.unlabeled_clusters,
            staleness: view.staleness,
        })
    }

    /// Apply a measured label to an online cluster (the feedback loop),
    /// counting it and journaling it when a journal is attached. Only
    /// the cluster's own shard lock is taken — feedback never blocks
    /// reads, and never blocks observations landing in other shards.
    pub fn feedback(
        &self,
        gpu: &str,
        cluster: usize,
        best: &str,
    ) -> Result<crate::protocol::FeedbackReply, ServeError> {
        let reply = self.apply_feedback(gpu, cluster, best)?;
        self.metrics.feedback();
        if let Some(journal) = &self.journal {
            journal.append(&JournalRecord {
                gpu: reply.gpu.clone(),
                cluster: reply.cluster,
                best: reply.format.clone(),
            })?;
            self.journal_appended.fetch_add(1, Ordering::Relaxed);
        }
        Ok(reply)
    }

    /// The full serving report: wire counters from [`ServeMetrics`] plus
    /// the engine-level online-contention and journal counters.
    pub fn serving_report(&self) -> ServingReport {
        let mut report = self.metrics.report();
        for s in &self.states {
            let c = s.online.contention().report();
            report.read_decisions += c.read_decisions;
            report.write_decisions += c.write_decisions;
            report.write_lock_acquisitions += c.write_lock_acquisitions;
            report.write_lock_wait_us += c.write_lock_wait_us;
            report.snapshot_swaps += c.snapshot_swaps;
        }
        report.journal_replayed = self.journal_replayed.load(Ordering::Relaxed);
        report.journal_appended = self.journal_appended.load(Ordering::Relaxed);
        report.journal_skipped = self.journal_skipped.load(Ordering::Relaxed);
        report
    }

    /// Snapshot the serving counters and per-GPU online state.
    pub fn stats(&self) -> StatsReply {
        self.metrics.stats();
        let gpus = self
            .states
            .iter()
            .map(|s| {
                let snap = s.online.snapshot();
                let contention = s.online.contention().report();
                GpuStats {
                    gpu: s.gpu.name().to_string(),
                    clusters: snap.n_clusters(),
                    unlabeled_clusters: snap.unlabeled_clusters(),
                    staleness: snap.staleness(),
                    training_records: s.training_records,
                    shards: s.online.shards(),
                    snapshot_version: snap.version(),
                    shard_imbalance: contention.shard_imbalance(),
                    shard_feedbacks: contention.shard_feedbacks,
                }
            })
            .collect();
        StatsReply {
            artifact_version: self.artifact_version,
            feature_digest: self.feature_digest.clone(),
            gpus,
            serving: self.serving_report(),
        }
    }
}

/// Deterministic measurement-noise seed for a matrix: an FNV-1a hash of
/// its feature bits. The same matrix (by features) always sees the same
/// simulated times, on the CLI, the daemon, and across artifact reloads.
pub fn matrix_id(fv: &FeatureVector) -> u64 {
    let mut w = KeyWriter::new();
    for &v in fv.as_slice() {
        w.f64(v);
    }
    w.finish()
}

/// Reconstruct the raw [`MatrixStats`] the GPU performance model needs
/// from a Table 1 feature vector. Every stats field is either a feature
/// itself or derivable from one (`hyb_ell_nnz = nnz - hyb_coo`,
/// `hyb_ell_width = hyb_ell_size / nrows`), which is what makes the
/// inline-features request path possible without shipping the matrix.
pub fn stats_from_features(fv: &FeatureVector) -> MatrixStats {
    let count = |id: FeatureId| fv.get(id).max(0.0).round() as usize;
    let nrows = count(FeatureId::NRows);
    let nnz = count(FeatureId::Nnz);
    let hyb_ell_size = count(FeatureId::HybEllSize);
    let hyb_coo_nnz = count(FeatureId::HybCoo);
    MatrixStats {
        nrows,
        ncols: count(FeatureId::NCols),
        nnz,
        nnz_min: count(FeatureId::NnzMin),
        nnz_max: count(FeatureId::NnzMax),
        nnz_mean: fv.get(FeatureId::NnzMu),
        nnz_std: fv.get(FeatureId::NnzSig),
        sig_lower: fv.get(FeatureId::SigLower),
        sig_higher: fv.get(FeatureId::SigHigher),
        csr_max: count(FeatureId::CsrMax),
        hyb_ell_width: hyb_ell_size.checked_div(nrows).unwrap_or(0),
        hyb_ell_size,
        hyb_ell_nnz: nnz.saturating_sub(hyb_coo_nnz),
        hyb_coo_nnz,
        diagonals: count(FeatureId::Diagonals),
        dia_size: count(FeatureId::DiaSize),
        ell_size: count(FeatureId::EllSize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_matrix::gen;

    #[test]
    fn stats_survive_the_feature_round_trip() {
        // matrix -> stats -> features -> stats must reproduce every field
        // the GPU model reads, so inline-feature requests decide exactly
        // like matrix-path requests.
        for seed in 0..5u64 {
            let csr = CsrMatrix::from(&gen::power_law(200, 200, 2, 2.3, 80, seed));
            let stats = MatrixStats::from_csr(&csr);
            let fv = FeatureVector::from_stats(&stats);
            let back = stats_from_features(&fv);
            assert_eq!(back, stats);
            assert_eq!(matrix_id(&fv), matrix_id(&FeatureVector::from_stats(&back)));
        }
    }

    #[test]
    fn matrix_id_distinguishes_matrices() {
        let a = FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(10, 0)));
        let b = FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(11, 0)));
        assert_ne!(matrix_id(&a), matrix_id(&b));
        assert_eq!(matrix_id(&a), matrix_id(&a));
    }
}
