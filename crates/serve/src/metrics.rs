//! Lock-free serving counters and a log-bucketed latency histogram.
//!
//! Latencies come from a monotonic clock ([`std::time::Instant`]) and land
//! in power-of-two microsecond buckets, so p50/p99 are exact bucket upper
//! bounds — cheap enough to record on every request, precise enough for a
//! throughput report. A snapshot serializes as
//! [`spsel_core::telemetry::ServingReport`] for the `stats` request and
//! the run-report JSON.

use spsel_core::telemetry::ServingReport;
use spsel_core::DecisionPhaseNs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets; bucket `i` holds requests with
/// `floor(log2(us)) == i`, so the top bucket covers ~584 thousand years.
const BUCKETS: usize = 64;

/// Shared mutable serving counters (all atomics; clones of the owning
/// engine share them by reference).
#[derive(Debug)]
pub struct ServeMetrics {
    requests: AtomicU64,
    select_requests: AtomicU64,
    feedback_requests: AtomicU64,
    stats_requests: AtomicU64,
    batch_requests: AtomicU64,
    max_batch_size: AtomicU64,
    errors: AtomicU64,
    deadline_exceeded: AtomicU64,
    deadline_skipped: AtomicU64,
    cluster_hits: AtomicU64,
    new_clusters: AtomicU64,
    benchmarks_requested: AtomicU64,
    feedback_applied: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
    max_latency_us: AtomicU64,
    shed: AtomicU64,
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    connections_open: AtomicU64,
    peak_connections: AtomicU64,
    binary_requests: AtomicU64,
    swap_requests: AtomicU64,
    sync_requests: AtomicU64,
    timed_decisions: AtomicU64,
    decision_extract_ns: AtomicU64,
    decision_embed_ns: AtomicU64,
    decision_assign_ns: AtomicU64,
    decision_label_ns: AtomicU64,
    /// Power-of-two *nanosecond* buckets for the whole decision path of
    /// one `learn: false` select (extract + embed + assign + label) —
    /// finer grained than the microsecond request histogram because a
    /// steady-state decision completes in well under a microsecond.
    decision_ns_buckets: [AtomicU64; BUCKETS],
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Quantile over a power-of-two bucket histogram: the upper bound
/// (`2^(i+1) - 1` base units) of the bucket holding the `ceil(q * n)`-th
/// fastest sample, 0 when empty.
fn bucket_quantile(buckets: &[AtomicU64; BUCKETS], q: f64) -> f64 {
    let counts: Vec<u64> = buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            return ((1u128 << (i + 1)) - 1) as f64;
        }
    }
    ((1u128 << BUCKETS) - 1) as f64
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            requests: AtomicU64::new(0),
            select_requests: AtomicU64::new(0),
            feedback_requests: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            max_batch_size: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            deadline_skipped: AtomicU64::new(0),
            cluster_hits: AtomicU64::new(0),
            new_clusters: AtomicU64::new(0),
            benchmarks_requested: AtomicU64::new(0),
            feedback_applied: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_latency_us: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            peak_connections: AtomicU64::new(0),
            binary_requests: AtomicU64::new(0),
            swap_requests: AtomicU64::new(0),
            sync_requests: AtomicU64::new(0),
            timed_decisions: AtomicU64::new(0),
            decision_extract_ns: AtomicU64::new(0),
            decision_embed_ns: AtomicU64::new(0),
            decision_assign_ns: AtomicU64::new(0),
            decision_label_ns: AtomicU64::new(0),
            decision_ns_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServeMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one incoming request line (any type, before parsing).
    pub fn request(&self) {
        bump(&self.requests);
    }

    /// Count one answered select (batched bodies count individually).
    /// `new_cluster` / `benchmark_requested` mirror the decision flags; a
    /// select answered from an already-labeled cluster is a cluster hit.
    pub fn select(&self, new_cluster: bool, benchmark_requested: bool) {
        bump(&self.select_requests);
        if new_cluster {
            bump(&self.new_clusters);
        }
        if benchmark_requested {
            bump(&self.benchmarks_requested);
        } else {
            bump(&self.cluster_hits);
        }
    }

    /// Count one applied feedback label.
    pub fn feedback(&self) {
        bump(&self.feedback_requests);
        bump(&self.feedback_applied);
    }

    /// Count one stats request.
    pub fn stats(&self) {
        bump(&self.stats_requests);
    }

    /// Count one batch envelope of `size` bodies.
    pub fn batch(&self, size: usize) {
        bump(&self.batch_requests);
        self.max_batch_size
            .fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Count one error response.
    pub fn error(&self) {
        bump(&self.errors);
    }

    /// Count one deadline miss (also an error response).
    pub fn deadline_exceeded(&self) {
        bump(&self.deadline_exceeded);
        bump(&self.errors);
    }

    /// Count one batch item skipped by the cooperative mid-compute
    /// deadline check (the batch envelope itself still succeeds, so this
    /// is not an error response).
    pub fn deadline_skipped(&self) {
        bump(&self.deadline_skipped);
    }

    /// Count one request answered with a `shed` envelope by admission
    /// control (also an error response, like a deadline miss).
    pub fn shed(&self) {
        bump(&self.shed);
        bump(&self.errors);
    }

    /// Count one accepted connection; returns nothing but tracks the
    /// open-connection gauge and its peak.
    pub fn connection_opened(&self) {
        bump(&self.connections_accepted);
        let open = self.connections_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(open, Ordering::Relaxed);
    }

    /// Count one closed connection (the gauge counterpart of
    /// [`Self::connection_opened`]).
    pub fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Count one connection refused at accept (connection cap reached).
    pub fn connection_rejected(&self) {
        bump(&self.connections_rejected);
    }

    /// Connections open right now.
    pub fn open_connections(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Count one request that arrived on a binary-negotiated connection.
    pub fn binary_request(&self) {
        bump(&self.binary_requests);
    }

    /// Count one artifact hot-swap request (success or failure).
    pub fn swap_request(&self) {
        bump(&self.swap_requests);
    }

    /// Count one replica catch-up (`sync`) request.
    pub fn sync_request(&self) {
        bump(&self.sync_requests);
    }

    /// Account one `learn: false` decision's per-phase nanoseconds
    /// (`extract_ns` measured by the caller around featurization, the
    /// rest from [`DecisionPhaseNs`]).
    pub fn decision_phases(&self, extract_ns: u64, phases: DecisionPhaseNs) {
        bump(&self.timed_decisions);
        self.decision_extract_ns
            .fetch_add(extract_ns, Ordering::Relaxed);
        self.decision_embed_ns
            .fetch_add(phases.embed_ns, Ordering::Relaxed);
        self.decision_assign_ns
            .fetch_add(phases.assign_ns, Ordering::Relaxed);
        self.decision_label_ns
            .fetch_add(phases.label_ns, Ordering::Relaxed);
        let total_ns = extract_ns + phases.embed_ns + phases.assign_ns + phases.label_ns;
        let bucket = (63 - (total_ns | 1).leading_zeros() as usize).min(BUCKETS - 1);
        bump(&self.decision_ns_buckets[bucket]);
    }

    /// Record one request's wall-clock latency.
    pub fn record_latency(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (63 - (us | 1).leading_zeros() as usize).min(BUCKETS - 1);
        bump(&self.latency_buckets[bucket]);
        self.max_latency_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Latency at quantile `q` in [0, 1]: the upper bound of the bucket
    /// holding the `ceil(q * n)`-th fastest request, 0 when empty.
    fn latency_quantile(&self, q: f64) -> f64 {
        bucket_quantile(&self.latency_buckets, q)
    }

    /// Decision-path latency quantile in microseconds (the histogram is
    /// nanosecond-bucketed, hence the division).
    fn decision_quantile_us(&self, q: f64) -> f64 {
        bucket_quantile(&self.decision_ns_buckets, q) / 1e3
    }

    /// Serializable snapshot of every counter.
    pub fn report(&self) -> ServingReport {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServingReport {
            requests: load(&self.requests),
            select_requests: load(&self.select_requests),
            feedback_requests: load(&self.feedback_requests),
            stats_requests: load(&self.stats_requests),
            batch_requests: load(&self.batch_requests),
            max_batch_size: load(&self.max_batch_size),
            errors: load(&self.errors),
            deadline_exceeded: load(&self.deadline_exceeded),
            cluster_hits: load(&self.cluster_hits),
            new_clusters: load(&self.new_clusters),
            benchmarks_requested: load(&self.benchmarks_requested),
            feedback_applied: load(&self.feedback_applied),
            p50_latency_us: self.latency_quantile(0.50),
            p99_latency_us: self.latency_quantile(0.99),
            max_latency_us: load(&self.max_latency_us) as f64,
            deadline_skipped: load(&self.deadline_skipped),
            shed: load(&self.shed),
            connections_accepted: load(&self.connections_accepted),
            connections_rejected: load(&self.connections_rejected),
            peak_connections: load(&self.peak_connections),
            binary_requests: load(&self.binary_requests),
            swap_requests: load(&self.swap_requests),
            sync_requests: load(&self.sync_requests),
            timed_decisions: load(&self.timed_decisions),
            decision_extract_ns: load(&self.decision_extract_ns),
            decision_embed_ns: load(&self.decision_embed_ns),
            decision_assign_ns: load(&self.decision_assign_ns),
            decision_label_ns: load(&self.decision_label_ns),
            decision_p50_us: self.decision_quantile_us(0.50),
            decision_p99_us: self.decision_quantile_us(0.99),
            // Contention, journal, and lifecycle counters live with the
            // engine; it merges them in `Engine::serving_report`.
            ..ServingReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_the_report() {
        let m = ServeMetrics::new();
        m.request();
        m.request();
        m.select(true, true);
        m.select(false, false);
        m.feedback();
        m.stats();
        m.batch(5);
        m.batch(3);
        m.error();
        m.deadline_exceeded();
        let r = m.report();
        assert_eq!(r.requests, 2);
        assert_eq!(r.select_requests, 2);
        assert_eq!(r.new_clusters, 1);
        assert_eq!(r.benchmarks_requested, 1);
        assert_eq!(r.cluster_hits, 1);
        assert_eq!(r.feedback_requests, 1);
        assert_eq!(r.feedback_applied, 1);
        assert_eq!(r.stats_requests, 1);
        assert_eq!(r.batch_requests, 2);
        assert_eq!(r.max_batch_size, 5);
        assert_eq!(r.errors, 2, "deadline misses are also errors");
        assert_eq!(r.deadline_exceeded, 1);
    }

    #[test]
    fn connection_and_shed_counters_accumulate() {
        let m = ServeMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_opened();
        assert_eq!(m.open_connections(), 3);
        m.connection_closed();
        assert_eq!(m.open_connections(), 2);
        m.connection_opened();
        m.connection_rejected();
        m.shed();
        m.binary_request();
        m.binary_request();
        let r = m.report();
        assert_eq!(r.connections_accepted, 4);
        assert_eq!(r.connections_rejected, 1);
        assert_eq!(r.peak_connections, 3, "peak was before the close");
        assert_eq!(r.shed, 1);
        assert_eq!(r.errors, 1, "a shed is also an error response");
        assert_eq!(r.binary_requests, 2);
    }

    #[test]
    fn latency_quantiles_are_bucket_upper_bounds() {
        let m = ServeMetrics::new();
        assert_eq!(m.report().p50_latency_us, 0.0, "empty histogram");
        // 99 fast requests (~100 us), 1 slow (~50 ms).
        for _ in 0..99 {
            m.record_latency(Duration::from_micros(100));
        }
        m.record_latency(Duration::from_millis(50));
        let r = m.report();
        // 100 us lands in bucket 6 (64..127); upper bound 127.
        assert_eq!(r.p50_latency_us, 127.0);
        // The p99 target is the 99th request, still in the fast bucket.
        assert_eq!(r.p99_latency_us, 127.0);
        assert!(r.max_latency_us >= 50_000.0);
        // One more slow request pushes p99 into the slow bucket.
        for _ in 0..5 {
            m.record_latency(Duration::from_millis(50));
        }
        let r = m.report();
        assert!(r.p99_latency_us > 10_000.0);
        // p50 is unchanged.
        assert_eq!(r.p50_latency_us, 127.0);
    }

    #[test]
    fn decision_phase_counters_and_quantiles_accumulate() {
        let m = ServeMetrics::new();
        let r = m.report();
        assert_eq!(r.decision_p50_us, 0.0, "empty decision histogram");
        // 99 sub-microsecond decisions (~700 ns), one slow 40 us outlier.
        for _ in 0..99 {
            m.decision_phases(
                200,
                DecisionPhaseNs {
                    embed_ns: 300,
                    assign_ns: 150,
                    label_ns: 50,
                },
            );
        }
        m.decision_phases(
            30_000,
            DecisionPhaseNs {
                embed_ns: 5_000,
                assign_ns: 4_000,
                label_ns: 1_000,
            },
        );
        let r = m.report();
        assert_eq!(r.timed_decisions, 100);
        assert_eq!(r.decision_extract_ns, 99 * 200 + 30_000);
        assert_eq!(r.decision_embed_ns, 99 * 300 + 5_000);
        assert_eq!(r.decision_assign_ns, 99 * 150 + 4_000);
        assert_eq!(r.decision_label_ns, 99 * 50 + 1_000);
        // 700 ns lands in bucket 9 (512..1023 ns): upper bound 1023 ns.
        assert_eq!(r.decision_p50_us, 1.023);
        // The p99 target is the 99th decision, still in the fast bucket;
        // the 40 us outlier only shows past p99.
        assert_eq!(r.decision_p99_us, 1.023);
        // The request-latency histogram is untouched by decision timing.
        assert_eq!(r.p50_latency_us, 0.0);
    }

    #[test]
    fn sub_microsecond_latencies_land_in_the_first_bucket() {
        let m = ServeMetrics::new();
        m.record_latency(Duration::from_nanos(10));
        assert_eq!(m.report().p50_latency_us, 1.0);
    }
}
