//! `spsel-serve`: the persistent format-selection service.
//!
//! The paper's conclusion sketches an online classification system that
//! learns from SpMV operations as they are performed; this crate is the
//! serving half that makes it deployable:
//!
//! * [`artifact`] — versioned, self-describing model artifacts: train
//!   once (`spsel train`), ship the file, load it anywhere with
//!   bit-identical decisions. Version or feature-pipeline mismatches are
//!   typed errors, never panics.
//! * [`engine`] — the one decision codepath (batch selector + warm
//!   [`spsel_core::ShardedOnlineSelector`] per GPU) shared by the
//!   `select` CLI, the daemon, and tests. Read-only decisions are
//!   answered lock-free from a published snapshot; observations and
//!   feedback go through a sharded write side.
//! * [`server`] — a nonblocking readiness-loop TCP server: each
//!   [`event_loop`] worker multiplexes thousands of persistent
//!   connections through one hand-rolled `poll(2)` loop, with pipelined
//!   requests, per-request deadlines (enforced cooperatively inside
//!   batches), load-shedding admission control for slow readers, and
//!   graceful shutdown. [`protocol`] defines the JSON wire types,
//!   [`framing`] the length-prefixed binary protocol negotiated per
//!   connection (same [`protocol::Request`]/[`protocol::Response`] on
//!   both), and [`error`] the typed error envelope.
//! * [`metrics`] — lock-free serving counters (latency quantiles from a
//!   monotonic clock, lock-contention and snapshot-swap counts) surfaced
//!   through the `stats` request and the run-report JSON.
//! * [`journal`] — an append-only, sequence-numbered JSONL journal of
//!   every online mutation (cluster-opening observes *and* feedback
//!   labels), replayed at startup so a restarted daemon is
//!   state-identical to the one that died. Past a record threshold the
//!   journal compacts into an atomic checkpoint of the online state plus
//!   a short tail; torn tails from a mid-write crash are sealed and
//!   counted, never fatal. The same machinery powers zero-downtime
//!   artifact hot-swap (`Swap`) and replica catch-up (`Sync`).
//! * [`ingest`] — corpus growth: `spsel corpus ingest` replays journaled
//!   observations into the persistent cache's growth shards, so the next
//!   `spsel train` learns from serve-time matrices without regenerating
//!   or re-benchmarking anything that already exists.
//!
//! The daemon binary is `spsel-serve`; the artifact CLI is `spsel`
//! (`train`, `inspect`, `request`); `loadgen` in the bench crate drives
//! concurrent synthetic clients against all of this.

pub mod artifact;
pub mod client;
pub mod engine;
pub mod error;
pub mod event_loop;
pub mod framing;
pub mod ingest;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use artifact::{
    feature_pipeline_digest, registry_for_digest, ModelArtifact, TrainConfig, WorkloadLabels,
    ARTIFACT_VERSION,
};
pub use client::{Client, Protocol};
pub use engine::{Engine, EngineOptions, JournalConfig};
pub use error::{ErrorEnvelope, ServeError};
pub use framing::{FrameBuffer, MAGIC, MAX_FRAME};
pub use ingest::{ingest_journal, IngestReport};
pub use journal::{
    checkpoint_path, load_checkpoint, parse_checkpoint, parse_line, read_journal, write_checkpoint,
    Checkpoint, CheckpointGpu, CrashPoint, FeedbackJournal, JournalLine, JournalRecord,
    JournalScan, CHECKPOINT_VERSION, JOURNAL_VERSION,
};
pub use metrics::ServeMetrics;
pub use protocol::{
    parse_workload, LifecycleStats, Request, Response, SelectBody, SelectReply, SwapReply,
    SyncReply,
};
pub use server::{ServeOptions, Server};
