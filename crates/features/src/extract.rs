//! Single-pass feature extraction with reusable scratch buffers.
//!
//! [`MatrixStats::from_csr`] is correct but allocation-heavy: it builds a
//! row-counts `Vec`, a diagonal occupancy bitmap, and then re-walks the
//! counts separately for the sum, min, max, deviation sums, `csr_max`
//! warp chunks, the HYB histogram, and the HYB ELL occupancy. That is
//! fine for offline table generation and fatal for a serving hot path
//! that wants to stay allocation-free.
//!
//! [`FeatureExtractor`] computes the identical [`MatrixStats`] from one
//! walk over the CSR row pointers (counts, nnz, min/max, warp chunks,
//! HYB histogram), one walk over the cache-resident counts scratch (the
//! mean-relative deviation sums, which cannot ride the first walk
//! because they need the mean), and one walk over the column indices
//! (diagonal census). All scratch buffers are reused across calls and
//! cleared in O(1) with an epoch stamp, so a warmed extractor performs
//! zero heap allocations. Floating-point accumulation order matches the
//! legacy path operation for operation, so the result is bit-identical —
//! `crates/features/tests/properties.rs` proves it over random, empty,
//! single-row, hub, banded, and power-law matrices.

use crate::stats::WARP_ROWS;
use crate::{FeatureVector, MatrixStats};
use spsel_matrix::hyb::{DEFAULT_BREAKEVEN_THRESHOLD, DEFAULT_RELATIVE_SPEED};
use spsel_matrix::{CsrMatrix, SpMv};

/// Reusable scratch state for single-pass [`MatrixStats`] extraction.
///
/// One extractor per thread: methods take `&mut self` and reuse the
/// buffers, so a warmed extractor (one that has already seen a matrix at
/// least as large) allocates nothing.
#[derive(Debug, Default)]
pub struct FeatureExtractor {
    /// Per-row nonzero counts for the current matrix (first `nrows` live).
    counts: Vec<usize>,
    /// Row-count histogram values; `hist[c]` is live iff
    /// `hist_epoch[c] == epoch`.
    hist: Vec<usize>,
    hist_epoch: Vec<u32>,
    /// Diagonal occupancy stamps; offset `d` is occupied iff
    /// `diag_epoch[d] == epoch`.
    diag_epoch: Vec<u32>,
    /// Current generation for both epoch-stamped buffers. Bumping it
    /// invalidates every stale entry at once — the O(1) "clear".
    epoch: u32,
}

impl FeatureExtractor {
    /// Fresh extractor with empty scratch (first call sizes the buffers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new matrix: invalidate both epoch-stamped buffers in O(1).
    fn next_epoch(&mut self) {
        if self.epoch == u32::MAX {
            // One O(len) reset every 2^32 - 1 matrices keeps stale stamps
            // from a previous generation cycle from reading as live.
            self.hist_epoch.fill(0);
            self.diag_epoch.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Compute all statistics of `csr`, bit-identical to
    /// [`MatrixStats::from_csr`], reusing this extractor's scratch.
    pub fn stats(&mut self, csr: &CsrMatrix) -> MatrixStats {
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        self.next_epoch();
        let epoch = self.epoch;
        if self.counts.len() < nrows {
            self.counts.resize(nrows, 0);
        }

        // Walk 1: the row pointers. Fills the counts scratch and folds in
        // every aggregate that does not depend on the mean.
        let row_ptr = csr.row_ptr();
        let mut nnz = 0usize;
        let mut nnz_min = usize::MAX;
        let mut nnz_max = 0usize;
        let mut csr_max = 0usize;
        let mut warp_sum = 0usize;
        for r in 0..nrows {
            let c = row_ptr[r + 1] - row_ptr[r];
            self.counts[r] = c;
            nnz += c;
            nnz_min = nnz_min.min(c);
            nnz_max = nnz_max.max(c);
            warp_sum += c;
            if (r + 1) % WARP_ROWS == 0 {
                csr_max = csr_max.max(warp_sum);
                warp_sum = 0;
            }
            // Histogram bucket for the HYB split; stale entries are dead
            // because their stamp is from an earlier epoch.
            if self.hist.len() <= c {
                self.hist.resize(c + 1, 0);
                self.hist_epoch.resize(c + 1, 0);
            }
            if self.hist_epoch[c] == epoch {
                self.hist[c] += 1;
            } else {
                self.hist[c] = 1;
                self.hist_epoch[c] = epoch;
            }
        }
        if !nrows.is_multiple_of(WARP_ROWS) {
            csr_max = csr_max.max(warp_sum);
        }
        if nrows == 0 {
            nnz_min = 0;
        }
        let mean = if nrows == 0 {
            0.0
        } else {
            nnz as f64 / nrows as f64
        };

        // HYB split width straight off the histogram (CUSP's rule, same
        // arithmetic as `spsel_matrix::hyb::optimal_ell_width`).
        let hyb_ell_width = if nrows == 0 {
            0
        } else {
            let cutoff =
                ((nrows as f64 / DEFAULT_RELATIVE_SPEED) as usize).min(DEFAULT_BREAKEVEN_THRESHOLD);
            let mut count_ge = nrows;
            let mut width = 0;
            for k in 1..=nnz_max {
                count_ge -= if self.hist_epoch[k - 1] == epoch {
                    self.hist[k - 1]
                } else {
                    0
                };
                if count_ge > cutoff {
                    width = k;
                } else {
                    break;
                }
            }
            width
        };

        // Walk 2: the counts scratch, in row order. The deviation sums
        // need the mean, so they cannot ride walk 1; accumulation order
        // matches `MatrixStats::from_row_counts` exactly.
        let mut var_sum = 0.0;
        let mut lower_sum = 0.0;
        let mut lower_n = 0usize;
        let mut higher_sum = 0.0;
        let mut higher_n = 0usize;
        let mut hyb_ell_nnz = 0usize;
        for &c in &self.counts[..nrows] {
            let d = c as f64 - mean;
            var_sum += d * d;
            if d < 0.0 {
                lower_sum += d * d;
                lower_n += 1;
            } else if d > 0.0 {
                higher_sum += d * d;
                higher_n += 1;
            }
            hyb_ell_nnz += c.min(hyb_ell_width);
        }
        let nnz_std = if nrows == 0 {
            0.0
        } else {
            (var_sum / nrows as f64).sqrt()
        };
        let sig_lower = if lower_n == 0 {
            0.0
        } else {
            (lower_sum / lower_n as f64).sqrt()
        };
        let sig_higher = if higher_n == 0 {
            0.0
        } else {
            (higher_sum / higher_n as f64).sqrt()
        };

        // Walk 3: the column indices — diagonal census over the
        // `nrows + ncols - 1` possible offsets, occupancy tracked by
        // epoch stamp instead of a freshly-zeroed bitmap.
        let mut diagonals = 0usize;
        let mut dia_size = 0usize;
        if nrows > 0 && ncols > 0 {
            let offsets = nrows + ncols - 1;
            if self.diag_epoch.len() < offsets {
                self.diag_epoch.resize(offsets, 0);
            }
            let col_idx = csr.col_idx();
            for r in 0..nrows {
                for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                    let idx = c as usize + nrows - 1 - r;
                    if self.diag_epoch[idx] != epoch {
                        self.diag_epoch[idx] = epoch;
                        diagonals += 1;
                    }
                }
            }
            dia_size = diagonals * nrows;
        }

        MatrixStats {
            nrows,
            ncols,
            nnz,
            nnz_min,
            nnz_max,
            nnz_mean: mean,
            nnz_std,
            sig_lower,
            sig_higher,
            csr_max,
            hyb_ell_width,
            hyb_ell_size: hyb_ell_width * nrows,
            hyb_ell_nnz,
            hyb_coo_nnz: nnz - hyb_ell_nnz,
            diagonals,
            dia_size,
            ell_size: nnz_max * nrows,
        }
    }

    /// Extract the Table 1 feature vector of `csr` via [`Self::stats`].
    pub fn features(&mut self, csr: &CsrMatrix) -> FeatureVector {
        FeatureVector::from_stats(&self.stats(csr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_matrix::gen;

    #[test]
    fn matches_legacy_path_on_generators() {
        let mut ex = FeatureExtractor::new();
        let matrices = [
            CsrMatrix::from(&gen::stencil2d(12, 0)),
            CsrMatrix::from(&gen::power_law(200, 180, 2, 2.3, 90, 7)),
            CsrMatrix::from(&gen::banded(150, 5, 0.7, 3)),
            CsrMatrix::from(&gen::random_uniform(64, 96, 6, 4)),
        ];
        for csr in &matrices {
            assert_eq!(ex.stats(csr), MatrixStats::from_csr(csr));
            assert_eq!(ex.features(csr), FeatureVector::from_csr(csr));
        }
    }

    #[test]
    fn scratch_reuse_across_shrinking_matrices() {
        // A large matrix warms the scratch; smaller ones after it must
        // not read stale histogram or diagonal stamps.
        let mut ex = FeatureExtractor::new();
        let big = CsrMatrix::from(&gen::power_law(400, 400, 3, 2.1, 200, 1));
        assert_eq!(ex.stats(&big), MatrixStats::from_csr(&big));
        let small = CsrMatrix::from(&gen::stencil2d(5, 0));
        assert_eq!(ex.stats(&small), MatrixStats::from_csr(&small));
        let tiny = CsrMatrix::from(&spsel_matrix::CooMatrix::zeros(1, 1));
        assert_eq!(ex.stats(&tiny), MatrixStats::from_csr(&tiny));
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let mut ex = FeatureExtractor::new();
        for coo in [
            spsel_matrix::CooMatrix::zeros(0, 0),
            spsel_matrix::CooMatrix::zeros(3, 0),
            spsel_matrix::CooMatrix::zeros(0, 3),
            spsel_matrix::CooMatrix::zeros(4, 4),
        ] {
            let csr = CsrMatrix::from(&coo);
            assert_eq!(ex.stats(&csr), MatrixStats::from_csr(&csr));
        }
    }
}
