//! The paper's full preprocessing pipeline: transforms → min-max scaling
//! → PCA.
//!
//! [`Preprocessor::fit`] learns every stage from training feature vectors
//! and produces an 8-dimensional (configurable) embedding in which
//! Euclidean distance correlates with matrix similarity — the input space
//! of the clustering algorithms and the KNN predictor.

use crate::{FeatureVector, MinMaxScaler, Pca, TransformSet};
use serde::{Deserialize, Serialize};

/// Default PCA dimensionality used in the paper.
pub const DEFAULT_PCA_DIM: usize = 8;

/// Fitted preprocessing pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Preprocessor {
    transforms: TransformSet,
    scaler: MinMaxScaler,
    pca: Option<Pca>,
}

impl Preprocessor {
    /// Fit the pipeline on raw feature rows. `pca_dim = None` skips PCA
    /// (useful for ablations); `Some(k)` keeps the top `k` components.
    pub fn fit_rows(rows: &[Vec<f64>], pca_dim: Option<usize>) -> Self {
        let borrowed: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Self::fit_borrowed(&borrowed, pca_dim)
    }

    /// Fit the pipeline on borrowed rows without cloning the training
    /// data: each downstream stage regenerates the rows it needs through
    /// one reused buffer (`MinMaxScaler::fit_with` / `Pca::fit_with`)
    /// instead of materializing a transformed and a scaled copy of the
    /// whole corpus. The fitted stages are bit-identical to the historic
    /// materializing path (`fitting_from_borrowed_rows_is_bit_identical`
    /// proves it against an in-test reference).
    pub fn fit_borrowed(rows: &[&[f64]], pca_dim: Option<usize>) -> Self {
        assert!(!rows.is_empty(), "need training rows");
        let dim = rows[0].len();
        let transforms = TransformSet::auto(rows);
        let scaler = MinMaxScaler::fit_with(rows.len(), dim, |i, buf| {
            buf.copy_from_slice(rows[i]);
            transforms.apply_in_place(buf);
        });
        let pca = pca_dim.map(|k| {
            Pca::fit_with(rows.len(), dim, k, |i, buf| {
                buf.copy_from_slice(rows[i]);
                transforms.apply_in_place(buf);
                scaler.transform_in_place(buf);
            })
        });
        Preprocessor {
            transforms,
            scaler,
            pca,
        }
    }

    /// Fit on [`FeatureVector`]s with the paper's default 8-dim PCA.
    pub fn fit(features: &[FeatureVector]) -> Self {
        let rows: Vec<&[f64]> = features.iter().map(|f| f.as_slice()).collect();
        Self::fit_borrowed(&rows, Some(DEFAULT_PCA_DIM))
    }

    /// Fit without the transform stage (the naive pipeline the paper shows
    /// to fail); still scales and projects.
    pub fn fit_without_transforms(rows: &[Vec<f64>], pca_dim: Option<usize>) -> Self {
        assert!(!rows.is_empty(), "need training rows");
        let transforms = TransformSet::identity(rows[0].len());
        let scaler = MinMaxScaler::fit(rows);
        let scaled: Vec<Vec<f64>> = rows.iter().map(|r| scaler.transform(r)).collect();
        let pca = pca_dim.map(|k| Pca::fit(&scaled, k));
        Preprocessor {
            transforms,
            scaler,
            pca,
        }
    }

    /// Output dimensionality of the pipeline.
    pub fn out_dim(&self) -> usize {
        self.pca
            .as_ref()
            .map_or_else(|| self.scaler.dim(), |p| p.k())
    }

    /// The fitted transform stage.
    pub fn transforms(&self) -> &TransformSet {
        &self.transforms
    }

    /// The fitted scaling stage.
    pub fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }

    /// The fitted PCA stage, if any.
    pub fn pca(&self) -> Option<&Pca> {
        self.pca.as_ref()
    }

    /// Embed one raw feature row.
    pub fn embed_row(&self, row: &[f64]) -> Vec<f64> {
        let mut scratch = vec![0.0; row.len()];
        let mut out = vec![0.0; self.out_dim()];
        self.embed_into(row, &mut scratch, &mut out);
        out
    }

    /// Embed one raw feature row into a caller-provided output buffer,
    /// allocation-free. `scratch` (length = input dim) carries the row
    /// through the in-place transform and scaling stages; `out` (length =
    /// [`Self::out_dim`]) receives the final embedding. Every stage runs
    /// the same arithmetic in the same order as the allocating path, so
    /// the embedding is bit-identical to [`Self::embed_row`].
    pub fn embed_into(&self, row: &[f64], scratch: &mut [f64], out: &mut [f64]) {
        assert_eq!(row.len(), scratch.len(), "scratch width mismatch");
        assert_eq!(out.len(), self.out_dim(), "output width mismatch");
        scratch.copy_from_slice(row);
        self.transforms.apply_in_place(scratch);
        self.scaler.transform_in_place(scratch);
        match &self.pca {
            Some(p) => p.transform_into(scratch, out),
            None => out.copy_from_slice(scratch),
        }
    }

    /// Embed one [`FeatureVector`].
    pub fn embed(&self, f: &FeatureVector) -> Vec<f64> {
        self.embed_row(f.as_slice())
    }

    /// Embed a batch of feature vectors.
    pub fn embed_all(&self, fs: &[FeatureVector]) -> Vec<Vec<f64>> {
        fs.iter().map(|f| self.embed(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureId;
    use spsel_matrix::{gen, CsrMatrix};

    fn corpus_features() -> Vec<FeatureVector> {
        let mut fs = Vec::new();
        for seed in 0..6 {
            fs.push(FeatureVector::from_csr(&CsrMatrix::from(
                &gen::random_uniform(100 + seed as usize * 37, 120, 5, seed),
            )));
            fs.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
                150, 150, 2, 2.2, 100, seed,
            ))));
            fs.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
                10 + seed as usize,
                seed,
            ))));
        }
        fs
    }

    #[test]
    fn default_pipeline_outputs_8_dims() {
        let fs = corpus_features();
        let pre = Preprocessor::fit(&fs);
        assert_eq!(pre.out_dim(), DEFAULT_PCA_DIM);
        for f in &fs {
            assert_eq!(pre.embed(f).len(), DEFAULT_PCA_DIM);
        }
    }

    #[test]
    fn no_pca_keeps_feature_count() {
        let fs = corpus_features();
        let rows: Vec<Vec<f64>> = fs.iter().map(|f| f.as_slice().to_vec()).collect();
        let pre = Preprocessor::fit_rows(&rows, None);
        assert_eq!(pre.out_dim(), crate::NUM_FEATURES);
    }

    #[test]
    fn embeddings_are_finite() {
        let fs = corpus_features();
        let pre = Preprocessor::fit(&fs);
        for f in &fs {
            for v in pre.embed(f) {
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn transform_stage_compresses_dynamic_range() {
        // Corpus with log-spread sizes: the nnz column is heavy-tailed, so
        // the auto policy must log-transform it, and in the transformed
        // space a mid-size matrix should sit genuinely between a tiny and a
        // huge one instead of collapsing onto the tiny one.
        let mut fs = Vec::new();
        for (i, n) in [
            50usize, 70, 90, 120, 160, 220, 300, 400, 550, 750, 1000, 1400, 1900, 2600, 3500, 4800,
            6500, 8800, 12000,
        ]
        .iter()
        .enumerate()
        {
            fs.push(FeatureVector::from_csr(&CsrMatrix::from(
                &gen::random_uniform(*n, *n, 8, i as u64),
            )));
        }
        let rows: Vec<Vec<f64>> = fs.iter().map(|f| f.as_slice().to_vec()).collect();

        let with = Preprocessor::fit_rows(&rows, None);
        let without = Preprocessor::fit_without_transforms(&rows, None);
        assert_ne!(
            with.transforms().transforms()[FeatureId::Nnz.index()],
            crate::Transform::Identity,
            "nnz column must be detected as skewed"
        );

        // Look at the nnz coordinate (no PCA, so columns are preserved):
        // without transforms the mid-size matrix collapses onto the small
        // one; with the variance-stabilizing transform it sits much closer
        // to the middle of the [small, huge] interval.
        let (small, mid, huge) = (&fs[0], &fs[9], &fs[18]);
        let j = FeatureId::Nnz.index();
        let rel = |p: &Preprocessor| -> f64 {
            let (s, m, h) = (p.embed(small)[j], p.embed(mid)[j], p.embed(huge)[j]);
            (m - s) / (h - s)
        };
        let (r_with, r_without) = (rel(&with), rel(&without));
        assert!(
            r_with > 2.0 * r_without,
            "transforms should spread mid-size matrices: {r_with} vs {r_without}"
        );
    }

    #[test]
    fn fitting_from_borrowed_rows_is_bit_identical() {
        // Reference: the historic materializing path — clone the corpus,
        // materialize the transformed rows for the scaler, materialize
        // the scaled rows for PCA.
        let fs = corpus_features();
        let rows: Vec<Vec<f64>> = fs.iter().map(|f| f.as_slice().to_vec()).collect();
        let transforms = TransformSet::auto(&rows);
        let transformed: Vec<Vec<f64>> = rows.iter().map(|r| transforms.apply(r)).collect();
        let scaler = MinMaxScaler::fit(&transformed);
        let scaled: Vec<Vec<f64>> = transformed.iter().map(|r| scaler.transform(r)).collect();
        let pca = Pca::fit(&scaled, DEFAULT_PCA_DIM);

        let pre = Preprocessor::fit(&fs);
        assert_eq!(pre.transforms(), &transforms);
        assert_eq!(pre.scaler(), &scaler);
        assert_eq!(pre.pca(), Some(&pca));
    }

    #[test]
    fn embed_into_matches_embed_row_bitwise() {
        let fs = corpus_features();
        for pca_dim in [Some(DEFAULT_PCA_DIM), None] {
            let rows: Vec<Vec<f64>> = fs.iter().map(|f| f.as_slice().to_vec()).collect();
            let pre = Preprocessor::fit_rows(&rows, pca_dim);
            let mut scratch = vec![0.0; crate::NUM_FEATURES];
            let mut out = vec![0.0; pre.out_dim()];
            for f in &fs {
                pre.embed_into(f.as_slice(), &mut scratch, &mut out);
                let reference = pre.embed(f);
                let bits_a: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
                let bits_b: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits_a, bits_b);
            }
        }
    }

    #[test]
    fn deterministic_fit() {
        let fs = corpus_features();
        let a = Preprocessor::fit(&fs);
        let b = Preprocessor::fit(&fs);
        for f in &fs {
            assert_eq!(a.embed(f), b.embed(f));
        }
    }
}
