//! Raw per-matrix structural statistics, computed in O(nnz).
//!
//! [`MatrixStats`] holds every raw quantity the Table 1 features and the
//! GPU performance model need. Everything is derived from one pass over the
//! row lengths plus one pass over the entries (for the diagonal census),
//! matching the paper's requirement that features be computable in time
//! proportional to the number of nonzeros.

use serde::{Deserialize, Serialize};
use spsel_matrix::hyb::{DEFAULT_BREAKEVEN_THRESHOLD, DEFAULT_RELATIVE_SPEED};
use spsel_matrix::{CsrMatrix, SpMv};

/// Number of rows a warp covers in the scalar CSR kernel (one thread per
/// row, 32 threads per warp).
pub const WARP_ROWS: usize = 32;

/// Raw structural statistics of a sparse matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Minimum nonzeros in a row.
    pub nnz_min: usize,
    /// Maximum nonzeros in a row.
    pub nnz_max: usize,
    /// Mean nonzeros per row.
    pub nnz_mean: f64,
    /// Standard deviation of nonzeros per row.
    pub nnz_std: f64,
    /// RMS deviation of row counts below the mean (paper's `sig_lower`).
    pub sig_lower: f64,
    /// RMS deviation of row counts above the mean (paper's `sig_higher`).
    pub sig_higher: f64,
    /// Maximum nonzeros processed by one warp of the scalar CSR kernel
    /// (32 consecutive rows, one row per thread) — the paper's `csr_max`
    /// load-imbalance indicator.
    pub csr_max: usize,
    /// ELL width of the CUSP HYB split.
    pub hyb_ell_width: usize,
    /// Slab slots in the HYB ELL part (paper's `hyb_ell_size`).
    pub hyb_ell_size: usize,
    /// True nonzeros stored in the HYB ELL part.
    pub hyb_ell_nnz: usize,
    /// Nonzeros in the HYB COO tail (paper's `hyb_coo`).
    pub hyb_coo_nnz: usize,
    /// Number of occupied diagonals (paper's `diagonals`).
    pub diagonals: usize,
    /// Slots a DIA structure would store (paper's `dia_size`).
    pub dia_size: usize,
    /// Slab slots in a pure ELL structure (paper's `ell_size`).
    pub ell_size: usize,
}

impl MatrixStats {
    /// Compute all statistics from a CSR matrix in O(nnz).
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let counts = csr.row_counts();
        let mut stats = Self::from_row_counts(csr.nrows(), csr.ncols(), &counts);

        // Diagonal census: one pass over entries, flat occupancy bitmap over
        // the `nrows + ncols - 1` possible offsets.
        let (nrows, ncols) = (csr.nrows(), csr.ncols());
        if nrows > 0 && ncols > 0 {
            let mut occupied = vec![false; nrows + ncols - 1];
            let mut diagonals = 0usize;
            for (r, c, _) in csr.iter() {
                let idx = c + nrows - 1 - r;
                if !occupied[idx] {
                    occupied[idx] = true;
                    diagonals += 1;
                }
            }
            stats.diagonals = diagonals;
            stats.dia_size = diagonals * nrows;
        }
        stats
    }

    /// Compute the row-length-derived statistics only (diagonal census left
    /// at zero). Useful for tests and for synthetic workloads where only
    /// row counts are known.
    pub fn from_row_counts(nrows: usize, ncols: usize, counts: &[usize]) -> Self {
        assert_eq!(counts.len(), nrows, "one count per row");
        let nnz: usize = counts.iter().sum();
        let mean = if nrows == 0 {
            0.0
        } else {
            nnz as f64 / nrows as f64
        };
        let nnz_min = counts.iter().copied().min().unwrap_or(0);
        let nnz_max = counts.iter().copied().max().unwrap_or(0);

        let mut var_sum = 0.0;
        let mut lower_sum = 0.0;
        let mut lower_n = 0usize;
        let mut higher_sum = 0.0;
        let mut higher_n = 0usize;
        for &c in counts {
            let d = c as f64 - mean;
            var_sum += d * d;
            if d < 0.0 {
                lower_sum += d * d;
                lower_n += 1;
            } else if d > 0.0 {
                higher_sum += d * d;
                higher_n += 1;
            }
        }
        let nnz_std = if nrows == 0 {
            0.0
        } else {
            (var_sum / nrows as f64).sqrt()
        };
        let sig_lower = if lower_n == 0 {
            0.0
        } else {
            (lower_sum / lower_n as f64).sqrt()
        };
        let sig_higher = if higher_n == 0 {
            0.0
        } else {
            (higher_sum / higher_n as f64).sqrt()
        };

        let csr_max = counts
            .chunks(WARP_ROWS)
            .map(|w| w.iter().sum::<usize>())
            .max()
            .unwrap_or(0);

        let hyb_ell_width = spsel_matrix::hyb::optimal_ell_width(
            counts,
            DEFAULT_RELATIVE_SPEED,
            DEFAULT_BREAKEVEN_THRESHOLD,
        );
        let hyb_ell_nnz: usize = counts.iter().map(|&c| c.min(hyb_ell_width)).sum();

        MatrixStats {
            nrows,
            ncols,
            nnz,
            nnz_min,
            nnz_max,
            nnz_mean: mean,
            nnz_std,
            sig_lower,
            sig_higher,
            csr_max,
            hyb_ell_width,
            hyb_ell_size: hyb_ell_width * nrows,
            hyb_ell_nnz,
            hyb_coo_nnz: nnz - hyb_ell_nnz,
            diagonals: 0,
            dia_size: 0,
            ell_size: nnz_max * nrows,
        }
    }

    /// Fraction of positions that are nonzero (`nnz / (nrows * ncols)`).
    pub fn density(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz as f64 / cells
        }
    }

    /// Fraction of true nonzeros in a pure ELL slab (paper's `ell_frac`).
    pub fn ell_fraction(&self) -> f64 {
        if self.ell_size == 0 {
            1.0
        } else {
            self.nnz as f64 / self.ell_size as f64
        }
    }

    /// Fraction of DIA slots that are true nonzeros (paper's `dia_frac`).
    pub fn dia_fraction(&self) -> f64 {
        if self.dia_size == 0 {
            1.0
        } else {
            self.nnz as f64 / self.dia_size as f64
        }
    }

    /// Fraction of nonzeros stored in the HYB ELL part (paper's
    /// `hyb_ell_frac`).
    pub fn hyb_ell_fraction(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.hyb_ell_nnz as f64 / self.nnz as f64
        }
    }

    /// Bytes each benchmarked format would occupy; consumed by the GPU
    /// model's out-of-memory checks. Order matches [`spsel_matrix::Format::ALL`].
    pub fn format_bytes(&self) -> [usize; 4] {
        let coo = self.nnz * 16;
        let csr = (self.nrows + 1) * 8 + self.nnz * 12;
        let ell = self.ell_size * 12;
        let hyb = self.hyb_ell_size * 12 + self.hyb_coo_nnz * 16;
        [coo, csr, ell, hyb]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_matrix::gen;

    #[test]
    fn uniform_rows_have_zero_std() {
        let s = MatrixStats::from_row_counts(4, 10, &[3, 3, 3, 3]);
        assert_eq!(s.nnz, 12);
        assert_eq!(s.nnz_std, 0.0);
        assert_eq!(s.sig_lower, 0.0);
        assert_eq!(s.sig_higher, 0.0);
        assert_eq!(s.nnz_min, 3);
        assert_eq!(s.nnz_max, 3);
        assert_eq!(s.ell_size, 12);
        assert!((s.ell_fraction() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn skewed_rows_split_sigmas() {
        // counts: [0, 0, 0, 8] -> mean 2
        let s = MatrixStats::from_row_counts(4, 10, &[0, 0, 0, 8]);
        assert!((s.nnz_mean - 2.0).abs() < 1e-15);
        assert!((s.sig_lower - 2.0).abs() < 1e-15); // rows below mean deviate by 2
        assert!((s.sig_higher - 6.0).abs() < 1e-15); // one row deviates by 6
        assert!(s.nnz_std > s.sig_lower && s.nnz_std < s.sig_higher);
    }

    #[test]
    fn csr_max_covers_warp_chunks() {
        // 64 rows of 1 plus one warp with a heavy row.
        let mut counts = vec![1usize; 64];
        counts[40] = 100;
        let s = MatrixStats::from_row_counts(64, 1000, &counts);
        // Warp 1 (rows 32..64) holds 31 * 1 + 100 = 131.
        assert_eq!(s.csr_max, 131);
    }

    #[test]
    fn diagonal_census_matches_dia() {
        let coo = gen::multi_diagonal(40, 7, 3);
        let csr = CsrMatrix::from(&coo);
        let s = MatrixStats::from_csr(&csr);
        let dia = spsel_matrix::DiaMatrix::try_from_csr(&csr, 64).unwrap();
        assert_eq!(s.diagonals, dia.num_diagonals());
        assert_eq!(s.dia_size, dia.storage_size());
        assert!((s.dia_fraction() - dia.fill_fraction()).abs() < 1e-15);
    }

    #[test]
    fn hyb_split_matches_hyb_matrix() {
        let coo = gen::row_skewed(200, 1000, 3, 120, 0.05, 9);
        let csr = CsrMatrix::from(&coo);
        let s = MatrixStats::from_csr(&csr);
        let hyb = spsel_matrix::HybMatrix::from_csr(&csr);
        assert_eq!(s.hyb_ell_width, hyb.ell_width());
        assert_eq!(s.hyb_ell_size, hyb.ell_slab_size());
        assert_eq!(s.hyb_coo_nnz, hyb.coo_nnz());
        assert_eq!(s.hyb_ell_nnz, hyb.ell_nnz());
    }

    #[test]
    fn ell_size_matches_ell_matrix() {
        let coo = gen::random_uniform(64, 64, 6, 4);
        let csr = CsrMatrix::from(&coo);
        let s = MatrixStats::from_csr(&csr);
        let ell = spsel_matrix::EllMatrix::try_from_csr(&csr).unwrap();
        assert_eq!(s.ell_size, ell.slab_size());
        assert!((s.ell_fraction() - ell.fill_fraction()).abs() < 1e-15);
    }

    #[test]
    fn format_bytes_match_structures() {
        let coo = gen::banded(100, 4, 0.8, 5);
        let csr = CsrMatrix::from(&coo);
        let s = MatrixStats::from_csr(&csr);
        let [coo_b, csr_b, ell_b, hyb_b] = s.format_bytes();
        assert_eq!(coo_b, coo.memory_bytes());
        assert_eq!(csr_b, csr.memory_bytes());
        let ell = spsel_matrix::EllMatrix::try_from_csr(&csr).unwrap();
        assert_eq!(ell_b, ell.memory_bytes());
        let hyb = spsel_matrix::HybMatrix::from_csr(&csr);
        assert_eq!(hyb_b, hyb.memory_bytes());
    }

    #[test]
    fn empty_matrix_stats() {
        let s = MatrixStats::from_row_counts(0, 0, &[]);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.ell_fraction(), 1.0);
    }

    #[test]
    fn density() {
        let s = MatrixStats::from_row_counts(2, 5, &[2, 3]);
        assert!((s.density() - 0.5).abs() < 1e-15);
    }
}
