//! Min-max scaling of feature columns to `[0, 1]`.
//!
//! Distance-based methods (K-Means, KNN, Mean-Shift, Birch) need features
//! on a common scale; tree-based classifiers do not care. The scaler is fit
//! on training rows and clamps unseen out-of-range values into `[0, 1]` so
//! inference-time outliers cannot explode distances.

use serde::{Deserialize, Serialize};

/// Per-column min-max scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit column ranges on training rows.
    ///
    /// # Panics
    /// Panics if `rows` is empty or rows have inconsistent widths.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need training rows to fit scaler");
        let dim = rows[0].len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for r in rows {
            assert_eq!(r.len(), dim, "row width mismatch");
            for j in 0..dim {
                mins[j] = mins[j].min(r[j]);
                maxs[j] = maxs[j].max(r[j]);
            }
        }
        MinMaxScaler { mins, maxs }
    }

    /// Fit column ranges over `n` rows produced on demand: `fill(i, buf)`
    /// writes row `i` into the single reused buffer. Lets callers fit on
    /// derived rows (e.g. transformed features) without materializing
    /// them; visits rows in index order, so the result is bit-identical
    /// to [`MinMaxScaler::fit`] on the materialized rows.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn fit_with(n: usize, dim: usize, mut fill: impl FnMut(usize, &mut [f64])) -> Self {
        assert!(n > 0, "need training rows to fit scaler");
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        let mut buf = vec![0.0; dim];
        for i in 0..n {
            fill(i, &mut buf);
            for j in 0..dim {
                mins[j] = mins[j].min(buf[j]);
                maxs[j] = maxs[j].max(buf[j]);
            }
        }
        MinMaxScaler { mins, maxs }
    }

    /// Number of columns.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Fitted column minima.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Fitted column maxima.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Scale a row in place, clamping to `[0, 1]`. Constant columns map
    /// to `0.0`.
    pub fn transform_in_place(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.dim(), "row width mismatch");
        for j in 0..row.len() {
            let range = self.maxs[j] - self.mins[j];
            row[j] = if range <= 0.0 {
                0.0
            } else {
                ((row[j] - self.mins[j]) / range).clamp(0.0, 1.0)
            };
        }
    }

    /// Scale a row into a new vector.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.transform_in_place(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 10.0, 5.0],
            vec![2.0, 30.0, 5.0],
            vec![1.0, 20.0, 5.0],
        ]
    }

    #[test]
    fn training_rows_map_into_unit_interval() {
        let s = MinMaxScaler::fit(&rows());
        for r in rows() {
            for v in s.transform(&r) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(s.transform(&[0.0, 10.0, 5.0]), vec![0.0, 0.0, 0.0]);
        assert_eq!(s.transform(&[2.0, 30.0, 5.0]), vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let s = MinMaxScaler::fit(&rows());
        assert_eq!(s.transform(&[1.0, 20.0, 123.0])[2], 0.0);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let s = MinMaxScaler::fit(&rows());
        let t = s.transform(&[-10.0, 100.0, 5.0]);
        assert_eq!(t[0], 0.0);
        assert_eq!(t[1], 1.0);
    }

    #[test]
    fn midpoint_scales_linearly() {
        let s = MinMaxScaler::fit(&rows());
        let t = s.transform(&[1.0, 20.0, 5.0]);
        assert!((t[0] - 0.5).abs() < 1e-15);
        assert!((t[1] - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn fit_panics_on_empty() {
        MinMaxScaler::fit(&[]);
    }
}
