//! Density-image rasterization of a sparse matrix.
//!
//! The CNN baseline encodes each matrix as a fixed-size image, as in the
//! deep-learning format-selection work the paper reimplements: the matrix
//! is divided into a `res x res` grid of cells, nonzeros are counted per
//! cell, and counts are log-compressed and normalized to `[0, 1]`.

use serde::{Deserialize, Serialize};
use spsel_matrix::{CsrMatrix, SpMv};

/// Default image resolution used by the CNN baseline.
pub const DEFAULT_RESOLUTION: usize = 32;

/// A normalized `res x res` density image of a sparse matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityImage {
    res: usize,
    /// Row-major pixel values in `[0, 1]`.
    pixels: Vec<f32>,
}

impl DensityImage {
    /// Rasterize a CSR matrix onto a `res x res` grid.
    pub fn from_csr(csr: &CsrMatrix, res: usize) -> Self {
        assert!(res > 0, "resolution must be positive");
        let mut counts = vec![0u32; res * res];
        let (nrows, ncols) = (csr.nrows().max(1), csr.ncols().max(1));
        for (r, c, _) in csr.iter() {
            // Map (r, c) to a cell; the multiply-first form avoids rounding
            // bias for matrices smaller than the grid.
            let pr = (r * res) / nrows;
            let pc = (c * res) / ncols;
            counts[pr * res + pc] += 1;
        }
        let max_log = counts
            .iter()
            .map(|&c| (1.0 + c as f32).ln())
            .fold(0.0f32, f32::max);
        let pixels = counts
            .iter()
            .map(|&c| {
                if max_log <= 0.0 {
                    0.0
                } else {
                    (1.0 + c as f32).ln() / max_log
                }
            })
            .collect();
        DensityImage { res, pixels }
    }

    /// Grid resolution.
    pub fn resolution(&self) -> usize {
        self.res
    }

    /// Row-major pixel slice, values in `[0, 1]`.
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Pixel at grid position `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.pixels[row * self.res + col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_matrix::{gen, CooMatrix};

    #[test]
    fn pixels_are_normalized() {
        let csr = CsrMatrix::from(&gen::power_law(200, 200, 2, 2.0, 100, 3));
        let img = DensityImage::from_csr(&csr, 16);
        assert_eq!(img.pixels().len(), 256);
        let max = img.pixels().iter().cloned().fold(0.0f32, f32::max);
        assert!((max - 1.0).abs() < 1e-6);
        assert!(img.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn diagonal_matrix_lights_diagonal_cells() {
        let t: Vec<_> = (0..64).map(|i| (i, i, 1.0)).collect();
        let csr = CsrMatrix::from(&CooMatrix::from_triplets(64, 64, &t).unwrap());
        let img = DensityImage::from_csr(&csr, 8);
        for i in 0..8 {
            for j in 0..8 {
                if i == j {
                    assert!(img.get(i, j) > 0.0);
                } else {
                    assert_eq!(img.get(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn empty_matrix_is_black() {
        let csr = CsrMatrix::from(&CooMatrix::zeros(10, 10));
        let img = DensityImage::from_csr(&csr, 4);
        assert!(img.pixels().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn permutation_changes_image() {
        // The augmentation rationale: permuted instances give the CNN a
        // different view of the same matrix.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let coo = gen::banded(128, 2, 1.0, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let permuted = spsel_matrix::permute::random_permuted(&coo, &mut rng);
        let a = DensityImage::from_csr(&CsrMatrix::from(&coo), 16);
        let b = DensityImage::from_csr(&CsrMatrix::from(&permuted), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn matrix_smaller_than_grid() {
        let csr =
            CsrMatrix::from(&CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap());
        let img = DensityImage::from_csr(&csr, 8);
        assert!(img.get(0, 0) > 0.0);
        assert!(img.get(4, 4) > 0.0);
    }
}
