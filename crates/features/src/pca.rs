//! Principal component analysis via cyclic Jacobi eigendecomposition.
//!
//! The feature space is tiny (21 dimensions), so a dense symmetric Jacobi
//! solver is simple, dependency-free, and numerically robust. The paper
//! projects the transformed, scaled features onto the top 8 components
//! before clustering.

use serde::{Deserialize, Serialize};

/// A fitted PCA projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    /// Column means of the training data (length `dim`).
    mean: Vec<f64>,
    /// Principal axes, row-major `k x dim`, orthonormal rows sorted by
    /// decreasing eigenvalue.
    components: Vec<Vec<f64>>,
    /// Eigenvalues (variances) of the kept components.
    explained_variance: Vec<f64>,
    /// Total variance of the training data (sum of all eigenvalues).
    total_variance: f64,
}

/// Jacobi eigendecomposition of a symmetric matrix (row-major `n x n`).
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as rows, sorted
/// by decreasing eigenvalue.
pub fn symmetric_eigen(a: &[Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    let mut m: Vec<Vec<f64>> = a.to_vec();
    // v starts as identity; accumulates rotations (columns are eigenvectors).
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i][j] * m[i][j];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if m[p][q].abs() < 1e-300 {
                    continue;
                }
                // Classical Jacobi rotation zeroing m[p][q].
                let theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let (mkp, mkq) = (m[k][p], m[k][q]);
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let (mpk, mqk) = (m[p][k], m[q][k]);
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let (vkp, vkq) = (v[k][p], v[k][q]);
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|i| (m[i][i], (0..n).map(|k| v[k][i]).collect()))
        .collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let eigenvalues = pairs.iter().map(|(e, _)| *e).collect();
    let eigenvectors = pairs.into_iter().map(|(_, v)| v).collect();
    (eigenvalues, eigenvectors)
}

impl Pca {
    /// Fit a `k`-component PCA on training rows.
    ///
    /// # Panics
    /// Panics if `rows` is empty, rows have inconsistent widths, or
    /// `k == 0`. `k` is clamped to the data dimension.
    pub fn fit(rows: &[Vec<f64>], k: usize) -> Self {
        assert!(!rows.is_empty(), "need training rows to fit PCA");
        assert!(k > 0, "need at least one component");
        let n = rows.len();
        let dim = rows[0].len();
        let k = k.min(dim);

        let mut mean = vec![0.0; dim];
        for r in rows {
            assert_eq!(r.len(), dim, "row width mismatch");
            for j in 0..dim {
                mean[j] += r[j];
            }
        }
        for mj in mean.iter_mut() {
            *mj /= n as f64;
        }

        // Covariance matrix (population normalization; the constant factor
        // does not affect component directions).
        let mut cov = vec![vec![0.0; dim]; dim];
        for r in rows {
            for i in 0..dim {
                let di = r[i] - mean[i];
                for j in i..dim {
                    cov[i][j] += di * (r[j] - mean[j]);
                }
            }
        }
        for i in 0..dim {
            for j in i..dim {
                cov[i][j] /= n as f64;
                cov[j][i] = cov[i][j];
            }
        }

        let (eigenvalues, eigenvectors) = symmetric_eigen(&cov);
        let total_variance: f64 = eigenvalues.iter().map(|e| e.max(0.0)).sum();
        Pca {
            mean,
            components: eigenvectors.into_iter().take(k).collect(),
            explained_variance: eigenvalues
                .into_iter()
                .take(k)
                .map(|e| e.max(0.0))
                .collect(),
            total_variance,
        }
    }

    /// Number of kept components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Variance captured by each kept component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by the kept components.
    pub fn explained_variance_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            1.0
        } else {
            self.explained_variance.iter().sum::<f64>() / self.total_variance
        }
    }

    /// Project a row onto the kept components.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim(), "row width mismatch");
        self.components
            .iter()
            .map(|comp| {
                comp.iter()
                    .zip(row.iter().zip(&self.mean))
                    .map(|(c, (x, m))| c * (x - m))
                    .sum()
            })
            .collect()
    }

    /// Map a projected point back into the original space (lossy if
    /// `k < dim`).
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.k(), "component count mismatch");
        let mut out = self.mean.clone();
        for (zi, comp) in z.iter().zip(&self.components) {
            for (o, c) in out.iter_mut().zip(comp) {
                *o += zi * c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let (vals, vecs) = symmetric_eigen(&a);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 2.0).abs() < 1e-10);
        assert!((vals[2] - 1.0).abs() < 1e-10);
        assert!((vecs[0][0].abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_satisfies_definition() {
        let a = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -0.2],
            vec![0.5, -0.2, 1.0],
        ];
        let (vals, vecs) = symmetric_eigen(&a);
        for (lambda, v) in vals.iter().zip(&vecs) {
            // || A v - lambda v || small
            for i in 0..3 {
                let av: f64 = (0..3).map(|j| a[i][j] * v[j]).sum();
                assert!((av - lambda * v[i]).abs() < 1e-8);
            }
        }
        // Orthonormal eigenvectors.
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot(&vecs[i], &vecs[j]) - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along the (1, 1) diagonal with tiny orthogonal noise.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = i as f64 / 10.0;
                let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![t + noise, t - noise]
            })
            .collect();
        let pca = Pca::fit(&rows, 1);
        assert_eq!(pca.k(), 1);
        // First axis should be close to (1, 1)/sqrt(2) up to sign.
        let c = &pca.transform(&[1.0 + rows[0][0], 1.0 + rows[0][1]]);
        let c0 = &pca.transform(&[rows[0][0], rows[0][1]]);
        assert!(
            (c[0] - c0[0]).abs() > 1.0,
            "diagonal step should move the projection strongly"
        );
        assert!(pca.explained_variance_ratio() > 0.99);
    }

    #[test]
    fn transform_inverse_roundtrip_full_rank() {
        let rows = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 7.0],
            vec![-1.0, 0.5, 2.0],
            vec![2.0, -2.0, 1.0],
        ];
        let pca = Pca::fit(&rows, 3);
        for r in &rows {
            let back = pca.inverse_transform(&pca.transform(r));
            for (a, b) in r.iter().zip(&back) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn k_is_clamped_to_dim() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]];
        let pca = Pca::fit(&rows, 10);
        assert_eq!(pca.k(), 2);
    }

    #[test]
    fn projection_of_mean_is_origin() {
        let rows = vec![vec![2.0, 4.0], vec![4.0, 8.0], vec![6.0, 6.0]];
        let pca = Pca::fit(&rows, 2);
        let mean = [4.0, 6.0];
        for z in pca.transform(&mean) {
            assert!(z.abs() < 1e-10);
        }
    }

    #[test]
    fn constant_data_yields_zero_variance() {
        let rows = vec![vec![5.0, 5.0]; 10];
        let pca = Pca::fit(&rows, 2);
        assert!(pca.explained_variance().iter().all(|&v| v.abs() < 1e-12));
        assert_eq!(pca.explained_variance_ratio(), 1.0);
    }
}
