//! Principal component analysis via cyclic Jacobi eigendecomposition.
//!
//! The feature space is tiny (21 dimensions), so a dense symmetric Jacobi
//! solver is simple, dependency-free, and numerically robust. The paper
//! projects the transformed, scaled features onto the top 8 components
//! before clustering.

/// A fitted PCA projection.
///
/// The kept components live in one contiguous row-major `k x dim` buffer
/// so a projection walks a single cache-resident block instead of
/// pointer-chasing per-component `Vec`s. The serialized form keeps the
/// original nested `components` shape (hand-written impls below), so
/// artifacts written before the flat layout load unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    /// Column means of the training data (length `dim`).
    mean: Vec<f64>,
    /// Principal axes, flat row-major `k x dim`, orthonormal rows sorted
    /// by decreasing eigenvalue.
    components: Vec<f64>,
    /// Number of kept components.
    k: usize,
    /// Eigenvalues (variances) of the kept components.
    explained_variance: Vec<f64>,
    /// Total variance of the training data (sum of all eigenvalues).
    total_variance: f64,
}

// The wire shape is the historic one — `components` as nested rows, same
// field names and order — so model artifacts serialized before the flat
// layout deserialize unchanged and re-serialized artifacts are
// byte-identical.
impl serde::Serialize for Pca {
    fn to_value(&self) -> serde::Value {
        let dim = self.mean.len();
        let nested: Vec<Vec<f64>> = if dim == 0 {
            vec![Vec::new(); self.k]
        } else {
            self.components.chunks(dim).map(|c| c.to_vec()).collect()
        };
        serde::Value::Object(vec![
            ("mean".to_string(), self.mean.to_value()),
            ("components".to_string(), nested.to_value()),
            (
                "explained_variance".to_string(),
                self.explained_variance.to_value(),
            ),
            ("total_variance".to_string(), self.total_variance.to_value()),
        ])
    }
}

impl serde::Deserialize for Pca {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = serde::expect_object(v, "Pca")?;
        let mean: Vec<f64> = serde::get_field(obj, "mean", "Pca")?;
        let nested: Vec<Vec<f64>> = serde::get_field(obj, "components", "Pca")?;
        let k = nested.len();
        Ok(Pca {
            mean,
            components: nested.into_iter().flatten().collect(),
            k,
            explained_variance: serde::get_field(obj, "explained_variance", "Pca")?,
            total_variance: serde::get_field(obj, "total_variance", "Pca")?,
        })
    }
}

/// Jacobi eigendecomposition of a symmetric matrix (row-major `n x n`).
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as rows, sorted
/// by decreasing eigenvalue.
pub fn symmetric_eigen(a: &[Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    let mut m: Vec<Vec<f64>> = a.to_vec();
    // v starts as identity; accumulates rotations (columns are eigenvectors).
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i][j] * m[i][j];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if m[p][q].abs() < 1e-300 {
                    continue;
                }
                // Classical Jacobi rotation zeroing m[p][q].
                let theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let (mkp, mkq) = (m[k][p], m[k][q]);
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let (mpk, mqk) = (m[p][k], m[q][k]);
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let (vkp, vkq) = (v[k][p], v[k][q]);
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|i| (m[i][i], (0..n).map(|k| v[k][i]).collect()))
        .collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let eigenvalues = pairs.iter().map(|(e, _)| *e).collect();
    let eigenvectors = pairs.into_iter().map(|(_, v)| v).collect();
    (eigenvalues, eigenvectors)
}

impl Pca {
    /// Fit a `k`-component PCA on training rows.
    ///
    /// # Panics
    /// Panics if `rows` is empty, rows have inconsistent widths, or
    /// `k == 0`. `k` is clamped to the data dimension.
    pub fn fit(rows: &[Vec<f64>], k: usize) -> Self {
        assert!(!rows.is_empty(), "need training rows to fit PCA");
        let dim = rows[0].len();
        for r in rows {
            assert_eq!(r.len(), dim, "row width mismatch");
        }
        Self::fit_with(rows.len(), dim, k, |i, buf| buf.copy_from_slice(&rows[i]))
    }

    /// Fit a `k`-component PCA over `n` rows produced on demand:
    /// `fill(i, buf)` writes row `i` into the single reused buffer (it is
    /// called twice per row — mean pass, then covariance pass). Visits
    /// rows in index order with the same accumulation, so the fitted
    /// projection is bit-identical to [`Pca::fit`] on materialized rows.
    ///
    /// # Panics
    /// Panics if `n == 0` or `k == 0`. `k` is clamped to `dim`.
    pub fn fit_with(
        n: usize,
        dim: usize,
        k: usize,
        mut fill: impl FnMut(usize, &mut [f64]),
    ) -> Self {
        assert!(n > 0, "need training rows to fit PCA");
        assert!(k > 0, "need at least one component");
        let k = k.min(dim);

        let mut buf = vec![0.0; dim];
        let mut mean = vec![0.0; dim];
        for i in 0..n {
            fill(i, &mut buf);
            for j in 0..dim {
                mean[j] += buf[j];
            }
        }
        for mj in mean.iter_mut() {
            *mj /= n as f64;
        }

        // Covariance matrix (population normalization; the constant factor
        // does not affect component directions).
        let mut cov = vec![vec![0.0; dim]; dim];
        for r in 0..n {
            fill(r, &mut buf);
            for i in 0..dim {
                let di = buf[i] - mean[i];
                for j in i..dim {
                    cov[i][j] += di * (buf[j] - mean[j]);
                }
            }
        }
        for i in 0..dim {
            for j in i..dim {
                cov[i][j] /= n as f64;
                cov[j][i] = cov[i][j];
            }
        }

        let (eigenvalues, eigenvectors) = symmetric_eigen(&cov);
        let total_variance: f64 = eigenvalues.iter().map(|e| e.max(0.0)).sum();
        Pca {
            mean,
            components: eigenvectors.into_iter().take(k).flatten().collect(),
            k,
            explained_variance: eigenvalues
                .into_iter()
                .take(k)
                .map(|e| e.max(0.0))
                .collect(),
            total_variance,
        }
    }

    /// Number of kept components.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Variance captured by each kept component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by the kept components.
    pub fn explained_variance_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            1.0
        } else {
            self.explained_variance.iter().sum::<f64>() / self.total_variance
        }
    }

    /// Project a row onto the kept components.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.k];
        self.transform_into(row, &mut out);
        out
    }

    /// Project a row into a caller-provided buffer of length `k`,
    /// allocation-free. Each output is the sequential dot product
    /// `sum_j c[j] * (x[j] - m[j])` in increasing `j` from 0.0 — the same
    /// accumulation order as the historic nested-`Vec` path, so results
    /// are bit-identical.
    pub fn transform_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(row.len(), self.dim(), "row width mismatch");
        assert_eq!(out.len(), self.k, "output width mismatch");
        let dim = self.dim();
        for (i, o) in out.iter_mut().enumerate() {
            let comp = &self.components[i * dim..(i + 1) * dim];
            let mut acc = 0.0;
            for j in 0..dim {
                acc += comp[j] * (row[j] - self.mean[j]);
            }
            *o = acc;
        }
    }

    /// Map a projected point back into the original space (lossy if
    /// `k < dim`).
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.k(), "component count mismatch");
        let dim = self.dim();
        let mut out = self.mean.clone();
        for (zi, comp) in z.iter().zip(self.components.chunks_exact(dim)) {
            for (o, c) in out.iter_mut().zip(comp) {
                *o += zi * c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let (vals, vecs) = symmetric_eigen(&a);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 2.0).abs() < 1e-10);
        assert!((vals[2] - 1.0).abs() < 1e-10);
        assert!((vecs[0][0].abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_satisfies_definition() {
        let a = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -0.2],
            vec![0.5, -0.2, 1.0],
        ];
        let (vals, vecs) = symmetric_eigen(&a);
        for (lambda, v) in vals.iter().zip(&vecs) {
            // || A v - lambda v || small
            for i in 0..3 {
                let av: f64 = (0..3).map(|j| a[i][j] * v[j]).sum();
                assert!((av - lambda * v[i]).abs() < 1e-8);
            }
        }
        // Orthonormal eigenvectors.
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot(&vecs[i], &vecs[j]) - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along the (1, 1) diagonal with tiny orthogonal noise.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = i as f64 / 10.0;
                let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![t + noise, t - noise]
            })
            .collect();
        let pca = Pca::fit(&rows, 1);
        assert_eq!(pca.k(), 1);
        // First axis should be close to (1, 1)/sqrt(2) up to sign.
        let c = &pca.transform(&[1.0 + rows[0][0], 1.0 + rows[0][1]]);
        let c0 = &pca.transform(&[rows[0][0], rows[0][1]]);
        assert!(
            (c[0] - c0[0]).abs() > 1.0,
            "diagonal step should move the projection strongly"
        );
        assert!(pca.explained_variance_ratio() > 0.99);
    }

    #[test]
    fn transform_inverse_roundtrip_full_rank() {
        let rows = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 7.0],
            vec![-1.0, 0.5, 2.0],
            vec![2.0, -2.0, 1.0],
        ];
        let pca = Pca::fit(&rows, 3);
        for r in &rows {
            let back = pca.inverse_transform(&pca.transform(r));
            for (a, b) in r.iter().zip(&back) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn k_is_clamped_to_dim() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]];
        let pca = Pca::fit(&rows, 10);
        assert_eq!(pca.k(), 2);
    }

    #[test]
    fn projection_of_mean_is_origin() {
        let rows = vec![vec![2.0, 4.0], vec![4.0, 8.0], vec![6.0, 6.0]];
        let pca = Pca::fit(&rows, 2);
        let mean = [4.0, 6.0];
        for z in pca.transform(&mean) {
            assert!(z.abs() < 1e-10);
        }
    }

    #[test]
    fn constant_data_yields_zero_variance() {
        let rows = vec![vec![5.0, 5.0]; 10];
        let pca = Pca::fit(&rows, 2);
        assert!(pca.explained_variance().iter().all(|&v| v.abs() < 1e-12));
        assert_eq!(pca.explained_variance_ratio(), 1.0);
    }

    #[test]
    fn wire_shape_is_nested_and_round_trips() {
        use serde::{Deserialize, Serialize, Value};
        let rows = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 0.5, 6.0],
            vec![7.0, 8.0, 0.25],
            vec![2.0, 9.0, 4.0],
        ];
        let pca = Pca::fit(&rows, 2);

        // The artifact format predates the flat component buffer: an
        // object with these exact field names in this exact order, with
        // `components` as one nested row per kept component.
        let v = pca.to_value();
        let Value::Object(fields) = &v else {
            panic!("expected object")
        };
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            names,
            ["mean", "components", "explained_variance", "total_variance"]
        );
        let Value::Array(comps) = &fields[1].1 else {
            panic!("components must be nested rows")
        };
        assert_eq!(comps.len(), pca.k());

        let back = Pca::from_value(&v).unwrap();
        assert_eq!(back, pca);
        for (a, b) in back.transform(&rows[0]).iter().zip(pca.transform(&rows[0])) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
