//! The 21 statistical features of Table 1 in the paper.

use crate::MatrixStats;
use serde::{Deserialize, Serialize};
use spsel_matrix::CsrMatrix;

/// Number of features in Table 1.
pub const NUM_FEATURES: usize = 21;

/// Identifier of a Table 1 feature; `FeatureId::ALL` matches the table's
/// row order exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureId {
    /// Number of rows.
    NRows,
    /// Number of columns.
    NCols,
    /// Number of nonzeros.
    Nnz,
    /// Fraction of nonzeros (density).
    NnzFrac,
    /// Average number of nonzeros per row.
    NnzMu,
    /// Minimum number of nonzeros per row.
    NnzMin,
    /// Maximum number of nonzeros per row.
    NnzMax,
    /// Standard deviation of nonzeros per row.
    NnzSig,
    /// `nnz_max - nnz_mu`.
    MaxMu,
    /// `nnz_mu - nnz_min`.
    MuMin,
    /// Maximum nonzeros a warp processes in the scalar CSR kernel.
    CsrMax,
    /// RMS deviation of row counts below the mean.
    SigLower,
    /// RMS deviation of row counts above the mean.
    SigHigher,
    /// Slab size of the ELL part of the HYB representation.
    HybEllSize,
    /// Nonzeros in the COO part of the HYB representation.
    HybCoo,
    /// Fraction of nonzeros stored in the ELL part of HYB.
    HybEllFrac,
    /// Number of non-empty diagonals.
    Diagonals,
    /// Entries a DIA structure would store.
    DiaSize,
    /// Fraction of DIA entries that are true nonzeros.
    DiaFrac,
    /// Fraction of true nonzeros in the ELL slab.
    EllFrac,
    /// Size of the ELL slab.
    EllSize,
}

impl FeatureId {
    /// All features in Table 1 order.
    pub const ALL: [FeatureId; NUM_FEATURES] = [
        FeatureId::NRows,
        FeatureId::NCols,
        FeatureId::Nnz,
        FeatureId::NnzFrac,
        FeatureId::NnzMu,
        FeatureId::NnzMin,
        FeatureId::NnzMax,
        FeatureId::NnzSig,
        FeatureId::MaxMu,
        FeatureId::MuMin,
        FeatureId::CsrMax,
        FeatureId::SigLower,
        FeatureId::SigHigher,
        FeatureId::HybEllSize,
        FeatureId::HybCoo,
        FeatureId::HybEllFrac,
        FeatureId::Diagonals,
        FeatureId::DiaSize,
        FeatureId::DiaFrac,
        FeatureId::EllFrac,
        FeatureId::EllSize,
    ];

    /// Position in [`FeatureId::ALL`]. The enum declares its variants in
    /// Table 1 order, so the discriminant *is* the position — a constant-
    /// time cast instead of a scan (`all_ids_index_by_discriminant` pins
    /// the declaration order to `ALL`).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The paper's snake_case feature name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureId::NRows => "nrows",
            FeatureId::NCols => "ncols",
            FeatureId::Nnz => "nnz",
            FeatureId::NnzFrac => "nnz_frac",
            FeatureId::NnzMu => "nnz_mu",
            FeatureId::NnzMin => "nnz_min",
            FeatureId::NnzMax => "nnz_max",
            FeatureId::NnzSig => "nnz_sig",
            FeatureId::MaxMu => "max_mu",
            FeatureId::MuMin => "mu_min",
            FeatureId::CsrMax => "csr_max",
            FeatureId::SigLower => "sig_lower",
            FeatureId::SigHigher => "sig_higher",
            FeatureId::HybEllSize => "hyb_ell_size",
            FeatureId::HybCoo => "hyb_coo",
            FeatureId::HybEllFrac => "hyb_ell_frac",
            FeatureId::Diagonals => "diagonals",
            FeatureId::DiaSize => "dia_size",
            FeatureId::DiaFrac => "dia_frac",
            FeatureId::EllFrac => "ell_frac",
            FeatureId::EllSize => "ell_size",
        }
    }

    /// Whether this feature's value distribution over a realistic corpus is
    /// heavy-tailed (counts and sizes follow power laws over matrices of
    /// wildly different scales). These get a `log1p` transform by default;
    /// the remaining bounded fraction-like features keep their scale.
    pub fn is_heavy_tailed(self) -> bool {
        !matches!(
            self,
            FeatureId::NnzFrac | FeatureId::HybEllFrac | FeatureId::DiaFrac | FeatureId::EllFrac
        )
    }
}

impl std::fmt::Display for FeatureId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A dense vector of the 21 Table 1 features for one matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: [f64; NUM_FEATURES],
}

impl FeatureVector {
    /// Derive the features from precomputed [`MatrixStats`].
    pub fn from_stats(s: &MatrixStats) -> Self {
        let mut v = [0.0; NUM_FEATURES];
        v[FeatureId::NRows.index()] = s.nrows as f64;
        v[FeatureId::NCols.index()] = s.ncols as f64;
        v[FeatureId::Nnz.index()] = s.nnz as f64;
        v[FeatureId::NnzFrac.index()] = s.density();
        v[FeatureId::NnzMu.index()] = s.nnz_mean;
        v[FeatureId::NnzMin.index()] = s.nnz_min as f64;
        v[FeatureId::NnzMax.index()] = s.nnz_max as f64;
        v[FeatureId::NnzSig.index()] = s.nnz_std;
        v[FeatureId::MaxMu.index()] = s.nnz_max as f64 - s.nnz_mean;
        v[FeatureId::MuMin.index()] = s.nnz_mean - s.nnz_min as f64;
        v[FeatureId::CsrMax.index()] = s.csr_max as f64;
        v[FeatureId::SigLower.index()] = s.sig_lower;
        v[FeatureId::SigHigher.index()] = s.sig_higher;
        v[FeatureId::HybEllSize.index()] = s.hyb_ell_size as f64;
        v[FeatureId::HybCoo.index()] = s.hyb_coo_nnz as f64;
        v[FeatureId::HybEllFrac.index()] = s.hyb_ell_fraction();
        v[FeatureId::Diagonals.index()] = s.diagonals as f64;
        v[FeatureId::DiaSize.index()] = s.dia_size as f64;
        v[FeatureId::DiaFrac.index()] = s.dia_fraction();
        v[FeatureId::EllFrac.index()] = s.ell_fraction();
        v[FeatureId::EllSize.index()] = s.ell_size as f64;
        FeatureVector { values: v }
    }

    /// Extract features directly from a CSR matrix (computes stats first).
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        Self::from_stats(&MatrixStats::from_csr(csr))
    }

    /// Wrap a raw value array (for tests and deserialization paths).
    pub fn from_raw(values: [f64; NUM_FEATURES]) -> Self {
        FeatureVector { values }
    }

    /// Value of one feature.
    #[inline]
    pub fn get(&self, id: FeatureId) -> f64 {
        self.values[id.index()]
    }

    /// The full value slice in Table 1 order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Project onto a subset of features, producing a plain vector in the
    /// order given (supervised models use per-model feature subsets).
    pub fn select(&self, ids: &[FeatureId]) -> Vec<f64> {
        ids.iter().map(|&id| self.get(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_matrix::gen;

    #[test]
    fn all_ids_have_unique_indices() {
        let mut seen = [false; NUM_FEATURES];
        for id in FeatureId::ALL {
            assert!(!seen[id.index()], "{id} duplicated");
            seen[id.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn all_ids_index_by_discriminant() {
        // `index()` is a discriminant cast; it is only correct while the
        // enum declaration order matches `ALL` (Table 1 order).
        for (i, id) in FeatureId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i, "{id} out of declaration order");
            assert_eq!(FeatureId::ALL[id.index()], *id);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = FeatureId::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), NUM_FEATURES);
    }

    #[test]
    fn fraction_features_are_bounded() {
        let csr = CsrMatrix::from(&gen::power_law(300, 300, 2, 2.2, 200, 1));
        let fv = FeatureVector::from_csr(&csr);
        for id in [
            FeatureId::NnzFrac,
            FeatureId::HybEllFrac,
            FeatureId::DiaFrac,
            FeatureId::EllFrac,
        ] {
            let v = fv.get(id);
            assert!((0.0..=1.0).contains(&v), "{id} = {v}");
            assert!(!id.is_heavy_tailed());
        }
        assert!(FeatureId::Nnz.is_heavy_tailed());
    }

    #[test]
    fn derived_differences() {
        let csr = CsrMatrix::from(&gen::row_skewed(128, 512, 2, 60, 0.1, 2));
        let fv = FeatureVector::from_csr(&csr);
        let max_mu = fv.get(FeatureId::NnzMax) - fv.get(FeatureId::NnzMu);
        assert!((fv.get(FeatureId::MaxMu) - max_mu).abs() < 1e-12);
        let mu_min = fv.get(FeatureId::NnzMu) - fv.get(FeatureId::NnzMin);
        assert!((fv.get(FeatureId::MuMin) - mu_min).abs() < 1e-12);
    }

    #[test]
    fn select_projects_in_order() {
        let csr = CsrMatrix::from(&gen::stencil2d(8, 0));
        let fv = FeatureVector::from_csr(&csr);
        let sub = fv.select(&[FeatureId::NnzMax, FeatureId::NRows]);
        assert_eq!(
            sub,
            vec![fv.get(FeatureId::NnzMax), fv.get(FeatureId::NRows)]
        );
    }

    #[test]
    fn stencil_features() {
        let csr = CsrMatrix::from(&gen::stencil2d(10, 0));
        let fv = FeatureVector::from_csr(&csr);
        assert_eq!(fv.get(FeatureId::NRows), 100.0);
        assert_eq!(fv.get(FeatureId::NnzMax), 5.0);
        assert_eq!(fv.get(FeatureId::NnzMin), 3.0);
        // 2-D stencil occupies exactly 5 diagonals.
        assert_eq!(fv.get(FeatureId::Diagonals), 5.0);
    }
}
