//! Statistical feature extraction and preprocessing for sparse matrix
//! format selection.
//!
//! Implements the 21 features of Table 1 in the paper, computed in a single
//! O(nnz) pass over a CSR matrix, plus the preprocessing pipeline the
//! paper's semi-supervised method depends on: per-feature log/sqrt
//! transforms for sparsely-distributed features, min-max scaling to
//! `[0, 1]`, and PCA down to an 8-dimensional embedding where Euclidean
//! distance correlates with matrix similarity.
//!
//! ```
//! use spsel_matrix::{gen, CsrMatrix};
//! use spsel_features::{FeatureVector, MatrixStats};
//!
//! let csr = CsrMatrix::from(&gen::stencil2d(16, 0));
//! let stats = MatrixStats::from_csr(&csr);
//! let fv = FeatureVector::from_stats(&stats);
//! assert_eq!(fv.get(spsel_features::FeatureId::NnzMax), 5.0);
//! ```

pub mod extract;
pub mod feature;
pub mod image;
pub mod pca;
pub mod pipeline;
pub mod scale;
pub mod stats;
pub mod transform;

pub use extract::FeatureExtractor;
pub use feature::{FeatureId, FeatureVector, NUM_FEATURES};
pub use image::DensityImage;
pub use pca::Pca;
pub use pipeline::Preprocessor;
pub use scale::MinMaxScaler;
pub use stats::MatrixStats;
pub use transform::{Transform, TransformSet};
