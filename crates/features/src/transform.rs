//! Per-feature variance-stabilizing transforms.
//!
//! The paper's key observation: several Table 1 features follow power-law
//! distributions over a realistic corpus, so Euclidean-distance clustering
//! on raw values degenerates into outlier clusters. A `log` (or `sqrt`)
//! transform applied to sparsely-distributed features before scaling fixes
//! this. [`TransformSet::auto`] reproduces that policy by measuring the
//! skewness of every feature column.

use serde::{Deserialize, Serialize};

/// A monotone per-feature transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transform {
    /// Leave the value unchanged.
    Identity,
    /// `ln(1 + max(x, 0))`: for heavy-tailed counts and sizes.
    Log1p,
    /// `sqrt(max(x, 0))`: for moderately skewed features.
    Sqrt,
}

impl Transform {
    /// Apply the transform to one value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Transform::Identity => x,
            Transform::Log1p => (1.0 + x.max(0.0)).ln(),
            Transform::Sqrt => x.max(0.0).sqrt(),
        }
    }
}

/// Sample skewness `E[(x - mu)^3] / sigma^3` of a value slice.
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let mut m2 = 0.0;
    let mut m3 = 0.0;
    for &x in xs {
        let d = x - mean;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= n as f64;
    m3 /= n as f64;
    if m2 <= 1e-300 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// Skewness above which a column gets `log1p`.
pub const LOG_SKEW_THRESHOLD: f64 = 2.0;
/// Skewness above which a column gets `sqrt`.
pub const SQRT_SKEW_THRESHOLD: f64 = 0.75;

/// One transform per feature column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformSet {
    transforms: Vec<Transform>,
}

impl TransformSet {
    /// All-identity set for `dim` columns.
    pub fn identity(dim: usize) -> Self {
        TransformSet {
            transforms: vec![Transform::Identity; dim],
        }
    }

    /// Explicit per-column transforms.
    pub fn new(transforms: Vec<Transform>) -> Self {
        TransformSet { transforms }
    }

    /// Choose a transform per column from the column's skewness over the
    /// training rows: strongly skewed columns get `log1p`, moderately
    /// skewed ones `sqrt`, the rest are left alone. Accepts owned or
    /// borrowed rows (`&[Vec<f64>]` or `&[&[f64]]`) — fitting never needs
    /// to own the training data.
    pub fn auto<R: AsRef<[f64]>>(rows: &[R]) -> Self {
        assert!(!rows.is_empty(), "need training rows to fit transforms");
        let dim = rows[0].as_ref().len();
        let mut transforms = Vec::with_capacity(dim);
        let mut col = vec![0.0; rows.len()];
        for j in 0..dim {
            for (i, r) in rows.iter().enumerate() {
                col[i] = r.as_ref()[j];
            }
            let sk = skewness(&col);
            transforms.push(if sk > LOG_SKEW_THRESHOLD {
                Transform::Log1p
            } else if sk > SQRT_SKEW_THRESHOLD {
                Transform::Sqrt
            } else {
                Transform::Identity
            });
        }
        TransformSet { transforms }
    }

    /// Number of columns this set covers.
    pub fn dim(&self) -> usize {
        self.transforms.len()
    }

    /// The per-column transforms.
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// Transform a row in place.
    pub fn apply_in_place(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.transforms.len(), "row width mismatch");
        for (x, t) in row.iter_mut().zip(&self.transforms) {
            *x = t.apply(*x);
        }
    }

    /// Transform a row into a new vector.
    pub fn apply(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.apply_in_place(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms_are_monotone() {
        for t in [Transform::Identity, Transform::Log1p, Transform::Sqrt] {
            let mut prev = t.apply(0.0);
            for i in 1..100 {
                let v = t.apply(i as f64 * 0.5);
                assert!(v >= prev, "{t:?} not monotone");
                prev = v;
            }
        }
    }

    #[test]
    fn log1p_of_zero_is_zero() {
        assert_eq!(Transform::Log1p.apply(0.0), 0.0);
        assert_eq!(Transform::Sqrt.apply(0.0), 0.0);
    }

    #[test]
    fn negative_inputs_clamped() {
        assert_eq!(Transform::Log1p.apply(-5.0), 0.0);
        assert_eq!(Transform::Sqrt.apply(-5.0), 0.0);
    }

    #[test]
    fn skewness_of_symmetric_data_is_zero() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-12);
    }

    #[test]
    fn skewness_detects_heavy_tail() {
        // Power-law-ish sample: mostly small values, one huge.
        let mut xs = vec![1.0; 99];
        xs.push(1000.0);
        assert!(skewness(&xs) > 5.0);
    }

    #[test]
    fn skewness_degenerate_cases() {
        assert_eq!(skewness(&[]), 0.0);
        assert_eq!(skewness(&[3.0]), 0.0);
        assert_eq!(skewness(&[2.0, 2.0, 2.0]), 0.0); // zero variance
    }

    #[test]
    fn auto_picks_log_for_power_law_column() {
        // Column 0: power-law; column 1: uniform.
        let rows: Vec<Vec<f64>> = (1..=200)
            .map(|i| {
                let pl = if i % 50 == 0 { 1e6 } else { i as f64 };
                vec![pl, i as f64 % 7.0]
            })
            .collect();
        let ts = TransformSet::auto(&rows);
        assert_eq!(ts.transforms()[0], Transform::Log1p);
        assert_eq!(ts.transforms()[1], Transform::Identity);
    }

    #[test]
    fn apply_respects_columns() {
        let ts = TransformSet::new(vec![Transform::Log1p, Transform::Identity]);
        let out = ts.apply(&[std::f64::consts::E - 1.0, 5.0]);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert_eq!(out[1], 5.0);
    }

    #[test]
    #[should_panic]
    fn apply_panics_on_width_mismatch() {
        TransformSet::identity(3).apply(&[1.0, 2.0]);
    }
}
