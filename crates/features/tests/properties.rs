//! Property-based tests of the feature-extraction and preprocessing
//! invariants the selector relies on.

use proptest::prelude::*;
use spsel_features::{
    FeatureExtractor, FeatureId, FeatureVector, MatrixStats, MinMaxScaler, Pca, Preprocessor,
};
use spsel_matrix::{gen, CooMatrix, CsrMatrix};

/// Random row-count vectors (the input MatrixStats is derived from).
fn arb_counts() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (1usize..40).prop_flat_map(|nrows| {
        proptest::collection::vec(0usize..50, nrows).prop_map(move |c| (nrows, c))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stats_identities_hold((nrows, counts) in arb_counts()) {
        let ncols = 64usize;
        let s = MatrixStats::from_row_counts(nrows, ncols, &counts);
        prop_assert_eq!(s.nnz, counts.iter().sum::<usize>());
        prop_assert!(s.nnz_min <= s.nnz_max);
        prop_assert!(s.nnz_mean >= s.nnz_min as f64 - 1e-12);
        prop_assert!(s.nnz_mean <= s.nnz_max as f64 + 1e-12);
        // ELL slab always at least as large as nnz; HYB parts partition nnz.
        prop_assert!(s.ell_size >= s.nnz);
        prop_assert_eq!(s.hyb_ell_nnz + s.hyb_coo_nnz, s.nnz);
        prop_assert!(s.hyb_ell_size >= s.hyb_ell_nnz);
        // csr_max is between the max row and the whole matrix.
        prop_assert!(s.csr_max >= s.nnz_max);
        prop_assert!(s.csr_max <= s.nnz);
        // Fractions bounded.
        prop_assert!((0.0..=1.0).contains(&s.ell_fraction()));
        prop_assert!((0.0..=1.0).contains(&s.hyb_ell_fraction()));
    }

    #[test]
    fn feature_vector_is_finite((nrows, counts) in arb_counts()) {
        let s = MatrixStats::from_row_counts(nrows, 64, &counts);
        let fv = FeatureVector::from_stats(&s);
        for id in FeatureId::ALL {
            prop_assert!(fv.get(id).is_finite(), "{} not finite", id);
        }
        // Derived differences are consistent.
        let max_mu = fv.get(FeatureId::NnzMax) - fv.get(FeatureId::NnzMu);
        prop_assert!((fv.get(FeatureId::MaxMu) - max_mu).abs() < 1e-9);
    }

    #[test]
    fn scaler_maps_training_rows_into_unit_cube(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 3), 1..40)
    ) {
        let scaler = MinMaxScaler::fit(&rows);
        for r in &rows {
            for v in scaler.transform(r) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn full_rank_pca_preserves_pairwise_distances(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 3), 4..20)
    ) {
        // PCA with k = dim is an isometry up to centering.
        let pca = Pca::fit(&rows, 3);
        if pca.explained_variance().iter().all(|&v| v > 1e-9) {
            let d_orig = dist(&rows[0], &rows[1]);
            let z0 = pca.transform(&rows[0]);
            let z1 = pca.transform(&rows[1]);
            let d_proj = dist(&z0, &z1);
            prop_assert!((d_orig - d_proj).abs() < 1e-6 * (1.0 + d_orig));
        }
    }

    #[test]
    fn single_pass_extractor_bit_identical_on_random_patterns(csr in arb_pattern()) {
        // One shared extractor across cases exercises scratch reuse.
        let mut ex = FeatureExtractor::new();
        assert_extractor_identical(&mut ex, &csr);
    }

    #[test]
    fn single_pass_extractor_bit_identical_on_matrix_families(seed in 0u64..10_000) {
        let s = seed as usize;
        let families = [
            // Empty and degenerate shapes.
            CsrMatrix::from(&CooMatrix::zeros(0, 0)),
            CsrMatrix::from(&CooMatrix::zeros(1 + s % 7, 0)),
            CsrMatrix::from(&CooMatrix::zeros(0, 1 + s % 7)),
            // Single row.
            CsrMatrix::from(&gen::random_uniform(1, 40 + s % 40, 6, seed)),
            // Hub rows (a few very heavy rows over a light background).
            CsrMatrix::from(&gen::row_skewed(60 + s % 60, 150, 2, 40, 0.1, seed)),
            // Banded / diagonal-dominated.
            CsrMatrix::from(&gen::banded(50 + s % 80, 3 + s % 4, 0.8, seed)),
            // Power-law degree distribution.
            CsrMatrix::from(&gen::power_law(80 + s % 80, 90, 2, 2.2, 50, seed)),
            // Uniform random.
            CsrMatrix::from(&gen::random_uniform(40 + s % 40, 60, 5, seed)),
        ];
        let mut ex = FeatureExtractor::new();
        for csr in &families {
            assert_extractor_identical(&mut ex, csr);
        }
    }

    #[test]
    fn preprocessor_embeddings_are_deterministic_and_finite(
        seeds in proptest::collection::vec(0u64..500, 5..12)
    ) {
        use spsel_matrix::{gen, CsrMatrix};
        let features: Vec<FeatureVector> = seeds
            .iter()
            .map(|&s| {
                FeatureVector::from_csr(&CsrMatrix::from(&gen::random_uniform(
                    50 + (s as usize % 100),
                    80,
                    4,
                    s,
                )))
            })
            .collect();
        let a = Preprocessor::fit(&features);
        let b = Preprocessor::fit(&features);
        for f in &features {
            let za = a.embed(f);
            prop_assert_eq!(&za, &b.embed(f));
            prop_assert!(za.iter().all(|v| v.is_finite()));
        }
    }
}

/// Random sparsity patterns: a deduplicated entry set over a random shape.
fn arb_pattern() -> impl Strategy<Value = CsrMatrix> {
    (1usize..32, 1usize..32).prop_flat_map(|(nr, nc)| {
        proptest::collection::btree_set((0..nr, 0..nc), 0..160).prop_map(move |set| {
            let triplets: Vec<(usize, usize, f64)> = set
                .iter()
                .enumerate()
                .map(|(i, &(r, c))| (r, c, 1.0 + i as f64 * 0.25))
                .collect();
            CsrMatrix::from(&CooMatrix::from_triplets(nr, nc, &triplets).unwrap())
        })
    })
}

/// Bit-exact comparison of the single-pass extractor against the legacy
/// multi-pass path: stats must be `==` and the derived feature vector
/// must match to the bit.
fn assert_extractor_identical(ex: &mut FeatureExtractor, csr: &CsrMatrix) {
    let legacy = MatrixStats::from_csr(csr);
    assert_eq!(ex.stats(csr), legacy, "stats diverge");
    let bits_new: Vec<u64> = ex
        .features(csr)
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let bits_old: Vec<u64> = FeatureVector::from_stats(&legacy)
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(bits_new, bits_old, "feature bits diverge");
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}
