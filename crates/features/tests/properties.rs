//! Property-based tests of the feature-extraction and preprocessing
//! invariants the selector relies on.

use proptest::prelude::*;
use spsel_features::{FeatureId, FeatureVector, MatrixStats, MinMaxScaler, Pca, Preprocessor};

/// Random row-count vectors (the input MatrixStats is derived from).
fn arb_counts() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (1usize..40).prop_flat_map(|nrows| {
        proptest::collection::vec(0usize..50, nrows).prop_map(move |c| (nrows, c))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stats_identities_hold((nrows, counts) in arb_counts()) {
        let ncols = 64usize;
        let s = MatrixStats::from_row_counts(nrows, ncols, &counts);
        prop_assert_eq!(s.nnz, counts.iter().sum::<usize>());
        prop_assert!(s.nnz_min <= s.nnz_max);
        prop_assert!(s.nnz_mean >= s.nnz_min as f64 - 1e-12);
        prop_assert!(s.nnz_mean <= s.nnz_max as f64 + 1e-12);
        // ELL slab always at least as large as nnz; HYB parts partition nnz.
        prop_assert!(s.ell_size >= s.nnz);
        prop_assert_eq!(s.hyb_ell_nnz + s.hyb_coo_nnz, s.nnz);
        prop_assert!(s.hyb_ell_size >= s.hyb_ell_nnz);
        // csr_max is between the max row and the whole matrix.
        prop_assert!(s.csr_max >= s.nnz_max);
        prop_assert!(s.csr_max <= s.nnz);
        // Fractions bounded.
        prop_assert!((0.0..=1.0).contains(&s.ell_fraction()));
        prop_assert!((0.0..=1.0).contains(&s.hyb_ell_fraction()));
    }

    #[test]
    fn feature_vector_is_finite((nrows, counts) in arb_counts()) {
        let s = MatrixStats::from_row_counts(nrows, 64, &counts);
        let fv = FeatureVector::from_stats(&s);
        for id in FeatureId::ALL {
            prop_assert!(fv.get(id).is_finite(), "{} not finite", id);
        }
        // Derived differences are consistent.
        let max_mu = fv.get(FeatureId::NnzMax) - fv.get(FeatureId::NnzMu);
        prop_assert!((fv.get(FeatureId::MaxMu) - max_mu).abs() < 1e-9);
    }

    #[test]
    fn scaler_maps_training_rows_into_unit_cube(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 3), 1..40)
    ) {
        let scaler = MinMaxScaler::fit(&rows);
        for r in &rows {
            for v in scaler.transform(r) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn full_rank_pca_preserves_pairwise_distances(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 3), 4..20)
    ) {
        // PCA with k = dim is an isometry up to centering.
        let pca = Pca::fit(&rows, 3);
        if pca.explained_variance().iter().all(|&v| v > 1e-9) {
            let d_orig = dist(&rows[0], &rows[1]);
            let z0 = pca.transform(&rows[0]);
            let z1 = pca.transform(&rows[1]);
            let d_proj = dist(&z0, &z1);
            prop_assert!((d_orig - d_proj).abs() < 1e-6 * (1.0 + d_orig));
        }
    }

    #[test]
    fn preprocessor_embeddings_are_deterministic_and_finite(
        seeds in proptest::collection::vec(0u64..500, 5..12)
    ) {
        use spsel_matrix::{gen, CsrMatrix};
        let features: Vec<FeatureVector> = seeds
            .iter()
            .map(|&s| {
                FeatureVector::from_csr(&CsrMatrix::from(&gen::random_uniform(
                    50 + (s as usize % 100),
                    80,
                    4,
                    s,
                )))
            })
            .collect();
        let a = Preprocessor::fit(&features);
        let b = Preprocessor::fit(&features);
        for f in &features {
            let za = a.embed(f);
            prop_assert_eq!(&za, &b.embed(f));
            prop_assert!(za.iter().all(|v| v.is_finite()));
        }
    }
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}
