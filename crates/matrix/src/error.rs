//! Error type for matrix construction, conversion, and IO.

use std::fmt;

/// Errors produced by matrix constructors, format conversions, and IO.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// A triplet referenced a row or column outside the declared shape.
    IndexOutOfBounds {
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    },
    /// Two triplets referenced the same (row, col) position.
    DuplicateEntry { row: usize, col: usize },
    /// An ELL conversion was rejected because the row width exceeds the
    /// configured blow-up limit (mirrors CUSP refusing to build ELL
    /// structures for strongly imbalanced matrices).
    EllTooWide { max_row_nnz: usize, limit: usize },
    /// A DIA conversion was rejected because the number of occupied
    /// diagonals exceeds the configured limit.
    DiaTooManyDiagonals { diagonals: usize, limit: usize },
    /// A BSR conversion was asked for an unusable block edge.
    BsrBadBlock { block: usize },
    /// Vector length did not match the matrix shape.
    DimensionMismatch {
        expected: usize,
        got: usize,
        what: &'static str,
    },
    /// Matrix Market parse failure with a line number and message.
    Parse { line: usize, msg: String },
    /// Underlying IO failure (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix"
            ),
            MatrixError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row}, {col})")
            }
            MatrixError::EllTooWide { max_row_nnz, limit } => write!(
                f,
                "ELL conversion rejected: widest row has {max_row_nnz} nonzeros, limit {limit}"
            ),
            MatrixError::DiaTooManyDiagonals { diagonals, limit } => write!(
                f,
                "DIA conversion rejected: {diagonals} occupied diagonals, limit {limit}"
            ),
            MatrixError::BsrBadBlock { block } => {
                write!(f, "BSR conversion rejected: block edge {block} is unusable")
            }
            MatrixError::DimensionMismatch {
                expected,
                got,
                what,
            } => write!(f, "{what}: expected length {expected}, got {got}"),
            MatrixError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            MatrixError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e.to_string())
    }
}
