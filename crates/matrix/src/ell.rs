//! ELLPACK (ELL) format: a dense `nrows x width` slab with padding.
//!
//! Every row's nonzeros are shifted left into a rectangular slab whose width
//! is the maximum row nonzero count; shorter rows are padded. The slab is
//! stored *column-major* (entry `(r, k)` at `k * nrows + r`), mirroring the
//! GPU layout that makes ELL loads coalesced.
//!
//! Like CUSP, the conversion refuses to build an ELL structure whose width
//! blows up relative to the mean row length (see [`cusp_width_limit`]); the
//! paper excludes such matrices from its corpus, and so do we.

use crate::{CooMatrix, CsrMatrix, MatrixError, Result, SpMv};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sentinel column index marking a padding slot.
pub const ELL_PAD: u32 = u32::MAX;

/// Sparse matrix in ELLPACK format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EllMatrix {
    nrows: usize,
    ncols: usize,
    /// Slab width: maximum number of nonzeros in any row.
    width: usize,
    /// True (unpadded) nonzero count.
    nnz: usize,
    /// Column indices, column-major, `ELL_PAD` for padding slots.
    col_idx: Vec<u32>,
    /// Values, column-major, `0.0` for padding slots.
    vals: Vec<f64>,
}

/// The width limit CUSP-style conversion tolerates before giving up:
/// three times the mean row length plus a small slack. Strongly imbalanced
/// matrices exceed this and cannot be stored as ELL (they blow up memory),
/// which reproduces the CUSP failures the paper filters out.
pub fn cusp_width_limit(nrows: usize, nnz: usize) -> usize {
    if nrows == 0 {
        return 16;
    }
    let mean = nnz as f64 / nrows as f64;
    (3.0 * mean).ceil() as usize + 16
}

impl EllMatrix {
    /// Convert from CSR, rejecting matrices whose widest row exceeds
    /// `width_limit` (see [`cusp_width_limit`] for the CUSP-like default).
    pub fn try_from_csr_with_limit(csr: &CsrMatrix, width_limit: usize) -> Result<Self> {
        let nrows = csr.nrows();
        let width = (0..nrows).map(|r| csr.row_nnz(r)).max().unwrap_or(0);
        if width > width_limit {
            return Err(MatrixError::EllTooWide {
                max_row_nnz: width,
                limit: width_limit,
            });
        }
        let mut col_idx = vec![ELL_PAD; nrows * width];
        let mut vals = vec![0.0; nrows * width];
        for r in 0..nrows {
            let (cols, values) = csr.row(r);
            for (k, (&c, &v)) in cols.iter().zip(values).enumerate() {
                col_idx[k * nrows + r] = c;
                vals[k * nrows + r] = v;
            }
        }
        Ok(EllMatrix {
            nrows,
            ncols: csr.ncols(),
            width,
            nnz: csr.nnz(),
            col_idx,
            vals,
        })
    }

    /// Convert from CSR using the CUSP-like width limit.
    pub fn try_from_csr(csr: &CsrMatrix) -> Result<Self> {
        Self::try_from_csr_with_limit(csr, cusp_width_limit(csr.nrows(), csr.nnz()))
    }

    /// Slab width (maximum row nonzero count).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total slab slots including padding (`nrows * width`).
    pub fn slab_size(&self) -> usize {
        self.nrows * self.width
    }

    /// Fraction of slab slots holding true nonzeros (the paper's `ell_frac`).
    pub fn fill_fraction(&self) -> f64 {
        if self.slab_size() == 0 {
            1.0
        } else {
            self.nnz as f64 / self.slab_size() as f64
        }
    }

    /// Raw column-major slab arrays `(col_idx, vals)`; padding slots hold
    /// [`ELL_PAD`] / `0.0`. Exposed for the SpMM kernel and diagnostics.
    pub fn slab(&self) -> (&[u32], &[f64]) {
        (&self.col_idx, &self.vals)
    }

    /// Convert back to COO (drops padding).
    pub fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.nnz);
        for r in 0..self.nrows {
            for k in 0..self.width {
                let c = self.col_idx[k * self.nrows + r];
                if c != ELL_PAD {
                    triplets.push((r, c as usize, self.vals[k * self.nrows + r]));
                }
            }
        }
        CooMatrix::from_triplets(self.nrows, self.ncols, &triplets)
            .expect("ELL slab holds a valid matrix")
    }
}

impl SpMv for EllMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    /// Sequential kernel walking the slab column-by-column, the traversal
    /// order that is coalesced on GPUs.
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        y.fill(0.0);
        for k in 0..self.width {
            let cols = &self.col_idx[k * self.nrows..(k + 1) * self.nrows];
            let vals = &self.vals[k * self.nrows..(k + 1) * self.nrows];
            for r in 0..self.nrows {
                let c = cols[r];
                if c != ELL_PAD {
                    y[r] += vals[r] * x[c as usize];
                }
            }
        }
    }

    /// Row-parallel kernel: each row walks its slab slots strided by nrows.
    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        let nrows = self.nrows;
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            let mut sum = 0.0;
            for k in 0..self.width {
                let c = self.col_idx[k * nrows + r];
                if c != ELL_PAD {
                    sum += self.vals[k * nrows + r] * x[c as usize];
                }
            }
            *yr = sum;
        });
    }

    fn memory_bytes(&self) -> usize {
        self.slab_size() * (4 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> CsrMatrix {
        let coo = CooMatrix::from_triplets(
            3,
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
                (2, 3, 6.0),
            ],
        )
        .unwrap();
        CsrMatrix::from(&coo)
    }

    #[test]
    fn width_is_max_row() {
        let ell = EllMatrix::try_from_csr(&sample_csr()).unwrap();
        assert_eq!(ell.width(), 3);
        assert_eq!(ell.slab_size(), 9);
        assert_eq!(ell.nnz(), 6);
        assert!((ell.fill_fraction() - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_through_coo() {
        let csr = sample_csr();
        let ell = EllMatrix::try_from_csr(&csr).unwrap();
        assert_eq!(CsrMatrix::from(&ell.to_coo()), csr);
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = sample_csr();
        let ell = EllMatrix::try_from_csr(&csr).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        let (mut y1, mut y2, mut y3) = ([0.0; 3], [0.0; 3], [0.0; 3]);
        csr.spmv(&x, &mut y1);
        ell.spmv(&x, &mut y2);
        ell.spmv_par(&x, &mut y3);
        assert_eq!(y1, y2);
        assert_eq!(y1, y3);
    }

    #[test]
    fn rejects_imbalanced_rows() {
        // One row with 40 nonzeros, 99 rows with 0: mean ~0.4, limit ~18.
        let triplets: Vec<_> = (0..40).map(|c| (0usize, c as usize, 1.0)).collect();
        let coo = CooMatrix::from_triplets(100, 64, &triplets).unwrap();
        let err = EllMatrix::try_from_csr(&CsrMatrix::from(&coo)).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::EllTooWide {
                max_row_nnz: 40,
                ..
            }
        ));
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::zeros(4, 4);
        let ell = EllMatrix::try_from_csr(&CsrMatrix::from(&coo)).unwrap();
        assert_eq!(ell.width(), 0);
        let mut y = [1.0; 4];
        ell.spmv(&[0.0; 4], &mut y);
        assert_eq!(y, [0.0; 4]);
    }
}
