//! Sparse matrix storage formats and SpMV kernels.
//!
//! This crate is the storage/kernel substrate of the `spselect` workspace:
//! it provides the four storage formats benchmarked by the paper (COO, CSR,
//! ELL, HYB) plus DIA (needed for feature extraction), lossless conversions
//! between them, sequential and parallel SpMV kernels for each, Matrix
//! Market file IO, and a family of synthetic matrix generators used to
//! stand in for the SuiteSparse collection.
//!
//! # Conventions
//!
//! * Values are `f64`, column indices are `u32` (supporting matrices up to
//!   ~4.29 billion columns), row pointers are `usize`.
//! * All formats are row-major in iteration order.
//! * `CooMatrix` keeps its triplets sorted in row-major order; constructors
//!   enforce this so kernels and conversions can rely on it.
//!
//! # Quick example
//!
//! ```
//! use spsel_matrix::{CooMatrix, CsrMatrix, SpMv};
//!
//! let coo = CooMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
//! let csr = CsrMatrix::from(&coo);
//! let x = [1.0, 1.0, 1.0];
//! let mut y = [0.0; 2];
//! csr.spmv(&x, &mut y);
//! assert_eq!(y, [3.0, 3.0]);
//! ```

pub mod bsr;
pub mod coo;
pub mod csr;
pub mod dia;
pub mod ell;
pub mod error;
pub mod format;
pub mod gen;
pub mod hyb;
pub mod io;
pub mod permute;
pub mod registry;
pub mod sell;
pub mod spmm;
pub mod spmv;

pub use bsr::BsrMatrix;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dia::DiaMatrix;
pub use ell::EllMatrix;
pub use error::MatrixError;
pub use format::Format;
pub use hyb::HybMatrix;
pub use registry::{default_conversion_cost, FormatRegistry, FormatSpec, SparseKernel, Workload};
pub use sell::SellMatrix;
pub use spmm::SpMm;
pub use spmv::SpMv;

/// Result alias for fallible matrix operations.
pub type Result<T> = std::result::Result<T, MatrixError>;
