//! Coordinate (COO) format: explicit `(row, col, value)` triplets.
//!
//! COO stores the matrix in three dense arrays of length `nnz`. It is the
//! interchange format of this crate: every other format converts to and from
//! COO, and the COO sequential kernel is the reference implementation that
//! all other kernels are validated against.

use crate::{MatrixError, Result, SpMv};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sparse matrix in coordinate format with triplets sorted row-major.
///
/// Invariants (enforced by all constructors):
/// * `rows`, `cols`, `vals` have identical length;
/// * triplets are sorted by `(row, col)` and contain no duplicates;
/// * all indices are in bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Build from unsorted triplets. Sorts row-major and validates bounds
    /// and duplicates.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        let mut t: Vec<(usize, usize, f64)> = Vec::with_capacity(triplets.len());
        for &(r, c, v) in triplets {
            if r >= nrows || c >= ncols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
            t.push((r, c, v));
        }
        t.sort_unstable_by_key(|a| (a.0, a.1));
        for w in t.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                return Err(MatrixError::DuplicateEntry {
                    row: w[0].0,
                    col: w[0].1,
                });
            }
        }
        Ok(CooMatrix {
            nrows,
            ncols,
            rows: t.iter().map(|&(r, _, _)| r as u32).collect(),
            cols: t.iter().map(|&(_, c, _)| c as u32).collect(),
            vals: t.iter().map(|&(_, _, v)| v).collect(),
        })
    }

    /// Build from triplet arrays that are already sorted row-major with no
    /// duplicates. Used by conversions that construct entries in order.
    ///
    /// Debug assertions re-check the invariant; release builds trust the
    /// caller, keeping conversions O(nnz).
    pub(crate) fn from_sorted_parts(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(rows.len(), cols.len());
        debug_assert_eq!(rows.len(), vals.len());
        debug_assert!(rows
            .iter()
            .zip(&cols)
            .all(|(&r, &c)| (r as usize) < nrows && (c as usize) < ncols));
        debug_assert!(rows
            .windows(2)
            .zip(cols.windows(2))
            .all(|(rw, cw)| (rw[0], cw[0]) < (rw[1], cw[1])));
        CooMatrix {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        }
    }

    /// An empty matrix with the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Row indices of the stored entries (sorted, may repeat).
    pub fn row_indices(&self) -> &[u32] {
        &self.rows
    }

    /// Column indices of the stored entries.
    pub fn col_indices(&self) -> &[u32] {
        &self.cols
    }

    /// Values of the stored entries.
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Iterate `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Dense representation; intended for tests on small matrices.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for (r, c, v) in self.iter() {
            d[r][c] = v;
        }
        d
    }

    /// Number of nonzeros in each row, in O(nrows + nnz).
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nrows];
        for &r in &self.rows {
            counts[r as usize] += 1;
        }
        counts
    }

    /// Transpose (swaps rows/cols and re-sorts).
    pub fn transpose(&self) -> CooMatrix {
        let triplets: Vec<(usize, usize, f64)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CooMatrix::from_triplets(self.ncols, self.nrows, &triplets)
            .expect("transpose preserves validity")
    }
}

impl SpMv for CooMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Reference kernel: scatter each triplet's contribution.
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        y.fill(0.0);
        for i in 0..self.vals.len() {
            y[self.rows[i] as usize] += self.vals[i] * x[self.cols[i] as usize];
        }
    }

    /// Parallel kernel: segmented reduction over row-sorted triplets.
    ///
    /// The triplet array is split into chunks; each chunk accumulates its
    /// rows independently and chunk-boundary rows are combined afterwards,
    /// mirroring the structure of GPU segmented-scan COO kernels.
    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        let n = self.vals.len();
        if n == 0 {
            y.fill(0.0);
            return;
        }
        let nthreads = rayon::current_num_threads().max(1);
        let chunk = n.div_ceil(nthreads);
        // Each chunk produces (first_row, first_sum, partials for interior rows).
        let partials: Vec<(usize, Vec<(usize, f64)>)> = (0..n)
            .step_by(chunk)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|start| {
                let end = (start + chunk).min(n);
                let mut acc: Vec<(usize, f64)> = Vec::new();
                let mut cur_row = self.rows[start] as usize;
                let mut sum = 0.0;
                for i in start..end {
                    let r = self.rows[i] as usize;
                    if r != cur_row {
                        acc.push((cur_row, sum));
                        cur_row = r;
                        sum = 0.0;
                    }
                    sum += self.vals[i] * x[self.cols[i] as usize];
                }
                acc.push((cur_row, sum));
                (start, acc)
            })
            .collect();
        y.fill(0.0);
        for (_, acc) in partials {
            for (r, s) in acc {
                y[r] += s;
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        // Two u32 index arrays plus one f64 value array.
        self.vals.len() * (4 + 4 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(3, 4, &[(2, 0, 5.0), (0, 1, 2.0), (0, 3, 3.0), (1, 2, -1.0)])
            .unwrap()
    }

    #[test]
    fn triplets_are_sorted() {
        let m = sample();
        let t: Vec<_> = m.iter().collect();
        assert_eq!(t, vec![(0, 1, 2.0), (0, 3, 3.0), (1, 2, -1.0), (2, 0, 5.0)]);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let err = CooMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, MatrixError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn rejects_duplicates() {
        let err = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::DuplicateEntry { row: 0, col: 0 }
        ));
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, [2.0 * 2.0 + 3.0 * 4.0, -3.0, 5.0]);
    }

    #[test]
    fn spmv_par_matches_seq() {
        let m = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        let (mut y1, mut y2) = ([0.0; 3], [0.0; 3]);
        m.spmv(&x, &mut y1);
        m.spmv_par(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn spmv_par_empty_matrix() {
        let m = CooMatrix::zeros(3, 3);
        let x = [1.0; 3];
        let mut y = [9.0; 3];
        m.spmv_par(&x, &mut y);
        assert_eq!(y, [0.0; 3]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn row_counts() {
        assert_eq!(sample().row_counts(), vec![2, 1, 1]);
    }

    #[test]
    #[should_panic]
    fn spmv_panics_on_bad_x() {
        let m = sample();
        let mut y = [0.0; 3];
        m.spmv(&[1.0; 3], &mut y);
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(sample().memory_bytes(), 4 * 16);
    }
}
