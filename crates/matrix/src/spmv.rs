//! The `SpMv` trait: the common kernel interface implemented by every format.

use crate::MatrixError;

/// Sparse matrix–vector multiplication interface, `y = A * x`.
///
/// Every storage format implements this trait with both a sequential kernel
/// (`spmv`) and a rayon-parallel kernel (`spmv_par`). The two must produce
/// identical results up to floating-point reassociation; the test suite
/// cross-validates all kernels against the COO reference.
pub trait SpMv {
    /// Number of rows of the matrix.
    fn nrows(&self) -> usize;

    /// Number of columns of the matrix.
    fn ncols(&self) -> usize;

    /// Number of stored true nonzeros (padding entries are not counted).
    fn nnz(&self) -> usize;

    /// Sequential kernel: overwrite `y` with `A * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols()` or `y.len() != nrows()` (checked via
    /// [`SpMv::check_dims`] in every implementation).
    fn spmv(&self, x: &[f64], y: &mut [f64]);

    /// Parallel kernel: overwrite `y` with `A * x` using rayon.
    fn spmv_par(&self, x: &[f64], y: &mut [f64]);

    /// Bytes of memory occupied by the format's arrays (including padding).
    /// Used by the GPU model to detect out-of-memory formats.
    fn memory_bytes(&self) -> usize;

    /// Validate kernel operand shapes; shared by all implementations.
    fn check_dims(&self, x: &[f64], y: &[f64]) -> Result<(), MatrixError> {
        if x.len() != self.ncols() {
            return Err(MatrixError::DimensionMismatch {
                expected: self.ncols(),
                got: x.len(),
                what: "x vector",
            });
        }
        if y.len() != self.nrows() {
            return Err(MatrixError::DimensionMismatch {
                expected: self.nrows(),
                got: y.len(),
                what: "y vector",
            });
        }
        Ok(())
    }
}
