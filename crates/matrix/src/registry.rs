//! The format/workload registry: the selection label space as data.
//!
//! The paper freezes the classification problem at CUSP's four formats
//! and a single workload (SpMV). This module turns both axes into data:
//!
//! * [`FormatSpec`] describes one candidate format — stable id, display
//!   name, relative conversion cost, and a kernel factory that builds the
//!   format from CSR and exposes SpMV/SpMM through [`SparseKernel`];
//! * [`FormatRegistry`] is an ordered set of specs. The
//!   [`FormatRegistry::cusp_default`] registry reproduces the paper's
//!   label space exactly (same four formats, same order, same class
//!   count); [`FormatRegistry::extended`] adds BSR and SELL-C-σ, and
//!   [`FormatRegistry::full`] adds DIA on top;
//! * [`Workload`] names the kernel being selected for: SpMV, or a
//!   multi-vector SpMM with `k` dense columns (GNN-style inference).
//!
//! A registry's [`FormatRegistry::digest`] is a stable hex fingerprint of
//! its format names, order, and conversion costs. Model artifacts embed
//! it next to the feature-pipeline digest: a model trained against one
//! label space refuses to serve another.

use crate::{BsrMatrix, CsrMatrix, DiaMatrix, EllMatrix, Format, HybMatrix, Result, SellMatrix};
use crate::{CooMatrix, SpMm, SpMv};

/// The kernel workload a selection decision is made for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Sparse matrix–vector product `y = A x` (the paper's workload).
    SpMv,
    /// Sparse matrix–dense matrix product `Y = A X` with `k` columns.
    SpMm {
        /// Number of dense right-hand-side columns.
        k: usize,
    },
}

impl Workload {
    /// The dense column count `spmm` parses to when no `k` is given.
    pub const DEFAULT_SPMM_K: usize = 4;

    /// The workloads the experiments report on: SpMV plus the two SpMM
    /// shapes of GNN inference.
    pub const ALL: [Workload; 3] = [
        Workload::SpMv,
        Workload::SpMm { k: 4 },
        Workload::SpMm { k: 32 },
    ];

    /// Canonical lower-case wire name: `spmv`, `spmm4`, `spmm32`, ...
    pub fn name(self) -> String {
        match self {
            Workload::SpMv => "spmv".to_string(),
            Workload::SpMm { k } => format!("spmm{k}"),
        }
    }

    /// Parse a wire name. `spmv` and `spmmN` are accepted case-insensitively;
    /// a bare `spmm` means `spmm4` ([`Workload::DEFAULT_SPMM_K`]).
    pub fn parse(s: &str) -> std::result::Result<Workload, String> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "spmv" => Ok(Workload::SpMv),
            "spmm" => Ok(Workload::SpMm {
                k: Workload::DEFAULT_SPMM_K,
            }),
            other => {
                if let Some(digits) = other.strip_prefix("spmm") {
                    match digits.parse::<usize>() {
                        Ok(k) if (1..=4096).contains(&k) => return Ok(Workload::SpMm { k }),
                        _ => {}
                    }
                }
                Err(format!(
                    "unknown workload `{s}` (expected spmv, spmm, or spmmN with 1 <= N <= 4096)"
                ))
            }
        }
    }

    /// Number of dense right-hand-side columns (1 for SpMV).
    pub fn k(self) -> usize {
        match self {
            Workload::SpMv => 1,
            Workload::SpMm { k } => k,
        }
    }

    /// Noise-lane tag: 0 for SpMV so the default path reproduces the
    /// historical per-format noise lanes bit for bit; SpMM workloads get
    /// disjoint lanes keyed by `k`.
    pub fn lane(self) -> u64 {
        match self {
            Workload::SpMv => 0,
            Workload::SpMm { k } => k as u64,
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A built kernel instance: the object-safe union of [`SpMv`] and
/// [`SpMm`] the registry dispatches through.
pub trait SparseKernel: Send + Sync {
    /// Sequential SpMV (`y = A x`).
    fn spmv(&self, x: &[f64], y: &mut [f64]);
    /// Sequential SpMM (`Y = A X`, row-major `k`-column operands).
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]);
    /// Bytes occupied by the format's arrays, padding included.
    fn memory_bytes(&self) -> usize;
}

impl<T: SpMm + Send + Sync> SparseKernel for T {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        SpMv::spmv(self, x, y)
    }

    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]) {
        SpMm::spmm(self, x, k, y)
    }

    fn memory_bytes(&self) -> usize {
        SpMv::memory_bytes(self)
    }
}

/// One candidate format of the selection problem.
pub trait FormatSpec: Send + Sync {
    /// The stable format id this spec selects.
    fn format(&self) -> Format;

    /// Display name (defaults to the format's canonical name).
    fn name(&self) -> &'static str {
        self.format().name()
    }

    /// Conversion cost from CSR relative to one SpMV, in the units of the
    /// paper's Table 8 (CSR itself is 0).
    fn conversion_cost(&self) -> f64;

    /// Build a kernel instance from CSR. Conversion failures (ELL width
    /// blow-up, DIA diagonal blow-up) surface as typed errors — the
    /// format is infeasible for that matrix, exactly like the paper's
    /// CUSP conversion failures.
    fn build(&self, csr: &CsrMatrix) -> Result<Box<dyn SparseKernel>>;
}

/// Conversion costs in relative-SpMV units. The four CUSP numbers are the
/// paper's Table 8 medians (kept in sync with the gpusim
/// `ConversionCostModel`); the extended formats are modeled from their
/// construction passes: BSR scatters into dense blocks (two CSR passes
/// plus zero fill), SELL adds a scoped sort to an ELL-style scatter, DIA
/// is a single scatter over the diagonal census it already shares with
/// feature extraction.
mod costs {
    pub const COO: f64 = 9.0;
    pub const CSR: f64 = 0.0;
    pub const ELL: f64 = 102.0;
    pub const HYB: f64 = 147.0;
    pub const BSR: f64 = 76.0;
    pub const SELL: f64 = 58.0;
    pub const DIA: f64 = 44.0;
}

struct CooSpec;
struct CsrSpec;
struct EllSpec;
struct HybSpec;
struct BsrSpec;
struct SellSpec;
struct DiaSpec;

impl FormatSpec for CooSpec {
    fn format(&self) -> Format {
        Format::Coo
    }

    fn conversion_cost(&self) -> f64 {
        costs::COO
    }

    fn build(&self, csr: &CsrMatrix) -> Result<Box<dyn SparseKernel>> {
        Ok(Box::new(CooMatrix::from(csr)))
    }
}

impl FormatSpec for CsrSpec {
    fn format(&self) -> Format {
        Format::Csr
    }

    fn conversion_cost(&self) -> f64 {
        costs::CSR
    }

    fn build(&self, csr: &CsrMatrix) -> Result<Box<dyn SparseKernel>> {
        Ok(Box::new(csr.clone()))
    }
}

impl FormatSpec for EllSpec {
    fn format(&self) -> Format {
        Format::Ell
    }

    fn conversion_cost(&self) -> f64 {
        costs::ELL
    }

    fn build(&self, csr: &CsrMatrix) -> Result<Box<dyn SparseKernel>> {
        Ok(Box::new(EllMatrix::try_from_csr(csr)?))
    }
}

impl FormatSpec for HybSpec {
    fn format(&self) -> Format {
        Format::Hyb
    }

    fn conversion_cost(&self) -> f64 {
        costs::HYB
    }

    fn build(&self, csr: &CsrMatrix) -> Result<Box<dyn SparseKernel>> {
        Ok(Box::new(HybMatrix::from_csr(csr)))
    }
}

impl FormatSpec for BsrSpec {
    fn format(&self) -> Format {
        Format::Bsr
    }

    fn conversion_cost(&self) -> f64 {
        costs::BSR
    }

    fn build(&self, csr: &CsrMatrix) -> Result<Box<dyn SparseKernel>> {
        Ok(Box::new(BsrMatrix::try_from_csr(
            csr,
            crate::bsr::DEFAULT_BLOCK,
        )?))
    }
}

impl FormatSpec for SellSpec {
    fn format(&self) -> Format {
        Format::Sell
    }

    fn conversion_cost(&self) -> f64 {
        costs::SELL
    }

    fn build(&self, csr: &CsrMatrix) -> Result<Box<dyn SparseKernel>> {
        // C = 32 slices with a 4-slice sorting scope: the SELL-C-σ
        // defaults of the original paper for wide-SIMD targets.
        Ok(Box::new(SellMatrix::from_csr(csr, 32, 128)))
    }
}

impl FormatSpec for DiaSpec {
    fn format(&self) -> Format {
        Format::Dia
    }

    fn conversion_cost(&self) -> f64 {
        costs::DIA
    }

    fn build(&self, csr: &CsrMatrix) -> Result<Box<dyn SparseKernel>> {
        // The same blow-up guard the feature extractor uses: a matrix
        // occupying more diagonals than rows+cols/4 pads hopelessly.
        let limit = ((csr.nrows() + csr.ncols()) / 4).max(16);
        Ok(Box::new(DiaMatrix::try_from_csr(csr, limit)?))
    }
}

/// The conversion cost the built-in [`FormatSpec`] for `format` reports.
/// Exposed so cost accounting outside this crate (gpusim's Table 8 model)
/// can stay in lockstep with the registry without duplicating numbers.
pub fn default_conversion_cost(format: Format) -> f64 {
    match format {
        Format::Coo => costs::COO,
        Format::Csr => costs::CSR,
        Format::Ell => costs::ELL,
        Format::Hyb => costs::HYB,
        Format::Bsr => costs::BSR,
        Format::Sell => costs::SELL,
        Format::Dia => costs::DIA,
    }
}

fn spec_of(format: Format) -> Box<dyn FormatSpec> {
    match format {
        Format::Coo => Box::new(CooSpec),
        Format::Csr => Box::new(CsrSpec),
        Format::Ell => Box::new(EllSpec),
        Format::Hyb => Box::new(HybSpec),
        Format::Bsr => Box::new(BsrSpec),
        Format::Sell => Box::new(SellSpec),
        Format::Dia => Box::new(DiaSpec),
    }
}

/// An ordered set of candidate formats: the label space of the selection
/// problem, as a value instead of a hardcoded enum walk.
pub struct FormatRegistry {
    specs: Vec<Box<dyn FormatSpec>>,
}

impl FormatRegistry {
    /// Build a registry from an explicit format list (built-in specs).
    ///
    /// # Panics
    /// Panics if `formats` contains duplicates — a registry is a set.
    pub fn of(formats: &[Format]) -> Self {
        for (i, f) in formats.iter().enumerate() {
            assert!(
                !formats[..i].contains(f),
                "duplicate format {f} in registry"
            );
        }
        FormatRegistry {
            specs: formats.iter().map(|&f| spec_of(f)).collect(),
        }
    }

    /// The paper's label space: CUSP's four formats in Table 3 order.
    /// This registry reproduces every existing experiment bit for bit.
    pub fn cusp_default() -> Self {
        Self::of(&Format::ALL)
    }

    /// The six-format zoo: CUSP's four plus BSR and SELL-C-σ.
    pub fn extended() -> Self {
        Self::of(&[
            Format::Coo,
            Format::Csr,
            Format::Ell,
            Format::Hyb,
            Format::Bsr,
            Format::Sell,
        ])
    }

    /// Every format the workspace knows, DIA included.
    pub fn full() -> Self {
        Self::of(&Format::UNIVERSE)
    }

    /// Number of registered formats.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry is empty (it never is, in practice).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The registered formats in registry order.
    pub fn formats(&self) -> Vec<Format> {
        self.specs.iter().map(|s| s.format()).collect()
    }

    /// Iterate the registered specs in order.
    pub fn specs(&self) -> impl Iterator<Item = &dyn FormatSpec> {
        self.specs.iter().map(|s| s.as_ref())
    }

    /// The spec for `format`, if registered.
    pub fn spec(&self, format: Format) -> Option<&dyn FormatSpec> {
        self.specs
            .iter()
            .find(|s| s.format() == format)
            .map(|s| s.as_ref())
    }

    /// Whether `format` is registered.
    pub fn contains(&self, format: Format) -> bool {
        self.spec(format).is_some()
    }

    /// Registry-order position of `format`.
    pub fn position(&self, format: Format) -> Option<usize> {
        self.specs.iter().position(|s| s.format() == format)
    }

    /// Parse a format name against this registry only: names outside the
    /// registered set are rejected even when the workspace knows them.
    pub fn by_name(&self, name: &str) -> Option<Format> {
        let upper = name.to_ascii_uppercase();
        self.specs
            .iter()
            .map(|s| s.format())
            .find(|f| f.name() == upper)
    }

    /// Class count for ML code trained on this registry's labels: one
    /// past the largest stable id, so class vectors index directly by
    /// [`Format::index`]. The default registry yields exactly
    /// [`Format::COUNT`].
    pub fn class_count(&self) -> usize {
        self.specs
            .iter()
            .map(|s| s.format().index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Stable fingerprint of the label space: format names in registry
    /// order plus each conversion cost, FNV-1a hashed to 16 hex chars.
    /// Any change to the set, the order, or a cost changes the digest.
    pub fn digest(&self) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(b"format-registry-v1");
        for s in &self.specs {
            eat(s.name().as_bytes());
            eat(&s.conversion_cost().to_bits().to_le_bytes());
        }
        format!("{h:016x}")
    }
}

impl Default for FormatRegistry {
    fn default() -> Self {
        Self::cusp_default()
    }
}

impl std::fmt::Debug for FormatRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FormatRegistry")
            .field("formats", &self.formats())
            .field("digest", &self.digest())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn default_registry_is_the_paper_label_space() {
        let reg = FormatRegistry::cusp_default();
        assert_eq!(reg.formats(), Format::ALL.to_vec());
        assert_eq!(reg.class_count(), Format::COUNT);
    }

    #[test]
    fn extended_registry_grows_the_class_space() {
        let reg = FormatRegistry::extended();
        assert_eq!(reg.len(), 6);
        assert!(reg.contains(Format::Bsr));
        assert!(reg.contains(Format::Sell));
        assert!(!reg.contains(Format::Dia));
        assert_eq!(reg.class_count(), 6);
        assert_eq!(FormatRegistry::full().class_count(), 7);
    }

    #[test]
    fn digests_separate_set_order_and_cost() {
        let a = FormatRegistry::cusp_default().digest();
        assert_eq!(a, FormatRegistry::cusp_default().digest());
        assert_eq!(a.len(), 16);
        assert_ne!(a, FormatRegistry::extended().digest());
        assert_ne!(
            FormatRegistry::of(&[Format::Coo, Format::Csr]).digest(),
            FormatRegistry::of(&[Format::Csr, Format::Coo]).digest()
        );
    }

    #[test]
    fn by_name_is_scoped_to_the_registry() {
        let reg = FormatRegistry::cusp_default();
        assert_eq!(reg.by_name("csr"), Some(Format::Csr));
        assert_eq!(reg.by_name("BSR"), None, "BSR is not in the default set");
        assert_eq!(FormatRegistry::extended().by_name("BSR"), Some(Format::Bsr));
    }

    #[test]
    fn every_spec_builds_and_its_kernels_agree() {
        let csr = CsrMatrix::from(&gen::banded(48, 3, 0.9, 7));
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.21).cos()).collect();
        let mut want = vec![0.0; 48];
        SpMv::spmv(&csr, &x, &mut want);
        for spec in FormatRegistry::full().specs() {
            let kernel = spec.build(&csr).unwrap();
            let mut y = vec![0.0; 48];
            kernel.spmv(&x, &mut y);
            for r in 0..48 {
                assert!(
                    (y[r] - want[r]).abs() <= 1e-12 * (1.0 + want[r].abs()),
                    "{} row {r}: {} vs {}",
                    spec.name(),
                    y[r],
                    want[r]
                );
            }
            // SpMM with k = 1 must match SpMV up to reassociation.
            let mut ym = vec![0.0; 48];
            kernel.spmm(&x, 1, &mut ym);
            for r in 0..48 {
                assert!(
                    (ym[r] - want[r]).abs() <= 1e-12 * (1.0 + want[r].abs()),
                    "{} spmm row {r}",
                    spec.name()
                );
            }
            assert!(kernel.memory_bytes() > 0);
        }
    }

    #[test]
    fn infeasible_conversions_error_typed() {
        // One hub row: ELL rejects; scattered anti-diagonal: DIA rejects.
        let hub: Vec<_> = (0..60).map(|c| (0usize, c, 1.0)).collect();
        let hub = CsrMatrix::from(&CooMatrix::from_triplets(200, 64, &hub).unwrap());
        let reg = FormatRegistry::full();
        assert!(reg.spec(Format::Ell).unwrap().build(&hub).is_err());
        assert!(reg.spec(Format::Csr).unwrap().build(&hub).is_ok());
    }

    #[test]
    fn workload_names_roundtrip() {
        for w in Workload::ALL {
            assert_eq!(Workload::parse(&w.name()).unwrap(), w);
        }
        assert_eq!(Workload::parse("SpMV").unwrap(), Workload::SpMv);
        assert_eq!(
            Workload::parse("spmm").unwrap(),
            Workload::SpMm {
                k: Workload::DEFAULT_SPMM_K
            }
        );
        assert_eq!(Workload::parse("spmm32").unwrap(), Workload::SpMm { k: 32 });
        assert!(Workload::parse("gemm").is_err());
        assert!(Workload::parse("spmm0").is_err());
        assert!(Workload::parse("spmm99999").is_err());
    }

    #[test]
    fn workload_lanes_keep_spmv_at_zero() {
        assert_eq!(Workload::SpMv.lane(), 0);
        assert_ne!(
            Workload::SpMm { k: 4 }.lane(),
            Workload::SpMm { k: 32 }.lane()
        );
    }
}
