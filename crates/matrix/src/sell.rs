//! SELL-C-σ: sliced ELLPACK with scoped row sorting (Kreutzer, Hager,
//! Wellein, Fehske, Bishop — SIAM SISC 2014), the unified SIMD-friendly
//! format the paper's related work discusses.
//!
//! Rows are sorted by length inside windows of `sigma` rows (full sorting
//! would maximize padding savings but destroy `x`-vector locality — the
//! cache trade-off the paper's Section 6 notes), then grouped into slices
//! of `c` consecutive rows. Each slice is padded only to its *own*
//! maximum width, so the padding blow-up of plain ELL on irregular
//! matrices disappears while the per-slice layout stays vectorizable.

use crate::{CooMatrix, CsrMatrix, SpMv};
use serde::{Deserialize, Serialize};

/// Sentinel column index marking a padding slot.
pub const SELL_PAD: u32 = u32::MAX;

/// Sparse matrix in SELL-C-σ format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SellMatrix {
    nrows: usize,
    ncols: usize,
    /// Slice height.
    c: usize,
    /// Sorting scope.
    sigma: usize,
    /// Width (max row nonzeros) of each slice.
    slice_widths: Vec<usize>,
    /// Start offset of each slice's slab in `col_idx` / `vals`
    /// (length `n_slices + 1`).
    slice_ptr: Vec<usize>,
    /// Column indices, slice-local column-major, `SELL_PAD` for padding.
    col_idx: Vec<u32>,
    /// Values, same layout, `0.0` for padding.
    vals: Vec<f64>,
    /// `perm[i]` = original row stored at sorted position `i`.
    perm: Vec<u32>,
    /// True nonzero count.
    nnz: usize,
}

impl SellMatrix {
    /// Convert from CSR with slice height `c` and sorting scope `sigma`.
    ///
    /// `sigma` is rounded up to a multiple of `c`; `sigma = 1` disables
    /// sorting (pure SELL-C), `sigma >= nrows` is full sorting.
    ///
    /// # Panics
    /// Panics if `c == 0` or `sigma == 0`.
    pub fn from_csr(csr: &CsrMatrix, c: usize, sigma: usize) -> Self {
        assert!(c > 0, "slice height must be positive");
        assert!(sigma > 0, "sorting scope must be positive");
        let nrows = csr.nrows();
        let sigma = sigma.div_ceil(c) * c;

        // Scoped sort: inside every sigma-window order rows by descending
        // length (stable, so equal-length rows keep matrix order).
        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by(|&a, &b| {
                csr.row_nnz(b as usize)
                    .cmp(&csr.row_nnz(a as usize))
                    .then(a.cmp(&b))
            });
        }

        let n_slices = nrows.div_ceil(c);
        let mut slice_widths = Vec::with_capacity(n_slices);
        let mut slice_ptr = Vec::with_capacity(n_slices + 1);
        slice_ptr.push(0usize);
        for s in 0..n_slices {
            let rows = &perm[s * c..((s + 1) * c).min(nrows)];
            let width = rows
                .iter()
                .map(|&r| csr.row_nnz(r as usize))
                .max()
                .unwrap_or(0);
            slice_widths.push(width);
            slice_ptr.push(slice_ptr[s] + width * c);
        }

        let total = *slice_ptr.last().expect("one entry per slice plus one");
        let mut col_idx = vec![SELL_PAD; total];
        let mut vals = vec![0.0; total];
        for s in 0..n_slices {
            let base = slice_ptr[s];
            let rows = &perm[s * c..((s + 1) * c).min(nrows)];
            for (lane, &orig) in rows.iter().enumerate() {
                let (cols, values) = csr.row(orig as usize);
                for (k, (&cc, &v)) in cols.iter().zip(values).enumerate() {
                    col_idx[base + k * c + lane] = cc;
                    vals[base + k * c + lane] = v;
                }
            }
        }
        SellMatrix {
            nrows,
            ncols: csr.ncols(),
            c,
            sigma,
            slice_widths,
            slice_ptr,
            col_idx,
            vals,
            perm,
            nnz: csr.nnz(),
        }
    }

    /// Slice height.
    pub fn chunk_height(&self) -> usize {
        self.c
    }

    /// Sorting scope (rounded to a multiple of the slice height).
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of slices.
    pub fn n_slices(&self) -> usize {
        self.slice_widths.len()
    }

    /// Total stored slots including padding.
    pub fn slab_size(&self) -> usize {
        *self.slice_ptr.last().expect("non-empty slice_ptr")
    }

    /// Fraction of slots holding true nonzeros (the padding advantage over
    /// plain ELL).
    pub fn fill_fraction(&self) -> f64 {
        if self.slab_size() == 0 {
            1.0
        } else {
            self.nnz as f64 / self.slab_size() as f64
        }
    }

    /// Raw slab arrays `(col_idx, vals)`, slice-local column-major;
    /// padding slots hold [`SELL_PAD`] / `0.0`. Exposed for the SpMM
    /// kernel.
    pub fn slab(&self) -> (&[u32], &[f64]) {
        (&self.col_idx, &self.vals)
    }

    /// Slice structure `(slice_widths, slice_ptr, perm)`: per-slice
    /// widths, slab start offsets, and the scoped row permutation.
    pub fn slices(&self) -> (&[usize], &[usize], &[u32]) {
        (&self.slice_widths, &self.slice_ptr, &self.perm)
    }

    /// Convert back to COO (drops padding, undoes the row permutation).
    pub fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.nnz);
        for s in 0..self.n_slices() {
            let base = self.slice_ptr[s];
            let rows = &self.perm[s * self.c..((s + 1) * self.c).min(self.nrows)];
            for (lane, &orig) in rows.iter().enumerate() {
                for k in 0..self.slice_widths[s] {
                    let cc = self.col_idx[base + k * self.c + lane];
                    if cc != SELL_PAD {
                        triplets.push((
                            orig as usize,
                            cc as usize,
                            self.vals[base + k * self.c + lane],
                        ));
                    }
                }
            }
        }
        CooMatrix::from_triplets(self.nrows, self.ncols, &triplets)
            .expect("SELL slab holds a valid matrix")
    }
}

impl SpMv for SellMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    /// Slice-by-slice kernel walking each slice column-major (the
    /// vector-unit traversal order of the original paper).
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        y.fill(0.0);
        for s in 0..self.n_slices() {
            let base = self.slice_ptr[s];
            let lanes = ((s + 1) * self.c).min(self.nrows) - s * self.c;
            let rows = &self.perm[s * self.c..s * self.c + lanes];
            for k in 0..self.slice_widths[s] {
                let off = base + k * self.c;
                for (lane, &orig) in rows.iter().enumerate() {
                    let cc = self.col_idx[off + lane];
                    if cc != SELL_PAD {
                        y[orig as usize] += self.vals[off + lane] * x[cc as usize];
                    }
                }
            }
        }
    }

    /// Slice-parallel kernel: slices touch disjoint output rows.
    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        use rayon::prelude::*;
        // Work on a per-slice buffer of (original row, value) pairs to
        // keep the parallel writes disjoint.
        let contributions: Vec<Vec<(u32, f64)>> = (0..self.n_slices())
            .into_par_iter()
            .map(|s| {
                let base = self.slice_ptr[s];
                let lanes = ((s + 1) * self.c).min(self.nrows) - s * self.c;
                let rows = &self.perm[s * self.c..s * self.c + lanes];
                let mut acc = vec![0.0f64; lanes];
                for k in 0..self.slice_widths[s] {
                    let off = base + k * self.c;
                    for (lane, a) in acc.iter_mut().enumerate() {
                        let cc = self.col_idx[off + lane];
                        if cc != SELL_PAD {
                            *a += self.vals[off + lane] * x[cc as usize];
                        }
                    }
                }
                rows.iter().copied().zip(acc).collect()
            })
            .collect();
        y.fill(0.0);
        for slice in contributions {
            for (r, v) in slice {
                y[r as usize] = v;
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.slab_size() * (4 + 8) + self.perm.len() * 4 + self.slice_ptr.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, EllMatrix};

    fn skewed() -> CsrMatrix {
        CsrMatrix::from(&gen::bimodal(64, 64, 2, 20, 0.25, 9))
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let csr = skewed();
        for (c, sigma) in [(4, 1), (4, 16), (8, 64), (1, 64), (16, 4)] {
            let sell = SellMatrix::from_csr(&csr, c, sigma);
            assert_eq!(CsrMatrix::from(&sell.to_coo()), csr, "C={c} sigma={sigma}");
        }
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = skewed();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.17).cos()).collect();
        let mut want = vec![0.0; 64];
        csr.spmv(&x, &mut want);
        for (c, sigma) in [(4, 16), (8, 8), (2, 64)] {
            let sell = SellMatrix::from_csr(&csr, c, sigma);
            let (mut y1, mut y2) = (vec![0.0; 64], vec![0.0; 64]);
            sell.spmv(&x, &mut y1);
            sell.spmv_par(&x, &mut y2);
            for i in 0..64 {
                assert!(
                    (y1[i] - want[i]).abs() < 1e-10,
                    "seq C={c} s={sigma} row {i}"
                );
                assert!(
                    (y2[i] - want[i]).abs() < 1e-10,
                    "par C={c} s={sigma} row {i}"
                );
            }
        }
    }

    #[test]
    fn sorting_reduces_padding_on_skewed_matrices() {
        let csr = skewed();
        let unsorted = SellMatrix::from_csr(&csr, 8, 1);
        let sorted = SellMatrix::from_csr(&csr, 8, 64);
        assert!(
            sorted.slab_size() <= unsorted.slab_size(),
            "sorting must not increase padding: {} > {}",
            sorted.slab_size(),
            unsorted.slab_size()
        );
        assert!(sorted.fill_fraction() >= unsorted.fill_fraction());
    }

    #[test]
    fn beats_plain_ell_padding() {
        // On an irregular matrix SELL-C-sigma pads to per-slice maxima
        // while ELL pads everything to the global maximum.
        let csr = skewed();
        let ell = EllMatrix::try_from_csr_with_limit(&csr, 1024).unwrap();
        let sell = SellMatrix::from_csr(&csr, 8, 64);
        assert!(sell.slab_size() < ell.slab_size());
    }

    #[test]
    fn slice_height_one_is_padding_free() {
        let csr = skewed();
        let sell = SellMatrix::from_csr(&csr, 1, 1);
        assert_eq!(sell.slab_size(), csr.nnz());
        assert_eq!(sell.fill_fraction(), 1.0);
    }

    #[test]
    fn handles_non_multiple_row_counts() {
        // 13 rows with C = 4: final slice is short.
        let coo = gen::random_uniform(13, 13, 3, 3);
        let csr = CsrMatrix::from(&coo);
        let sell = SellMatrix::from_csr(&csr, 4, 8);
        assert_eq!(sell.n_slices(), 4);
        assert_eq!(CsrMatrix::from(&sell.to_coo()), csr);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from(&CooMatrix::zeros(5, 5));
        let sell = SellMatrix::from_csr(&csr, 4, 4);
        assert_eq!(sell.nnz(), 0);
        let mut y = [1.0; 5];
        sell.spmv(&[0.0; 5], &mut y);
        assert_eq!(y, [0.0; 5]);
    }

    #[test]
    fn sigma_rounds_to_slice_multiple() {
        let csr = skewed();
        let sell = SellMatrix::from_csr(&csr, 4, 6);
        assert_eq!(sell.sigma(), 8);
    }
}
