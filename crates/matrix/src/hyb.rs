//! Hybrid (HYB) format: ELL for the regular bulk plus COO for the overflow.
//!
//! The ELL width is chosen with CUSP's heuristic: a slab column is worth
//! keeping in ELL if it is active in more than `min(nrows / relative_speed,
//! breakeven_threshold)` rows; everything beyond that width spills into a
//! COO tail. This keeps padding bounded for matrices with a heavy-tailed
//! row-length distribution while retaining ELL's coalescing for the bulk.

use crate::{CooMatrix, CsrMatrix, SpMv};
use serde::{Deserialize, Serialize};

/// CUSP's default relative speed of ELL vs COO entry processing.
pub const DEFAULT_RELATIVE_SPEED: f64 = 3.0;
/// CUSP's default breakeven row-count threshold.
pub const DEFAULT_BREAKEVEN_THRESHOLD: usize = 4096;

/// Sparse matrix in hybrid ELL + COO format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybMatrix {
    nrows: usize,
    ncols: usize,
    /// ELL slab width chosen by the split heuristic.
    ell_width: usize,
    /// Column-major ELL slab (same layout as [`crate::EllMatrix`]).
    ell_cols: Vec<u32>,
    ell_vals: Vec<f64>,
    /// True nonzeros stored in the ELL part.
    ell_nnz: usize,
    /// Overflow entries (row-major sorted).
    coo: CooMatrix,
}

/// Compute CUSP's optimal ELL width for a HYB split from row nonzero counts.
///
/// Returns the largest `k` such that more than
/// `min(nrows / relative_speed, breakeven_threshold)` rows have at least `k`
/// nonzeros.
pub fn optimal_ell_width(
    row_counts: &[usize],
    relative_speed: f64,
    breakeven_threshold: usize,
) -> usize {
    let nrows = row_counts.len();
    if nrows == 0 {
        return 0;
    }
    let max_w = row_counts.iter().copied().max().unwrap_or(0);
    // count_ge[k] = number of rows with >= k nonzeros, built from a histogram.
    let mut hist = vec![0usize; max_w + 2];
    for &c in row_counts {
        hist[c] += 1;
    }
    let cutoff = ((nrows as f64 / relative_speed) as usize).min(breakeven_threshold);
    let mut count_ge = nrows;
    let mut width = 0;
    for k in 1..=max_w {
        count_ge -= hist[k - 1];
        if count_ge > cutoff {
            width = k;
        } else {
            break;
        }
    }
    width
}

impl HybMatrix {
    /// Convert from CSR using CUSP's default split parameters.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        Self::from_csr_with_params(csr, DEFAULT_RELATIVE_SPEED, DEFAULT_BREAKEVEN_THRESHOLD)
    }

    /// Convert from CSR with explicit split parameters.
    pub fn from_csr_with_params(
        csr: &CsrMatrix,
        relative_speed: f64,
        breakeven_threshold: usize,
    ) -> Self {
        let nrows = csr.nrows();
        let counts = csr.row_counts();
        let width = optimal_ell_width(&counts, relative_speed, breakeven_threshold);

        let mut ell_cols = vec![crate::ell::ELL_PAD; nrows * width];
        let mut ell_vals = vec![0.0; nrows * width];
        let mut ell_nnz = 0usize;
        let mut coo_r = Vec::new();
        let mut coo_c = Vec::new();
        let mut coo_v = Vec::new();
        for r in 0..nrows {
            let (cols, vals) = csr.row(r);
            for (k, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                if k < width {
                    ell_cols[k * nrows + r] = c;
                    ell_vals[k * nrows + r] = v;
                    ell_nnz += 1;
                } else {
                    coo_r.push(r as u32);
                    coo_c.push(c);
                    coo_v.push(v);
                }
            }
        }
        HybMatrix {
            nrows,
            ncols: csr.ncols(),
            ell_width: width,
            ell_cols,
            ell_vals,
            ell_nnz,
            coo: CooMatrix::from_sorted_parts(nrows, csr.ncols(), coo_r, coo_c, coo_v),
        }
    }

    /// ELL slab width of the hybrid split.
    pub fn ell_width(&self) -> usize {
        self.ell_width
    }

    /// Total ELL slab slots including padding (the paper's `hyb_ell_size`).
    pub fn ell_slab_size(&self) -> usize {
        self.nrows * self.ell_width
    }

    /// True nonzeros stored in the ELL part.
    pub fn ell_nnz(&self) -> usize {
        self.ell_nnz
    }

    /// Nonzeros spilled into the COO tail (the paper's `hyb_coo`).
    pub fn coo_nnz(&self) -> usize {
        self.coo.nnz()
    }

    /// Fraction of nonzeros stored in the ELL part (the paper's
    /// `hyb_ell_frac`).
    pub fn ell_fraction(&self) -> f64 {
        let total = self.nnz();
        if total == 0 {
            1.0
        } else {
            self.ell_nnz as f64 / total as f64
        }
    }

    /// The COO overflow part.
    pub fn coo_part(&self) -> &CooMatrix {
        &self.coo
    }

    /// Raw column-major ELL slab arrays `(cols, vals)` of the regular
    /// part. Exposed for the SpMM kernel.
    pub fn ell_slab(&self) -> (&[u32], &[f64]) {
        (&self.ell_cols, &self.ell_vals)
    }

    /// Convert back to COO (merging ELL and overflow parts).
    pub fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            for k in 0..self.ell_width {
                let c = self.ell_cols[k * self.nrows + r];
                if c != crate::ell::ELL_PAD {
                    triplets.push((r, c as usize, self.ell_vals[k * self.nrows + r]));
                }
            }
        }
        triplets.extend(self.coo.iter());
        CooMatrix::from_triplets(self.nrows, self.ncols, &triplets)
            .expect("HYB parts hold a valid matrix")
    }
}

impl SpMv for HybMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.ell_nnz + self.coo.nnz()
    }

    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        y.fill(0.0);
        // ELL part, column-by-column like the ELL kernel.
        for k in 0..self.ell_width {
            let cols = &self.ell_cols[k * self.nrows..(k + 1) * self.nrows];
            let vals = &self.ell_vals[k * self.nrows..(k + 1) * self.nrows];
            for r in 0..self.nrows {
                let c = cols[r];
                if c != crate::ell::ELL_PAD {
                    y[r] += vals[r] * x[c as usize];
                }
            }
        }
        // COO tail.
        for (r, c, v) in self.coo.iter() {
            y[r] += v * x[c];
        }
    }

    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        use rayon::prelude::*;
        let nrows = self.nrows;
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            let mut sum = 0.0;
            for k in 0..self.ell_width {
                let c = self.ell_cols[k * nrows + r];
                if c != crate::ell::ELL_PAD {
                    sum += self.ell_vals[k * nrows + r] * x[c as usize];
                }
            }
            *yr = sum;
        });
        // COO tail is typically tiny; apply sequentially.
        for (r, c, v) in self.coo.iter() {
            y[r] += v * x[c];
        }
    }

    fn memory_bytes(&self) -> usize {
        self.ell_slab_size() * (4 + 8) + self.coo.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    /// 6 rows: five rows with 2 nonzeros, one row with 6.
    fn skewed_csr() -> CsrMatrix {
        let mut t = Vec::new();
        for r in 0..5 {
            t.push((r, r, 1.0));
            t.push((r, (r + 1) % 8, 2.0));
        }
        for c in 0..6 {
            t.push((5, c, 3.0));
        }
        CsrMatrix::from(&CooMatrix::from_triplets(6, 8, &t).unwrap())
    }

    #[test]
    fn optimal_width_thirds_rule() {
        // 9 rows with 1 nnz, 3 rows with 5: cutoff = min(12/3, 4096) = 4;
        // count_ge(1) = 12 > 4 -> width >= 1; count_ge(2) = 3, not > 4.
        let counts = [1, 1, 1, 1, 1, 1, 1, 1, 1, 5, 5, 5];
        assert_eq!(optimal_ell_width(&counts, 3.0, 4096), 1);
    }

    #[test]
    fn optimal_width_uniform_rows() {
        let counts = [4usize; 30];
        assert_eq!(optimal_ell_width(&counts, 3.0, 4096), 4);
    }

    #[test]
    fn optimal_width_empty() {
        assert_eq!(optimal_ell_width(&[], 3.0, 4096), 0);
        assert_eq!(optimal_ell_width(&[0, 0, 0], 3.0, 4096), 0);
    }

    #[test]
    fn split_preserves_entries() {
        let csr = skewed_csr();
        let hyb = HybMatrix::from_csr_with_params(&csr, 3.0, 4096);
        assert_eq!(hyb.nnz(), csr.nnz());
        assert_eq!(CsrMatrix::from(&hyb.to_coo()), csr);
        // width should be 2 (5 of 6 rows have >= 2 entries; cutoff = 2)
        assert_eq!(hyb.ell_width(), 2);
        assert_eq!(hyb.coo_nnz(), 4); // heavy row spills 6 - 2 = 4 entries
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = skewed_csr();
        let hyb = HybMatrix::from_csr(&csr);
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 - 1.0).collect();
        let (mut y1, mut y2, mut y3) = (vec![0.0; 6], vec![0.0; 6], vec![0.0; 6]);
        csr.spmv(&x, &mut y1);
        hyb.spmv(&x, &mut y2);
        hyb.spmv_par(&x, &mut y3);
        for i in 0..6 {
            assert!((y1[i] - y2[i]).abs() < 1e-12);
            assert!((y1[i] - y3[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn ell_fraction_bounds() {
        let hyb = HybMatrix::from_csr(&skewed_csr());
        let f = hyb.ell_fraction();
        assert!(f > 0.0 && f <= 1.0);
        assert!((f - hyb.ell_nnz() as f64 / hyb.nnz() as f64).abs() < 1e-15);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from(&CooMatrix::zeros(3, 3));
        let hyb = HybMatrix::from_csr(&csr);
        assert_eq!(hyb.nnz(), 0);
        assert_eq!(hyb.ell_fraction(), 1.0);
    }
}
