//! Diagonal (DIA) format: one dense lane per occupied diagonal.
//!
//! DIA stores a matrix as a set of diagonals identified by their offset
//! (`col - row`). It excels for banded matrices but can take `O(n^2)` space
//! in the worst case, so the conversion rejects matrices with too many
//! occupied diagonals. The format is not one of the four benchmarked classes
//! but is required for the paper's `diagonals` / `dia_size` / `dia_frac`
//! features.

use crate::{CooMatrix, CsrMatrix, MatrixError, Result, SpMv};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Sparse matrix in diagonal format.
///
/// `data` is laid out diagonal-major: lane `d` occupies
/// `data[d * nrows .. (d + 1) * nrows]`, indexed by row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiaMatrix {
    nrows: usize,
    ncols: usize,
    /// Sorted offsets (`col - row`) of the occupied diagonals.
    offsets: Vec<i64>,
    data: Vec<f64>,
    nnz: usize,
}

impl DiaMatrix {
    /// Convert from CSR, rejecting matrices with more than `max_diagonals`
    /// occupied diagonals (padding would blow up memory).
    pub fn try_from_csr(csr: &CsrMatrix, max_diagonals: usize) -> Result<Self> {
        let occupied: BTreeSet<i64> = csr.iter().map(|(r, c, _)| c as i64 - r as i64).collect();
        if occupied.len() > max_diagonals {
            return Err(MatrixError::DiaTooManyDiagonals {
                diagonals: occupied.len(),
                limit: max_diagonals,
            });
        }
        let offsets: Vec<i64> = occupied.into_iter().collect();
        let nrows = csr.nrows();
        let mut data = vec![0.0; offsets.len() * nrows];
        for (r, c, v) in csr.iter() {
            let off = c as i64 - r as i64;
            let lane = offsets.binary_search(&off).expect("offset collected above");
            data[lane * nrows + r] = v;
        }
        Ok(DiaMatrix {
            nrows,
            ncols: csr.ncols(),
            offsets,
            data,
            nnz: csr.nnz(),
        })
    }

    /// Number of occupied diagonals (the paper's `diagonals` feature).
    pub fn num_diagonals(&self) -> usize {
        self.offsets.len()
    }

    /// Offsets of the occupied diagonals, sorted ascending.
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Raw diagonal-major lane data (`num_diagonals * nrows` slots).
    /// Exposed for the SpMM kernel.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Total stored slots including padding (the paper's `dia_size`).
    pub fn storage_size(&self) -> usize {
        self.data.len()
    }

    /// Fraction of stored slots that are true nonzeros (the paper's
    /// `dia_frac`).
    pub fn fill_fraction(&self) -> f64 {
        if self.data.is_empty() {
            1.0
        } else {
            self.nnz as f64 / self.data.len() as f64
        }
    }

    /// Convert back to COO (drops explicit zeros introduced by padding).
    pub fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.nnz);
        for (lane, &off) in self.offsets.iter().enumerate() {
            for r in 0..self.nrows {
                let c = r as i64 + off;
                if c >= 0 && (c as usize) < self.ncols {
                    let v = self.data[lane * self.nrows + r];
                    if v != 0.0 {
                        triplets.push((r, c as usize, v));
                    }
                }
            }
        }
        CooMatrix::from_triplets(self.nrows, self.ncols, &triplets)
            .expect("DIA lanes hold a valid matrix")
    }
}

impl SpMv for DiaMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        y.fill(0.0);
        for (lane, &off) in self.offsets.iter().enumerate() {
            // Valid rows satisfy 0 <= r < nrows and 0 <= r + off < ncols.
            let lo = (-off).max(0) as usize;
            let hi_signed = (self.ncols as i64 - off).min(self.nrows as i64);
            let hi = hi_signed.max(lo as i64) as usize;
            let lane_data = &self.data[lane * self.nrows..(lane + 1) * self.nrows];
            for r in lo..hi {
                let c = (r as i64 + off) as usize;
                y[r] += lane_data[r] * x[c];
            }
        }
    }

    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        use rayon::prelude::*;
        let nrows = self.nrows;
        let ncols = self.ncols;
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            let mut sum = 0.0;
            for (lane, &off) in self.offsets.iter().enumerate() {
                let c = r as i64 + off;
                if c >= 0 && (c as usize) < ncols {
                    sum += self.data[lane * nrows + r] * x[c as usize];
                }
            }
            *yr = sum;
        });
    }

    fn memory_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for r in 0..n {
            if r > 0 {
                t.push((r, r - 1, -1.0));
            }
            t.push((r, r, 2.0));
            if r + 1 < n {
                t.push((r, r + 1, -1.0));
            }
        }
        CsrMatrix::from(&CooMatrix::from_triplets(n, n, &t).unwrap())
    }

    #[test]
    fn tridiagonal_has_three_lanes() {
        let dia = DiaMatrix::try_from_csr(&tridiag(10), 64).unwrap();
        assert_eq!(dia.num_diagonals(), 3);
        assert_eq!(dia.offsets(), &[-1, 0, 1]);
        assert_eq!(dia.storage_size(), 30);
        assert_eq!(dia.nnz(), 28);
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = tridiag(16);
        let dia = DiaMatrix::try_from_csr(&csr, 64).unwrap();
        let x: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let (mut y1, mut y2, mut y3) = (vec![0.0; 16], vec![0.0; 16], vec![0.0; 16]);
        csr.spmv(&x, &mut y1);
        dia.spmv(&x, &mut y2);
        dia.spmv_par(&x, &mut y3);
        for i in 0..16 {
            assert!((y1[i] - y2[i]).abs() < 1e-12);
            assert!((y1[i] - y3[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip() {
        let csr = tridiag(8);
        let dia = DiaMatrix::try_from_csr(&csr, 64).unwrap();
        assert_eq!(CsrMatrix::from(&dia.to_coo()), csr);
    }

    #[test]
    fn rejects_too_many_diagonals() {
        // Anti-diagonal-ish scatter: every entry on its own diagonal.
        let t: Vec<_> = (0..10).map(|i| (i, 9 - i, 1.0)).collect();
        let csr = CsrMatrix::from(&CooMatrix::from_triplets(10, 10, &t).unwrap());
        assert!(DiaMatrix::try_from_csr(&csr, 4).is_err());
        assert!(DiaMatrix::try_from_csr(&csr, 16).is_ok());
    }

    #[test]
    fn tall_matrix_regression() {
        // Regression for a proptest-found bug: tall matrices (nrows >
        // ncols) with sub-diagonal entries indexed x out of bounds.
        let coo = CooMatrix::from_triplets(6, 2, &[(0, 0, 1.0), (5, 1, 2.0), (3, 0, 3.0)]).unwrap();
        let csr = CsrMatrix::from(&coo);
        let dia = DiaMatrix::try_from_csr(&csr, 16).unwrap();
        let x = [2.0, 10.0];
        let mut y = [0.0; 6];
        dia.spmv(&x, &mut y);
        assert_eq!(y, [2.0, 0.0, 0.0, 6.0, 0.0, 20.0]);
        let mut y2 = [0.0; 6];
        dia.spmv_par(&x, &mut y2);
        assert_eq!(y, y2);
    }

    #[test]
    fn rectangular_matrix() {
        let coo = CooMatrix::from_triplets(3, 5, &[(0, 4, 1.0), (2, 0, 2.0)]).unwrap();
        let csr = CsrMatrix::from(&coo);
        let dia = DiaMatrix::try_from_csr(&csr, 16).unwrap();
        assert_eq!(dia.offsets(), &[-2, 4]);
        let x = [1.0, 1.0, 1.0, 1.0, 3.0];
        let mut y = [0.0; 3];
        dia.spmv(&x, &mut y);
        assert_eq!(y, [3.0, 0.0, 2.0]);
    }
}
