//! Synthetic sparse matrix generators.
//!
//! These families stand in for the SuiteSparse Matrix Collection: each one
//! produces a structurally distinct sparsity pattern covering a region of
//! the statistical feature space the paper's models operate on (uniform row
//! lengths, heavy-tailed degrees, banded/diagonal structure, dense blocks,
//! and pathological skew). All generators are deterministic given a seed.

use crate::CooMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Structural family of a generated matrix; mirrors the qualitative classes
/// present in SuiteSparse (FEM meshes, graphs, network traces, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Dense band around the main diagonal with partial fill.
    Banded,
    /// 5-point finite-difference stencil on a 2-D grid.
    Stencil2D,
    /// 7-point finite-difference stencil on a 3-D grid.
    Stencil3D,
    /// Uniformly random positions with near-constant row degree.
    RandomUniform,
    /// Power-law (scale-free graph) row degrees.
    PowerLaw,
    /// Dense blocks along the diagonal.
    BlockDiagonal,
    /// A handful of fully-populated off-diagonals.
    MultiDiagonal,
    /// Light rows plus a few extremely heavy rows (network-trace-like).
    RowSkewed,
    /// R-MAT/Kronecker-style graph with localized skew.
    Kronecker,
    /// Bimodal row degrees (mixture of two uniform populations).
    Bimodal,
    /// Not generated: observed at serve time and promoted into the
    /// training corpus by `spsel corpus ingest`. Deliberately absent
    /// from [`Family::ALL`], which enumerates only generators.
    Observed,
}

impl Family {
    /// All generator families in canonical order.
    pub const ALL: [Family; 10] = [
        Family::Banded,
        Family::Stencil2D,
        Family::Stencil3D,
        Family::RandomUniform,
        Family::PowerLaw,
        Family::BlockDiagonal,
        Family::MultiDiagonal,
        Family::RowSkewed,
        Family::Kronecker,
        Family::Bimodal,
    ];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Family::Banded => "banded",
            Family::Stencil2D => "stencil2d",
            Family::Stencil3D => "stencil3d",
            Family::RandomUniform => "random_uniform",
            Family::PowerLaw => "power_law",
            Family::BlockDiagonal => "block_diagonal",
            Family::MultiDiagonal => "multi_diagonal",
            Family::RowSkewed => "row_skewed",
            Family::Kronecker => "kronecker",
            Family::Bimodal => "bimodal",
            Family::Observed => "observed",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sample `k` distinct values from `0..n` with Floyd's algorithm, sorted.
fn sample_distinct<R: Rng>(rng: &mut R, k: usize, n: usize) -> Vec<u32> {
    debug_assert!(k <= n);
    let mut set = HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if !set.insert(t as u32) {
            set.insert(j as u32);
        }
    }
    let mut v: Vec<u32> = set.into_iter().collect();
    v.sort_unstable();
    v
}

/// Build a COO matrix from per-row sorted distinct column lists.
fn from_rows(nrows: usize, ncols: usize, rows_cols: Vec<Vec<u32>>, rng: &mut StdRng) -> CooMatrix {
    let nnz: usize = rows_cols.iter().map(|r| r.len()).sum();
    let mut rows = Vec::with_capacity(nnz);
    let mut cols = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (r, cs) in rows_cols.into_iter().enumerate() {
        for c in cs {
            rows.push(r as u32);
            cols.push(c);
            vals.push(rng.gen_range(-1.0..1.0));
        }
    }
    CooMatrix::from_sorted_parts(nrows, ncols, rows, cols, vals)
}

/// Banded matrix: entries within `bandwidth` of the diagonal, kept with
/// probability `fill`.
pub fn banded(n: usize, bandwidth: usize, fill: f64, seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows_cols = Vec::with_capacity(n);
    for r in 0..n {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth + 1).min(n);
        let mut cs = Vec::new();
        for c in lo..hi {
            if c == r || rng.gen_bool(fill) {
                cs.push(c as u32);
            }
        }
        rows_cols.push(cs);
    }
    from_rows(n, n, rows_cols, &mut rng)
}

/// 5-point stencil on a `side x side` grid (classic 2-D Laplacian pattern).
pub fn stencil2d(side: usize, seed: u64) -> CooMatrix {
    let n = side * side;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows_cols = Vec::with_capacity(n);
    for i in 0..side {
        for j in 0..side {
            let r = i * side + j;
            let mut cs = Vec::new();
            if i > 0 {
                cs.push((r - side) as u32);
            }
            if j > 0 {
                cs.push((r - 1) as u32);
            }
            cs.push(r as u32);
            if j + 1 < side {
                cs.push((r + 1) as u32);
            }
            if i + 1 < side {
                cs.push((r + side) as u32);
            }
            rows_cols.push(cs);
        }
    }
    from_rows(n, n, rows_cols, &mut rng)
}

/// 7-point stencil on a `side^3` grid (3-D Laplacian pattern).
pub fn stencil3d(side: usize, seed: u64) -> CooMatrix {
    let n = side * side * side;
    let mut rng = StdRng::seed_from_u64(seed);
    let plane = side * side;
    let mut rows_cols = Vec::with_capacity(n);
    for i in 0..side {
        for j in 0..side {
            for k in 0..side {
                let r = i * plane + j * side + k;
                let mut cs = Vec::new();
                if i > 0 {
                    cs.push((r - plane) as u32);
                }
                if j > 0 {
                    cs.push((r - side) as u32);
                }
                if k > 0 {
                    cs.push((r - 1) as u32);
                }
                cs.push(r as u32);
                if k + 1 < side {
                    cs.push((r + 1) as u32);
                }
                if j + 1 < side {
                    cs.push((r + side) as u32);
                }
                if i + 1 < side {
                    cs.push((r + plane) as u32);
                }
                rows_cols.push(cs);
            }
        }
    }
    from_rows(n, n, rows_cols, &mut rng)
}

/// Uniform random matrix: each row draws its degree from a narrow range
/// around `mean_degree` and places entries at uniform random columns.
pub fn random_uniform(nrows: usize, ncols: usize, mean_degree: usize, seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let lo = mean_degree.saturating_sub(mean_degree / 4).max(1);
    let hi = (mean_degree + mean_degree / 4).max(lo);
    let mut rows_cols = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let k = rng.gen_range(lo..=hi).min(ncols);
        rows_cols.push(sample_distinct(&mut rng, k, ncols));
    }
    from_rows(nrows, ncols, rows_cols, &mut rng)
}

/// Power-law matrix: row degrees follow a discrete Pareto with exponent
/// `gamma`; degree capped at `max_degree`.
pub fn power_law(
    nrows: usize,
    ncols: usize,
    min_degree: usize,
    gamma: f64,
    max_degree: usize,
    seed: u64,
) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = max_degree.min(ncols);
    let mut rows_cols = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        // Inverse-CDF sample from Pareto(min_degree, gamma - 1).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let k = (min_degree as f64 * u.powf(-1.0 / (gamma - 1.0))) as usize;
        let k = k.clamp(min_degree, cap).max(1);
        rows_cols.push(sample_distinct(&mut rng, k, ncols));
    }
    from_rows(nrows, ncols, rows_cols, &mut rng)
}

/// Block-diagonal matrix with dense `block x block` blocks.
pub fn block_diagonal(nblocks: usize, block: usize, fill: f64, seed: u64) -> CooMatrix {
    let n = nblocks * block;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows_cols = Vec::with_capacity(n);
    for b in 0..nblocks {
        for i in 0..block {
            let r = b * block + i;
            let mut cs = Vec::new();
            for j in 0..block {
                let c = b * block + j;
                if c == r || rng.gen_bool(fill) {
                    cs.push(c as u32);
                }
            }
            rows_cols.push(cs);
        }
    }
    from_rows(n, n, rows_cols, &mut rng)
}

/// Matrix with `ndiags` fully populated diagonals at spread-out offsets.
pub fn multi_diagonal(n: usize, ndiags: usize, seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    // Offsets: 0 plus symmetric pairs at pseudo-random distances.
    let mut offsets: Vec<i64> = vec![0];
    let mut seen: HashSet<i64> = offsets.iter().copied().collect();
    while offsets.len() < ndiags {
        let mag = rng.gen_range(1..(n as i64 / 2).max(2));
        let off = if rng.gen_bool(0.5) { mag } else { -mag };
        if seen.insert(off) {
            offsets.push(off);
        }
    }
    let mut rows_cols = Vec::with_capacity(n);
    for r in 0..n as i64 {
        let mut cs: Vec<u32> = offsets
            .iter()
            .filter_map(|&o| {
                let c = r + o;
                (c >= 0 && c < n as i64).then_some(c as u32)
            })
            .collect();
        cs.sort_unstable();
        rows_cols.push(cs);
    }
    from_rows(n, n, rows_cols, &mut rng)
}

/// Network-trace-like pattern: most rows have `light` nonzeros, a fraction
/// `heavy_frac` of rows have `heavy` nonzeros. Reproduces the skew that
/// makes CSR catastrophically slow (the paper's `mawi` example).
pub fn row_skewed(
    nrows: usize,
    ncols: usize,
    light: usize,
    heavy: usize,
    heavy_frac: f64,
    seed: u64,
) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows_cols = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let k = if rng.gen_bool(heavy_frac) {
            heavy.min(ncols)
        } else {
            light.min(ncols)
        };
        rows_cols.push(sample_distinct(&mut rng, k.max(1), ncols));
    }
    from_rows(nrows, ncols, rows_cols, &mut rng)
}

/// R-MAT/Kronecker-style graph: `nnz_target` edges dropped recursively into
/// quadrants with probabilities `(a, b, c, 1 - a - b - c)`, duplicates
/// discarded. `scale` gives `n = 2^scale` vertices.
pub fn kronecker(scale: u32, nnz_target: usize, a: f64, b: f64, c: f64, seed: u64) -> CooMatrix {
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(nnz_target * 2);
    let mut attempts = 0usize;
    let max_attempts = nnz_target.saturating_mul(8).max(64);
    while seen.len() < nnz_target && attempts < max_attempts {
        attempts += 1;
        let (mut r, mut col) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let p: f64 = rng.gen();
            let (dr, dc) = if p < a {
                (0, 0)
            } else if p < a + b {
                (0, 1)
            } else if p < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << level;
            col |= dc << level;
        }
        seen.insert((r as u32, col as u32));
    }
    let mut triplets: Vec<(usize, usize, f64)> = seen
        .into_iter()
        .map(|(r, c)| (r as usize, c as usize, 0.0))
        .collect();
    triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
    for t in triplets.iter_mut() {
        t.2 = rng.gen_range(-1.0..1.0);
    }
    CooMatrix::from_triplets(n, n, &triplets).expect("kronecker edges are in bounds")
}

/// Bimodal row degrees: a mixture of two uniform row-degree populations.
pub fn bimodal(
    nrows: usize,
    ncols: usize,
    degree_a: usize,
    degree_b: usize,
    frac_b: f64,
    seed: u64,
) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows_cols = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let k = if rng.gen_bool(frac_b) {
            degree_b
        } else {
            degree_a
        };
        rows_cols.push(sample_distinct(&mut rng, k.min(ncols).max(1), ncols));
    }
    from_rows(nrows, ncols, rows_cols, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpMv;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(banded(50, 3, 0.7, 9), banded(50, 3, 0.7, 9));
        assert_eq!(
            power_law(40, 40, 2, 2.5, 20, 1),
            power_law(40, 40, 2, 2.5, 20, 1)
        );
        assert_eq!(
            kronecker(6, 200, 0.57, 0.19, 0.19, 5),
            kronecker(6, 200, 0.57, 0.19, 0.19, 5)
        );
    }

    #[test]
    fn stencil2d_row_degrees() {
        let m = stencil2d(5, 0);
        assert_eq!(m.nrows(), 25);
        let counts = m.row_counts();
        // Interior rows have 5 entries, corners 3.
        assert_eq!(*counts.iter().max().unwrap(), 5);
        assert_eq!(*counts.iter().min().unwrap(), 3);
        // Stencil is structurally symmetric.
        assert_eq!(m.transpose().row_counts(), counts);
    }

    #[test]
    fn stencil3d_max_degree_seven() {
        let m = stencil3d(4, 0);
        assert_eq!(m.nrows(), 64);
        assert_eq!(*m.row_counts().iter().max().unwrap(), 7);
    }

    #[test]
    fn banded_respects_bandwidth() {
        let m = banded(30, 2, 1.0, 3);
        for (r, c, _) in m.iter() {
            assert!((r as i64 - c as i64).abs() <= 2);
        }
        // Full fill: every row has its whole band.
        assert_eq!(m.row_counts()[15], 5);
    }

    #[test]
    fn random_uniform_degree_range() {
        let m = random_uniform(100, 200, 8, 11);
        for &c in &m.row_counts() {
            assert!((6..=10).contains(&c), "degree {c} outside range");
        }
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        let m = power_law(500, 500, 2, 2.0, 400, 17);
        let counts = m.row_counts();
        let max = *counts.iter().max().unwrap();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(max as f64 > 4.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn block_diagonal_stays_in_blocks() {
        let m = block_diagonal(4, 5, 0.8, 23);
        for (r, c, _) in m.iter() {
            assert_eq!(r / 5, c / 5, "entry ({r},{c}) crosses block boundary");
        }
    }

    #[test]
    fn multi_diagonal_has_expected_lanes() {
        let m = multi_diagonal(60, 5, 2);
        let offsets: std::collections::HashSet<i64> =
            m.iter().map(|(r, c, _)| c as i64 - r as i64).collect();
        assert_eq!(offsets.len(), 5);
        assert!(offsets.contains(&0));
    }

    #[test]
    fn row_skewed_has_two_populations() {
        let m = row_skewed(300, 4000, 3, 600, 0.02, 7);
        let counts = m.row_counts();
        assert!(counts.contains(&600));
        assert!(counts.iter().filter(|&&c| c == 3).count() > 200);
    }

    #[test]
    fn kronecker_shape_and_count() {
        let m = kronecker(7, 500, 0.57, 0.19, 0.19, 3);
        assert_eq!(m.nrows(), 128);
        assert!(
            m.nnz() > 300,
            "duplicate collapse too aggressive: {}",
            m.nnz()
        );
    }

    #[test]
    fn bimodal_degrees() {
        let m = bimodal(200, 500, 4, 40, 0.3, 5);
        let counts = m.row_counts();
        assert!(counts.contains(&4));
        assert!(counts.contains(&40));
        assert!(counts.iter().all(|&c| c == 4 || c == 40));
    }

    #[test]
    fn sample_distinct_is_distinct_and_sorted() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let v = sample_distinct(&mut rng, 10, 30);
            assert_eq!(v.len(), 10);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            assert!(v.iter().all(|&c| c < 30));
        }
        // Degenerate: k == n
        let v = sample_distinct(&mut rng, 5, 5);
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }
}
