//! The `SpMm` trait: multi-vector products (`Y = A * X`) for every format.
//!
//! SpMM is the second workload of the selection problem: GNN inference
//! multiplies a sparse adjacency/weight matrix against a dense feature
//! block of `k` columns (Qiu et al. use exactly this shape per layer).
//! Operands are row-major: `x` is `ncols x k`, `y` is `nrows x k`, so one
//! sparse entry updates a contiguous `k`-slice of the output — the memory
//! access pattern that rewards formats with block reuse.
//!
//! Accumulation order contract: every implementation walks each output
//! row's nonzeros in ascending column order, summing left to right from
//! `0.0`, exactly like the COO reference walk (the HYB tail is the one
//! documented exception — its overflow entries come after the ELL bulk).
//! The dense-reference property suite (`tests/spmm_dense_reference.rs`)
//! pins COO to the dense walk bit for bit and the rest to a 1e-12
//! relative bound.

use crate::ell::ELL_PAD;
use crate::sell::SELL_PAD;
use crate::{CooMatrix, CsrMatrix, DiaMatrix, EllMatrix, HybMatrix, MatrixError, SellMatrix, SpMv};

/// Sparse matrix–dense matrix multiplication, `Y = A * X` with `X` a
/// row-major `ncols x k` block and `Y` a row-major `nrows x k` block.
pub trait SpMm: SpMv {
    /// Overwrite `y` with `A * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols() * k` or `y.len() != nrows() * k`
    /// (checked via [`SpMm::check_spmm_dims`] in every implementation).
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]);

    /// Validate SpMM operand shapes; shared by all implementations.
    fn check_spmm_dims(&self, x: &[f64], k: usize, y: &[f64]) -> Result<(), MatrixError> {
        if x.len() != self.ncols() * k {
            return Err(MatrixError::DimensionMismatch {
                expected: self.ncols() * k,
                got: x.len(),
                what: "x block",
            });
        }
        if y.len() != self.nrows() * k {
            return Err(MatrixError::DimensionMismatch {
                expected: self.nrows() * k,
                got: y.len(),
                what: "y block",
            });
        }
        Ok(())
    }
}

/// Scale-accumulate one sparse entry against a k-slice: `y += v * x`.
#[inline]
fn axpy(v: f64, x: &[f64], y: &mut [f64]) {
    for (yj, &xj) in y.iter_mut().zip(x) {
        *yj += v * xj;
    }
}

impl SpMm for CooMatrix {
    /// Reference kernel: triplets are stored row-major sorted, so each
    /// output row accumulates in ascending column order.
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]) {
        self.check_spmm_dims(x, k, y).unwrap();
        y.fill(0.0);
        for (r, c, v) in self.iter() {
            axpy(v, &x[c * k..(c + 1) * k], &mut y[r * k..(r + 1) * k]);
        }
    }
}

impl SpMm for CsrMatrix {
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]) {
        self.check_spmm_dims(x, k, y).unwrap();
        y.fill(0.0);
        for r in 0..self.nrows() {
            let yrow = &mut y[r * k..(r + 1) * k];
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                axpy(v, &x[c as usize * k..(c as usize + 1) * k], yrow);
            }
        }
    }
}

impl SpMm for EllMatrix {
    /// Row-major traversal of the slab: slot `k` of a row is its `k`-th
    /// nonzero in sorted column order, so accumulation matches CSR.
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]) {
        self.check_spmm_dims(x, k, y).unwrap();
        y.fill(0.0);
        let nrows = self.nrows();
        let (slab_cols, slab_vals) = self.slab();
        for r in 0..nrows {
            let yrow = &mut y[r * k..(r + 1) * k];
            for slot in 0..self.width() {
                let c = slab_cols[slot * nrows + r];
                if c != ELL_PAD {
                    let v = slab_vals[slot * nrows + r];
                    axpy(v, &x[c as usize * k..(c as usize + 1) * k], yrow);
                }
            }
        }
    }
}

impl SpMm for HybMatrix {
    /// ELL bulk first, COO tail second (the documented reassociation:
    /// spilled entries accumulate after the row's ELL entries).
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]) {
        self.check_spmm_dims(x, k, y).unwrap();
        y.fill(0.0);
        let nrows = self.nrows();
        let (ell_cols, ell_vals) = self.ell_slab();
        for r in 0..nrows {
            let yrow = &mut y[r * k..(r + 1) * k];
            for slot in 0..self.ell_width() {
                let c = ell_cols[slot * nrows + r];
                if c != ELL_PAD {
                    let v = ell_vals[slot * nrows + r];
                    axpy(v, &x[c as usize * k..(c as usize + 1) * k], yrow);
                }
            }
        }
        for (r, c, v) in self.coo_part().iter() {
            axpy(v, &x[c * k..(c + 1) * k], &mut y[r * k..(r + 1) * k]);
        }
    }
}

impl SpMm for SellMatrix {
    /// Per-lane traversal: each original row's nonzeros live in one lane
    /// of one slice in ascending column order, so per-row accumulation
    /// matches CSR despite the row permutation.
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]) {
        self.check_spmm_dims(x, k, y).unwrap();
        y.fill(0.0);
        let c_height = self.chunk_height();
        let (slab_cols, slab_vals) = self.slab();
        let (widths, ptr, perm) = self.slices();
        for s in 0..self.n_slices() {
            let base = ptr[s];
            let lanes = ((s + 1) * c_height).min(self.nrows()) - s * c_height;
            let rows = &perm[s * c_height..s * c_height + lanes];
            for (lane, &orig) in rows.iter().enumerate() {
                let yrow = &mut y[orig as usize * k..(orig as usize + 1) * k];
                for slot in 0..widths[s] {
                    let cc = slab_cols[base + slot * c_height + lane];
                    if cc != SELL_PAD {
                        let v = slab_vals[base + slot * c_height + lane];
                        axpy(v, &x[cc as usize * k..(cc as usize + 1) * k], yrow);
                    }
                }
            }
        }
    }
}

impl SpMm for DiaMatrix {
    /// Per-row walk over the sorted offsets: for a fixed row, ascending
    /// diagonal offset is ascending column, so accumulation matches CSR.
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]) {
        self.check_spmm_dims(x, k, y).unwrap();
        y.fill(0.0);
        let nrows = self.nrows();
        let ncols = self.ncols();
        let data = self.data();
        for r in 0..nrows {
            let yrow = &mut y[r * k..(r + 1) * k];
            for (lane, &off) in self.offsets().iter().enumerate() {
                let c = r as i64 + off;
                if c >= 0 && (c as usize) < ncols {
                    let v = data[lane * nrows + r];
                    if v != 0.0 {
                        axpy(v, &x[c as usize * k..(c as usize + 1) * k], yrow);
                    }
                }
            }
        }
    }
}
