//! The set of storage formats considered by the format-selection problem.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Sparse storage formats known to the workspace.
///
/// The first four variants are CUSP's formats — the paper's original label
/// space. `Format::ALL` iterates them in the fixed order used throughout
/// the workspace (COO, CSR, ELL, HYB), matching the row order of Table 3.
/// The remaining variants (BSR, SELL-C-σ, DIA) only enter the selection
/// problem through an extended [`crate::FormatRegistry`]; every id is
/// stable, so artifacts and noise lanes never shift when the registry
/// grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Format {
    /// Coordinate format: explicit (row, col, value) triplets.
    Coo,
    /// Compressed sparse row: the de-facto default format.
    Csr,
    /// ELLPACK: dense `nrows x max_row_nnz` slab with padding.
    Ell,
    /// Hybrid: ELL for the regular part plus COO for overflow entries.
    Hyb,
    /// Blocked sparse row: dense `b x b` blocks addressed CSR-style.
    Bsr,
    /// SELL-C-σ: sliced ELLPACK with scoped row sorting.
    Sell,
    /// Diagonal format: one dense lane per occupied diagonal.
    Dia,
}

impl Format {
    /// The four CUSP formats in canonical order — the paper's original
    /// (and the default registry's) label space.
    pub const ALL: [Format; 4] = [Format::Coo, Format::Csr, Format::Ell, Format::Hyb];

    /// Number of formats in the paper's classification problem (the
    /// default registry's class count).
    pub const COUNT: usize = 4;

    /// Every format the workspace knows, in stable id order.
    pub const UNIVERSE: [Format; 7] = [
        Format::Coo,
        Format::Csr,
        Format::Ell,
        Format::Hyb,
        Format::Bsr,
        Format::Sell,
        Format::Dia,
    ];

    /// Number of formats in [`Format::UNIVERSE`].
    pub const UNIVERSE_COUNT: usize = 7;

    /// Stable small integer id; used as the class label in ML code and as
    /// the per-format noise lane in the GPU model. Ids never change when
    /// new formats are appended.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Format::Coo => 0,
            Format::Csr => 1,
            Format::Ell => 2,
            Format::Hyb => 3,
            Format::Bsr => 4,
            Format::Sell => 5,
            Format::Dia => 6,
        }
    }

    /// Inverse of [`Format::index`]. Panics on out-of-range ids.
    #[inline]
    pub fn from_index(i: usize) -> Format {
        Format::UNIVERSE[i]
    }

    /// Short upper-case name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Format::Coo => "COO",
            Format::Csr => "CSR",
            Format::Ell => "ELL",
            Format::Hyb => "HYB",
            Format::Bsr => "BSR",
            Format::Sell => "SELL",
            Format::Dia => "DIA",
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "COO" => Ok(Format::Coo),
            "CSR" => Ok(Format::Csr),
            "ELL" => Ok(Format::Ell),
            "HYB" => Ok(Format::Hyb),
            "BSR" => Ok(Format::Bsr),
            "SELL" | "SELL-C-SIGMA" => Ok(Format::Sell),
            "DIA" => Ok(Format::Dia),
            other => Err(format!("unknown format `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, f) in Format::UNIVERSE.into_iter().enumerate() {
            assert_eq!(f.index(), i);
            assert_eq!(Format::from_index(f.index()), f);
        }
    }

    #[test]
    fn cusp_prefix_is_stable() {
        // The paper's four-class label space must stay at ids 0..3 no
        // matter what the universe grows to.
        assert_eq!(&Format::UNIVERSE[..Format::COUNT], &Format::ALL);
    }

    #[test]
    fn parse_names() {
        for f in Format::UNIVERSE {
            assert_eq!(f.name().parse::<Format>().unwrap(), f);
            assert_eq!(f.name().to_lowercase().parse::<Format>().unwrap(), f);
        }
        assert!("CSR5".parse::<Format>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Format::Hyb.to_string(), "HYB");
    }
}
