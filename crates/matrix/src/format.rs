//! The set of storage formats considered by the format-selection problem.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Sparse storage formats benchmarked by the paper (CUSP's four formats).
///
/// `Format::ALL` iterates in the fixed order used throughout the workspace
/// (COO, CSR, ELL, HYB) which matches the row order of Table 3 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Format {
    /// Coordinate format: explicit (row, col, value) triplets.
    Coo,
    /// Compressed sparse row: the de-facto default format.
    Csr,
    /// ELLPACK: dense `nrows x max_row_nnz` slab with padding.
    Ell,
    /// Hybrid: ELL for the regular part plus COO for overflow entries.
    Hyb,
}

impl Format {
    /// All four benchmarked formats in canonical order.
    pub const ALL: [Format; 4] = [Format::Coo, Format::Csr, Format::Ell, Format::Hyb];

    /// Number of benchmarked formats (the number of classes in the
    /// classification problem).
    pub const COUNT: usize = 4;

    /// Stable small integer id; used as the class label in ML code.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Format::Coo => 0,
            Format::Csr => 1,
            Format::Ell => 2,
            Format::Hyb => 3,
        }
    }

    /// Inverse of [`Format::index`]. Panics on out-of-range ids.
    #[inline]
    pub fn from_index(i: usize) -> Format {
        Format::ALL[i]
    }

    /// Short upper-case name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Format::Coo => "COO",
            Format::Csr => "CSR",
            Format::Ell => "ELL",
            Format::Hyb => "HYB",
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "COO" => Ok(Format::Coo),
            "CSR" => Ok(Format::Csr),
            "ELL" => Ok(Format::Ell),
            "HYB" => Ok(Format::Hyb),
            other => Err(format!("unknown format `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for f in Format::ALL {
            assert_eq!(Format::from_index(f.index()), f);
        }
    }

    #[test]
    fn parse_names() {
        for f in Format::ALL {
            assert_eq!(f.name().parse::<Format>().unwrap(), f);
            assert_eq!(f.name().to_lowercase().parse::<Format>().unwrap(), f);
        }
        assert!("CSR5".parse::<Format>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Format::Hyb.to_string(), "HYB");
    }
}
