//! Blocked sparse row (BSR): dense `b x b` blocks addressed CSR-style.
//!
//! BSR groups the matrix into aligned `b x b` tiles and stores every tile
//! that holds at least one nonzero as a dense block. Block rows are
//! indexed by a CSR-like pointer array, blocks within a row are sorted by
//! block column. The payoff is register blocking: a multi-vector product
//! (SpMM) reads each block once and reuses it for every dense column,
//! which is why blocked formats win for GNN-style workloads (Qiu et al.).
//! The cost is zero fill: a scattered matrix stores mostly-zero blocks.

use crate::{CooMatrix, CsrMatrix, MatrixError, Result, SpMm, SpMv};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Default block edge used by the registry's BSR entry.
pub const DEFAULT_BLOCK: usize = 2;

/// Sparse matrix in BSR format with square `b x b` blocks.
///
/// Edge blocks are zero-padded; padding slots multiply against `x`
/// entries that exist (block columns never extend past the padded
/// column count), contributing exact zeros.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BsrMatrix {
    nrows: usize,
    ncols: usize,
    /// Block edge length.
    b: usize,
    /// Block-row pointer (`nblockrows + 1` entries, counts blocks).
    block_ptr: Vec<usize>,
    /// Block column index per stored block, ascending within a block row.
    block_col: Vec<u32>,
    /// Dense block payloads, row-major inside each `b x b` block.
    blocks: Vec<f64>,
    /// True (unpadded) nonzero count.
    nnz: usize,
}

impl BsrMatrix {
    /// Convert from CSR with block edge `b`.
    ///
    /// Fails with [`MatrixError::BsrBadBlock`] when `b == 0`.
    pub fn try_from_csr(csr: &CsrMatrix, b: usize) -> Result<Self> {
        if b == 0 {
            return Err(MatrixError::BsrBadBlock { block: b });
        }
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let nblockrows = nrows.div_ceil(b);
        let mut block_ptr = Vec::with_capacity(nblockrows + 1);
        block_ptr.push(0usize);
        let mut block_col: Vec<u32> = Vec::new();
        let mut blocks: Vec<f64> = Vec::new();
        // Scratch: block column -> position in the current block row.
        let nblockcols = ncols.div_ceil(b);
        let mut slot = vec![usize::MAX; nblockcols];
        let mut active: Vec<u32> = Vec::new();
        for br in 0..nblockrows {
            let row_lo = br * b;
            let row_hi = (row_lo + b).min(nrows);
            active.clear();
            // First pass: which block columns does this block row touch?
            for r in row_lo..row_hi {
                let (cols, _) = csr.row(r);
                for &c in cols {
                    let bc = c as usize / b;
                    if slot[bc] == usize::MAX {
                        slot[bc] = 0; // mark
                        active.push(bc as u32);
                    }
                }
            }
            active.sort_unstable();
            let base = blocks.len();
            for (i, &bc) in active.iter().enumerate() {
                slot[bc as usize] = base / (b * b) + i;
            }
            blocks.resize(base + active.len() * b * b, 0.0);
            // Second pass: scatter values into their dense blocks.
            for r in row_lo..row_hi {
                let lr = r - row_lo;
                let (cols, vals) = csr.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let bc = c as usize / b;
                    let lc = c as usize % b;
                    let blk = slot[bc];
                    blocks[blk * b * b + lr * b + lc] = v;
                }
            }
            for &bc in &active {
                slot[bc as usize] = usize::MAX;
            }
            block_col.extend_from_slice(&active);
            block_ptr.push(block_col.len());
        }
        Ok(BsrMatrix {
            nrows,
            ncols,
            b,
            block_ptr,
            block_col,
            blocks,
            nnz: csr.nnz(),
        })
    }

    /// Block edge length.
    pub fn block(&self) -> usize {
        self.b
    }

    /// Number of stored dense blocks.
    pub fn n_blocks(&self) -> usize {
        self.block_col.len()
    }

    /// Total stored slots including zero fill (`n_blocks * b * b`).
    pub fn slab_size(&self) -> usize {
        self.n_blocks() * self.b * self.b
    }

    /// Fraction of stored slots holding true nonzeros (the blocking
    /// analogue of ELL's fill fraction).
    pub fn fill_fraction(&self) -> f64 {
        if self.slab_size() == 0 {
            1.0
        } else {
            self.nnz as f64 / self.slab_size() as f64
        }
    }

    /// Convert back to COO (drops zero fill).
    pub fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.nnz);
        let b = self.b;
        for br in 0..self.block_ptr.len() - 1 {
            for blk in self.block_ptr[br]..self.block_ptr[br + 1] {
                let bc = self.block_col[blk] as usize;
                for lr in 0..b {
                    let r = br * b + lr;
                    if r >= self.nrows {
                        break;
                    }
                    for lc in 0..b {
                        let c = bc * b + lc;
                        if c >= self.ncols {
                            break;
                        }
                        let v = self.blocks[blk * b * b + lr * b + lc];
                        if v != 0.0 {
                            triplets.push((r, c, v));
                        }
                    }
                }
            }
        }
        CooMatrix::from_triplets(self.nrows, self.ncols, &triplets)
            .expect("BSR blocks hold a valid matrix")
    }

    /// One row's dot product against `x`, walking this row's slice of
    /// every block in its block row (ascending block column, ascending
    /// column within the block — the same left-to-right order the other
    /// kernels use).
    #[inline]
    fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        let b = self.b;
        let br = r / b;
        let lr = r % b;
        let mut sum = 0.0;
        for blk in self.block_ptr[br]..self.block_ptr[br + 1] {
            let bc = self.block_col[blk] as usize;
            let lane = &self.blocks[blk * b * b + lr * b..blk * b * b + lr * b + b];
            let c0 = bc * b;
            let width = b.min(self.ncols - c0);
            for (lc, &v) in lane[..width].iter().enumerate() {
                if v != 0.0 {
                    sum += v * x[c0 + lc];
                }
            }
        }
        sum
    }
}

impl SpMv for BsrMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        for (r, out) in y.iter_mut().enumerate() {
            *out = self.row_dot(r, x);
        }
    }

    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            *yr = self.row_dot(r, x);
        });
    }

    fn memory_bytes(&self) -> usize {
        self.block_ptr.len() * std::mem::size_of::<usize>()
            + self.block_col.len() * 4
            + self.blocks.len() * 8
    }
}

impl SpMm for BsrMatrix {
    /// Register-blocked SpMM: each dense block is read once and reused
    /// for all `k` dense columns.
    fn spmm(&self, x: &[f64], k: usize, y: &mut [f64]) {
        self.check_spmm_dims(x, k, y).unwrap();
        y.fill(0.0);
        let b = self.b;
        for br in 0..self.block_ptr.len() - 1 {
            let row_lo = br * b;
            let rows = b.min(self.nrows - row_lo);
            for blk in self.block_ptr[br]..self.block_ptr[br + 1] {
                let bc = self.block_col[blk] as usize;
                let c0 = bc * b;
                let width = b.min(self.ncols - c0);
                for lr in 0..rows {
                    let yrow = &mut y[(row_lo + lr) * k..(row_lo + lr + 1) * k];
                    let lane = &self.blocks[blk * b * b + lr * b..blk * b * b + lr * b + width];
                    for (lc, &v) in lane.iter().enumerate() {
                        if v == 0.0 {
                            continue;
                        }
                        let xrow = &x[(c0 + lc) * k..(c0 + lc + 1) * k];
                        for (yj, &xj) in yrow.iter_mut().zip(xrow) {
                            *yj += v * xj;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sample() -> CsrMatrix {
        CsrMatrix::from(&gen::power_law(37, 41, 2, 2.2, 20, 5))
    }

    #[test]
    fn roundtrip_through_coo() {
        let csr = sample();
        for b in [1, 2, 3, 4, 8] {
            let bsr = BsrMatrix::try_from_csr(&csr, b).unwrap();
            assert_eq!(CsrMatrix::from(&bsr.to_coo()), csr, "b={b}");
            assert_eq!(bsr.nnz(), csr.nnz());
        }
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = sample();
        let x: Vec<f64> = (0..41).map(|i| (i as f64 * 0.3).sin() + 0.1).collect();
        let mut want = vec![0.0; 37];
        csr.spmv(&x, &mut want);
        for b in [1, 2, 4] {
            let bsr = BsrMatrix::try_from_csr(&csr, b).unwrap();
            let (mut y1, mut y2) = (vec![0.0; 37], vec![0.0; 37]);
            bsr.spmv(&x, &mut y1);
            bsr.spmv_par(&x, &mut y2);
            for r in 0..37 {
                assert!((y1[r] - want[r]).abs() < 1e-12, "b={b} row {r}");
                assert!((y2[r] - want[r]).abs() < 1e-12, "b={b} row {r}");
            }
        }
    }

    #[test]
    fn zero_block_edge_is_a_typed_error() {
        let err = BsrMatrix::try_from_csr(&sample(), 0).unwrap_err();
        assert!(matches!(err, MatrixError::BsrBadBlock { block: 0 }));
    }

    #[test]
    fn block_one_is_fill_free() {
        let csr = sample();
        let bsr = BsrMatrix::try_from_csr(&csr, 1).unwrap();
        assert_eq!(bsr.slab_size(), csr.nnz());
        assert_eq!(bsr.fill_fraction(), 1.0);
    }

    #[test]
    fn banded_matrices_block_densely() {
        // A banded matrix's 2x2 blocks are mostly full, a scattered one's
        // mostly empty — the fill fraction tells them apart.
        let banded =
            BsrMatrix::try_from_csr(&CsrMatrix::from(&gen::banded(64, 2, 1.0, 3)), 2).unwrap();
        let scattered =
            BsrMatrix::try_from_csr(&CsrMatrix::from(&gen::random_uniform(64, 64, 4, 3)), 2)
                .unwrap();
        assert!(banded.fill_fraction() > scattered.fill_fraction());
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from(&CooMatrix::zeros(5, 7));
        let bsr = BsrMatrix::try_from_csr(&csr, 2).unwrap();
        assert_eq!(bsr.n_blocks(), 0);
        let mut y = [1.0; 5];
        bsr.spmv(&[0.0; 7], &mut y);
        assert_eq!(y, [0.0; 5]);
    }
}
