//! Row/column permutations, used to augment the training corpus the way the
//! paper derives additional CNN training instances from SuiteSparse.

use crate::{CooMatrix, Result, SpMv};
use rand::seq::SliceRandom;
use rand::Rng;

/// A permutation of `0..n`, validated at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    /// Identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n as u32).collect(),
        }
    }

    /// Uniformly random permutation.
    pub fn random<R: Rng>(n: usize, rng: &mut R) -> Self {
        let mut map: Vec<u32> = (0..n as u32).collect();
        map.shuffle(rng);
        Permutation { map }
    }

    /// Build from an explicit mapping `i -> map[i]`; must be a bijection.
    pub fn from_map(map: Vec<u32>) -> Option<Self> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &m in &map {
            let m = m as usize;
            if m >= n || seen[m] {
                return None;
            }
            seen[m] = true;
        }
        Some(Permutation { map })
    }

    /// Length of the permuted domain.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Image of index `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.map[i] as usize
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.map.len()];
        for (i, &m) in self.map.iter().enumerate() {
            inv[m as usize] = i as u32;
        }
        Permutation { map: inv }
    }
}

/// Apply a row permutation, a column permutation, or both to a COO matrix.
/// `None` leaves that dimension unchanged.
pub fn permute(
    m: &CooMatrix,
    row_perm: Option<&Permutation>,
    col_perm: Option<&Permutation>,
) -> Result<CooMatrix> {
    let triplets: Vec<(usize, usize, f64)> = m
        .iter()
        .map(|(r, c, v)| {
            (
                row_perm.map_or(r, |p| p.apply(r)),
                col_perm.map_or(c, |p| p.apply(c)),
                v,
            )
        })
        .collect();
    CooMatrix::from_triplets(m.nrows(), m.ncols(), &triplets)
}

/// Derive an augmented instance with independent random row and column
/// permutations, as the paper does for its CNN training corpus.
pub fn random_permuted<R: Rng>(m: &CooMatrix, rng: &mut R) -> CooMatrix {
    let rp = Permutation::random(m.nrows(), rng);
    let cp = Permutation::random(m.ncols(), rng);
    permute(m, Some(&rp), Some(&cp)).expect("permutation preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpMv;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0)]).unwrap()
    }

    #[test]
    fn identity_is_noop() {
        let m = sample();
        let p = Permutation::identity(3);
        assert_eq!(permute(&m, Some(&p), Some(&p)).unwrap(), m);
    }

    #[test]
    fn inverse_undoes() {
        let m = sample();
        let mut rng = StdRng::seed_from_u64(7);
        let p = Permutation::random(3, &mut rng);
        let permuted = permute(&m, Some(&p), None).unwrap();
        let back = permute(&permuted, Some(&p.inverse()), None).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_map_rejects_non_bijection() {
        assert!(Permutation::from_map(vec![0, 0, 2]).is_none());
        assert!(Permutation::from_map(vec![0, 3, 1]).is_none());
        assert!(Permutation::from_map(vec![2, 0, 1]).is_some());
    }

    #[test]
    fn permutation_preserves_nnz_and_values() {
        let m = sample();
        let mut rng = StdRng::seed_from_u64(42);
        let a = random_permuted(&m, &mut rng);
        assert_eq!(a.nnz(), m.nnz());
        let mut va: Vec<f64> = a.values().to_vec();
        let mut vm: Vec<f64> = m.values().to_vec();
        va.sort_by(f64::total_cmp);
        vm.sort_by(f64::total_cmp);
        assert_eq!(va, vm);
    }

    #[test]
    fn spmv_commutes_with_permutation() {
        // (P_r A P_c^T) (P_c x) = P_r (A x)
        let m =
            CooMatrix::from_triplets(3, 4, &[(0, 1, 2.0), (1, 3, -1.0), (2, 0, 4.0), (2, 2, 0.5)])
                .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let rp = Permutation::random(3, &mut rng);
        let cp = Permutation::random(4, &mut rng);
        let pm = permute(&m, Some(&rp), Some(&cp)).unwrap();

        let x = [1.0, 2.0, 3.0, 4.0];
        // px[cp(j)] = x[j]
        let mut px = [0.0; 4];
        for j in 0..4 {
            px[cp.apply(j)] = x[j];
        }
        let mut y = [0.0; 3];
        m.spmv(&x, &mut y);
        let mut py = [0.0; 3];
        pm.spmv(&px, &mut py);
        for i in 0..3 {
            assert!((py[rp.apply(i)] - y[i]).abs() < 1e-12);
        }
    }
}
