//! Matrix Market (`.mtx`) reading and writing.
//!
//! Supports the `matrix coordinate` variants the SuiteSparse collection
//! uses: `real` / `integer` / `pattern` values with `general` / `symmetric`
//! / `skew-symmetric` symmetry. Symmetric storage is expanded to a full
//! general matrix on read, matching what SpMV benchmarking needs.

use crate::{CooMatrix, MatrixError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueKind {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Read a Matrix Market file from any reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CooMatrix> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // Header line.
    let (lineno, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
            None => {
                return Err(MatrixError::Parse {
                    line: 0,
                    msg: "empty file".into(),
                })
            }
        }
    };
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(MatrixError::Parse {
            line: lineno,
            msg: format!("bad header `{header}`"),
        });
    }
    if toks[2] != "coordinate" {
        return Err(MatrixError::Parse {
            line: lineno,
            msg: format!("unsupported storage `{}` (only coordinate)", toks[2]),
        });
    }
    let kind = match toks[3].as_str() {
        "real" => ValueKind::Real,
        "integer" => ValueKind::Integer,
        "pattern" => ValueKind::Pattern,
        other => {
            return Err(MatrixError::Parse {
                line: lineno,
                msg: format!("unsupported value type `{other}`"),
            })
        }
    };
    let symmetry = match toks[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(MatrixError::Parse {
                line: lineno,
                msg: format!("unsupported symmetry `{other}`"),
            })
        }
    };

    // Size line (skipping comments).
    let (lineno, size_line) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (i + 1, line);
                }
            }
            None => {
                return Err(MatrixError::Parse {
                    line: 0,
                    msg: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<std::result::Result<_, _>>()
        .map_err(|e| MatrixError::Parse {
            line: lineno,
            msg: format!("bad size line: {e}"),
        })?;
    if dims.len() != 3 {
        return Err(MatrixError::Parse {
            line: lineno,
            msg: "size line must have 3 fields".into(),
        });
    }
    let (nrows, ncols, declared_nnz) = (dims[0], dims[1], dims[2]);
    // Guard against absurd size lines before trusting them: the dense
    // extent must be representable and the entry count cannot exceed it.
    let dense = nrows.checked_mul(ncols).ok_or_else(|| MatrixError::Parse {
        line: lineno,
        msg: format!("dimension overflow: {nrows} x {ncols}"),
    })?;
    if declared_nnz > dense {
        return Err(MatrixError::Parse {
            line: lineno,
            msg: format!("declared {declared_nnz} entries exceed {nrows} x {ncols} capacity"),
        });
    }

    // Cap preallocation so a corrupt size line cannot trigger a huge
    // allocation before any entry is parsed.
    const PREALLOC_CAP: usize = 1 << 20;
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(declared_nnz.min(PREALLOC_CAP));
    let mut seen = 0usize;
    for (i, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut fields = t.split_whitespace();
        let parse_idx = |f: Option<&str>, lineno: usize| -> Result<usize> {
            f.ok_or_else(|| MatrixError::Parse {
                line: lineno,
                msg: "missing index".into(),
            })?
            .parse::<usize>()
            .map_err(|e| MatrixError::Parse {
                line: lineno,
                msg: format!("bad index: {e}"),
            })
        };
        let r = parse_idx(fields.next(), i + 1)?;
        let c = parse_idx(fields.next(), i + 1)?;
        if r == 0 || c == 0 {
            return Err(MatrixError::Parse {
                line: i + 1,
                msg: "indices are 1-based".into(),
            });
        }
        let v = match kind {
            ValueKind::Pattern => 1.0,
            _ => fields
                .next()
                .ok_or_else(|| MatrixError::Parse {
                    line: i + 1,
                    msg: "missing value".into(),
                })?
                .parse::<f64>()
                .map_err(|e| MatrixError::Parse {
                    line: i + 1,
                    msg: format!("bad value: {e}"),
                })?,
        };
        if !v.is_finite() {
            return Err(MatrixError::Parse {
                line: i + 1,
                msg: format!("non-finite value `{v}`"),
            });
        }
        let (r, c) = (r - 1, c - 1);
        triplets.push((r, c, v));
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if r != c {
                    triplets.push((c, r, v));
                }
            }
            Symmetry::SkewSymmetric => {
                if r != c {
                    triplets.push((c, r, -v));
                }
            }
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(MatrixError::Parse {
            line: 0,
            msg: format!("declared {declared_nnz} entries, found {seen}"),
        });
    }
    CooMatrix::from_triplets(nrows, ncols, &triplets)
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<CooMatrix> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write a matrix as `matrix coordinate real general`.
pub fn write_matrix_market<W: Write>(m: &CooMatrix, mut w: W) -> Result<()> {
    use crate::SpMv;
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by spselect")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Write a matrix to a `.mtx` file on disk.
pub fn write_matrix_market_file<P: AsRef<Path>>(m: &CooMatrix, path: P) -> Result<()> {
    write_matrix_market(m, std::io::BufWriter::new(std::fs::File::create(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpMv;

    #[test]
    fn parse_general_real() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% comment\n3 3 2\n1 1 1.5\n3 2 -2.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense()[2][1], -2.0);
    }

    #[test]
    fn parse_symmetric_expands() {
        let text =
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 1.0\n2 1 5.0\n3 3 2.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 4);
        let d = m.to_dense();
        assert_eq!(d[0][1], 5.0);
        assert_eq!(d[1][0], 5.0);
    }

    #[test]
    fn parse_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        let d = m.to_dense();
        assert_eq!(d[1][0], 3.0);
        assert_eq!(d[0][1], -3.0);
    }

    #[test]
    fn parse_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.values(), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("%%NotMM\n1 1 0\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1\n".as_bytes())
                .is_err()
        );
    }

    #[test]
    fn rejects_count_mismatch() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let m =
            CooMatrix::from_triplets(3, 4, &[(0, 1, 1.25), (1, 3, -0.5), (2, 0, 1e-10)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_values() {
        let text = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 1 7\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.values(), &[7.0]);
    }

    #[test]
    fn rejects_truncated_file() {
        // Header but no size line.
        let err = read_matrix_market("%%MatrixMarket matrix coordinate real general\n".as_bytes())
            .unwrap_err();
        assert!(matches!(err, MatrixError::Parse { .. }), "{err}");
        // Size line promises more entries than the body delivers.
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 1.0\n2 2 2.0\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 3 entries"), "{err}");
    }

    #[test]
    fn rejects_bad_symmetry_token() {
        let text = "%%MatrixMarket matrix coordinate real hermitian\n2 2 1\n1 1 1.0\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unsupported symmetry"), "{err}");
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["inf", "-inf", "nan", "1e999"] {
            let text = format!("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 {bad}\n");
            let err = read_matrix_market(text.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains("non-finite value"),
                "`{bad}`: {err}"
            );
        }
    }

    #[test]
    fn rejects_dimension_overflow() {
        let text = format!(
            "%%MatrixMarket matrix coordinate real general\n{n} {n} 1\n1 1 1.0\n",
            n = usize::MAX
        );
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("dimension overflow"), "{err}");
    }

    #[test]
    fn rejects_nnz_beyond_capacity() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 9\n1 1 1.0\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceed"), "{err}");
    }

    #[test]
    fn rejects_duplicate_after_symmetric_expansion() {
        // (2,1) stored explicitly and also produced by expanding (1,2).
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n2 1 1.0\n2 1 2.0\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, MatrixError::DuplicateEntry { .. }),
            "expected duplicate-entry error, got {err}"
        );
    }
}
