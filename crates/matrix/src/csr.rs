//! Compressed sparse row (CSR): the default, most general format.
//!
//! CSR compresses the COO row array into `nrows + 1` row start offsets.
//! Its kernel iterates rows, which maps to the CUSP *scalar* CSR GPU kernel
//! (one thread per row) whose load imbalance the paper's `csr_max` feature
//! quantifies.

use crate::{CooMatrix, MatrixError, Result, SpMv};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sparse matrix in CSR format.
///
/// Invariants: `row_ptr` is monotone with `row_ptr[0] == 0` and
/// `row_ptr[nrows] == nnz`; column indices within each row are strictly
/// increasing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Build directly from raw CSR arrays, validating all invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(MatrixError::DimensionMismatch {
                expected: nrows + 1,
                got: row_ptr.len(),
                what: "row_ptr",
            });
        }
        if col_idx.len() != vals.len() {
            return Err(MatrixError::DimensionMismatch {
                expected: col_idx.len(),
                got: vals.len(),
                what: "vals",
            });
        }
        if row_ptr[0] != 0 || row_ptr[nrows] != col_idx.len() {
            return Err(MatrixError::Parse {
                line: 0,
                msg: "row_ptr must start at 0 and end at nnz".into(),
            });
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(MatrixError::Parse {
                    line: 0,
                    msg: format!("row_ptr not monotone at row {r}"),
                });
            }
            let mut prev: Option<u32> = None;
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                if c as usize >= ncols {
                    return Err(MatrixError::IndexOutOfBounds {
                        row: r,
                        col: c as usize,
                        nrows,
                        ncols,
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(MatrixError::DuplicateEntry {
                            row: r,
                            col: c as usize,
                        });
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Row pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (length `nnz`).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value array (length `nnz`).
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Number of nonzeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// `(col_idx, vals)` slices for row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[s..e], &self.vals[s..e])
    }

    /// Iterate `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Number of nonzeros per row as a vector (O(nrows)).
    pub fn row_counts(&self) -> Vec<usize> {
        (0..self.nrows).map(|r| self.row_nnz(r)).collect()
    }
}

impl From<&CooMatrix> for CsrMatrix {
    fn from(coo: &CooMatrix) -> Self {
        let nrows = coo.nrows();
        let mut row_ptr = vec![0usize; nrows + 1];
        for &r in coo.row_indices() {
            row_ptr[r as usize + 1] += 1;
        }
        for r in 0..nrows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            nrows,
            ncols: coo.ncols(),
            row_ptr,
            col_idx: coo.col_indices().to_vec(),
            vals: coo.values().to_vec(),
        }
    }
}

impl From<&CsrMatrix> for CooMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        let mut rows = Vec::with_capacity(csr.nnz());
        for r in 0..csr.nrows {
            rows.extend(std::iter::repeat_n(r as u32, csr.row_nnz(r)));
        }
        CooMatrix::from_sorted_parts(
            csr.nrows,
            csr.ncols,
            rows,
            csr.col_idx.clone(),
            csr.vals.clone(),
        )
    }
}

/// Dot product of one CSR row with the dense vector, 4-wide unrolled:
/// four independent accumulators break the loop-carried add dependency
/// (gathers from `x` stay serial, but the adds pipeline). Rows shorter
/// than 4 never enter the unrolled loop and sum left to right from 0.0,
/// exactly like the historic scalar kernel; longer rows re-associate the
/// sum (checked against COO to relative tolerance in the property suite).
#[inline]
fn row_dot(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    let n4 = cols.len() & !3;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i < n4 {
        a0 += vals[i] * x[cols[i] as usize];
        a1 += vals[i + 1] * x[cols[i + 1] as usize];
        a2 += vals[i + 2] * x[cols[i + 2] as usize];
        a3 += vals[i + 3] * x[cols[i + 3] as usize];
        i += 4;
    }
    let mut sum = (a0 + a1) + (a2 + a3);
    while i < cols.len() {
        sum += vals[i] * x[cols[i] as usize];
        i += 1;
    }
    sum
}

impl SpMv for CsrMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.vals.len()
    }

    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        for (r, out) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            *out = row_dot(cols, vals, x);
        }
    }

    /// Row-parallel kernel (the analogue of CUSP's thread-per-row kernel).
    fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        self.check_dims(x, y).unwrap();
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            let (cols, vals) = self.row(r);
            *yr = row_dot(cols, vals, x);
        });
    }

    fn memory_bytes(&self) -> usize {
        (self.nrows + 1) * std::mem::size_of::<usize>() + self.vals.len() * (4 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
                (2, 3, 6.0),
                (3, 3, 7.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn coo_roundtrip() {
        let coo = sample_coo();
        let csr = CsrMatrix::from(&coo);
        assert_eq!(CooMatrix::from(&csr), coo);
    }

    #[test]
    fn row_ptr_structure() {
        let csr = CsrMatrix::from(&sample_coo());
        assert_eq!(csr.row_ptr(), &[0, 2, 3, 6, 7]);
        assert_eq!(csr.row_nnz(2), 3);
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = sample_coo();
        let csr = CsrMatrix::from(&coo);
        let x = [1.0, -1.0, 0.5, 2.0];
        let (mut y1, mut y2, mut y3) = ([0.0; 4], [0.0; 4], [0.0; 4]);
        coo.spmv(&x, &mut y1);
        csr.spmv(&x, &mut y2);
        csr.spmv_par(&x, &mut y3);
        assert_eq!(y1, y2);
        assert_eq!(y2, y3);
    }

    #[test]
    fn from_parts_validates() {
        // row_ptr wrong length
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // non-monotone
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // duplicate col within a row
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // valid
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn empty_rows_handled() {
        let coo = CooMatrix::from_triplets(5, 5, &[(4, 4, 1.0)]).unwrap();
        let csr = CsrMatrix::from(&coo);
        let x = [1.0; 5];
        let mut y = [0.0; 5];
        csr.spmv(&x, &mut y);
        assert_eq!(y, [0.0, 0.0, 0.0, 0.0, 1.0]);
        assert_eq!(csr.row_counts(), vec![0, 0, 0, 0, 1]);
    }
}
