//! Equivalence of every SpMV kernel against the COO reference.
//!
//! The CSR inner loop is 4-wide unrolled, which re-associates the row sum
//! for rows with 4+ nonzeros — so dense-ish matrices are gated to a
//! relative tolerance, while matrices whose rows all hold fewer than 4
//! nonzeros must match the COO walk bit for bit (both sum left to right
//! from 0.0). The serial and row-parallel CSR kernels share the same
//! per-row dot, so they must always agree exactly.

use proptest::prelude::*;
use spsel_matrix::{gen, BsrMatrix, CooMatrix, CsrMatrix, DiaMatrix, SellMatrix, SpMv};

/// Deterministic dense vector with non-trivial, mixed-sign entries.
fn dense_x(n: usize) -> Vec<f64> {
    (0..n)
        .map(|j| 0.5 + (j % 13) as f64 * 0.25 - (j % 7) as f64 * 0.4)
        .collect()
}

fn spmv_of(m: &impl SpMv, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; m.nrows()];
    m.spmv(x, &mut y);
    y
}

fn assert_close(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (va, vb) in a.iter().zip(b) {
        assert!(
            (va - vb).abs() <= 1e-12 * (1.0 + va.abs().max(vb.abs())),
            "{va} vs {vb}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_matches_coo_across_matrix_families(seed in 0u64..5_000) {
        let s = seed as usize;
        let families = [
            gen::random_uniform(30 + s % 50, 40 + s % 30, 6, seed),
            gen::banded(40 + s % 60, 3 + s % 5, 0.7, seed),
            gen::power_law(50 + s % 60, 70, 2, 2.2, 40, seed),
            gen::row_skewed(40 + s % 40, 90, 2, 30, 0.15, seed),
        ];
        for coo in &families {
            let csr = CsrMatrix::from(coo);
            let x = dense_x(coo.ncols());
            assert_close(&spmv_of(&csr, &x), &spmv_of(coo, &x));
        }
    }

    #[test]
    fn short_rows_are_bit_identical_to_coo(seed in 0u64..5_000) {
        // Every row holds < 4 nonzeros, so the unrolled kernel never
        // re-associates: CSR row-major order equals COO sorted order and
        // both sums accumulate left to right from 0.0.
        let coo = gen::banded(30 + seed as usize % 60, 1, 1.0, seed);
        let csr = CsrMatrix::from(&coo);
        prop_assert!((0..csr.nrows()).all(|r| csr.row_nnz(r) < 4));
        let x = dense_x(coo.ncols());
        let (ya, yb) = (spmv_of(&csr, &x), spmv_of(&coo, &x));
        for (a, b) in ya.iter().zip(&yb) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn serial_and_parallel_csr_agree_exactly(seed in 0u64..5_000) {
        let coo = gen::power_law(60 + seed as usize % 60, 80, 2, 2.1, 50, seed);
        let csr = CsrMatrix::from(&coo);
        let x = dense_x(coo.ncols());
        let serial = spmv_of(&csr, &x);
        let mut par = vec![0.0; csr.nrows()];
        csr.spmv_par(&x, &mut par);
        for (a, b) in serial.iter().zip(&par) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_and_degenerate_shapes_are_zero(nr in 0usize..6, nc in 0usize..6) {
        let coo = CooMatrix::zeros(nr, nc);
        let csr = CsrMatrix::from(&coo);
        let x = dense_x(nc);
        let y = spmv_of(&csr, &x);
        prop_assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sell_matches_coo_across_matrix_families(seed in 0u64..5_000) {
        let s = seed as usize;
        let families = [
            gen::random_uniform(30 + s % 50, 40 + s % 30, 6, seed),
            gen::banded(40 + s % 60, 3 + s % 5, 0.7, seed),
            gen::power_law(50 + s % 60, 70, 2, 2.2, 40, seed),
            gen::row_skewed(40 + s % 40, 90, 2, 30, 0.15, seed),
        ];
        // Sweep chunk/scope shapes including C that doesn't divide nrows.
        let (c, sigma) = [(4, 16), (8, 64), (32, 128)][s % 3];
        for coo in &families {
            let sell = SellMatrix::from_csr(&CsrMatrix::from(coo), c, sigma);
            let x = dense_x(coo.ncols());
            assert_close(&spmv_of(&sell, &x), &spmv_of(coo, &x));
            let mut par = vec![0.0; sell.nrows()];
            sell.spmv_par(&x, &mut par);
            assert_close(&spmv_of(&sell, &x), &par);
        }
    }

    #[test]
    fn dia_matches_coo_on_banded_families(seed in 0u64..5_000) {
        // DIA only converts band-limited matrices; generate within its
        // diagonal budget and let the limit scale with the band.
        let s = seed as usize;
        let coo = gen::banded(40 + s % 60, 2 + s % 6, 0.6 + (s % 4) as f64 * 0.1, seed);
        let dia = DiaMatrix::try_from_csr(&CsrMatrix::from(&coo), 64).unwrap();
        let x = dense_x(coo.ncols());
        assert_close(&spmv_of(&dia, &x), &spmv_of(&coo, &x));
        let mut par = vec![0.0; dia.nrows()];
        dia.spmv_par(&x, &mut par);
        assert_close(&spmv_of(&dia, &x), &par);
    }

    #[test]
    fn bsr_matches_coo_across_matrix_families(seed in 0u64..5_000, b in 1usize..5) {
        let s = seed as usize;
        let families = [
            gen::random_uniform(30 + s % 50, 40 + s % 30, 6, seed),
            gen::banded(40 + s % 60, 3 + s % 5, 0.7, seed),
            gen::power_law(50 + s % 60, 70, 2, 2.2, 40, seed),
        ];
        for coo in &families {
            let bsr = BsrMatrix::try_from_csr(&CsrMatrix::from(coo), b).unwrap();
            let x = dense_x(coo.ncols());
            assert_close(&spmv_of(&bsr, &x), &spmv_of(coo, &x));
            let mut par = vec![0.0; bsr.nrows()];
            bsr.spmv_par(&x, &mut par);
            assert_close(&spmv_of(&bsr, &x), &par);
        }
    }

    #[test]
    fn new_formats_empty_and_degenerate_shapes_are_zero(nr in 0usize..6, nc in 0usize..6) {
        let csr = CsrMatrix::from(&CooMatrix::zeros(nr, nc));
        let x = dense_x(nc);
        let sell = SellMatrix::from_csr(&csr, 4, 16);
        prop_assert!(spmv_of(&sell, &x).iter().all(|&v| v == 0.0));
        let dia = DiaMatrix::try_from_csr(&csr, 16).unwrap();
        prop_assert!(spmv_of(&dia, &x).iter().all(|&v| v == 0.0));
        let bsr = BsrMatrix::try_from_csr(&csr, 2).unwrap();
        prop_assert!(spmv_of(&bsr, &x).iter().all(|&v| v == 0.0));
    }
}

/// A 1×n hub row inside a tall matrix: the imbalance case ELL rejects.
/// SELL and BSR must still convert and agree with the COO reference.
#[test]
fn hub_matrix_sell_and_bsr_agree_with_coo() {
    let hub: Vec<_> = (0..60).map(|c| (0usize, c, 1.0 + c as f64 * 0.5)).collect();
    let coo = CooMatrix::from_triplets(200, 64, &hub).unwrap();
    let csr = CsrMatrix::from(&coo);
    let x = dense_x(64);
    let want = spmv_of(&coo, &x);
    for (c, sigma) in [(4, 16), (32, 128)] {
        assert_close(&spmv_of(&SellMatrix::from_csr(&csr, c, sigma), &x), &want);
    }
    for b in [1, 2, 3] {
        assert_close(
            &spmv_of(&BsrMatrix::try_from_csr(&csr, b).unwrap(), &x),
            &want,
        );
    }
}

/// Single-row matrices exercise slice/block boundaries of height one.
#[test]
fn single_row_matrix_across_new_formats() {
    let coo = CooMatrix::from_triplets(1, 7, &[(0, 1, 2.0), (0, 4, -3.0), (0, 6, 0.5)]).unwrap();
    let csr = CsrMatrix::from(&coo);
    let x = dense_x(7);
    let want = spmv_of(&coo, &x);
    assert_close(&spmv_of(&SellMatrix::from_csr(&csr, 8, 64), &x), &want);
    assert_close(
        &spmv_of(&DiaMatrix::try_from_csr(&csr, 16).unwrap(), &x),
        &want,
    );
    assert_close(
        &spmv_of(&BsrMatrix::try_from_csr(&csr, 2).unwrap(), &x),
        &want,
    );
}
