//! Every registered format's SpMM against a naive dense reference.
//!
//! The reference walks each output row's nonzeros in ascending-column
//! order, accumulating left to right from 0.0 and skipping structural
//! zeros — the same contract every sparse SpMM kernel documents. Under
//! that contract the COO kernel is *bit-identical* to the reference;
//! formats that reorder the walk (HYB's spilled tail, SELL's permuted
//! slices, BSR's blocked scatter) or that carry explicit zero fill are
//! held to a 1e-12 relative bound instead, which is documented at each
//! assertion site.

use proptest::prelude::*;
use spsel_matrix::{gen, CooMatrix, CsrMatrix, Format, FormatRegistry, SpMm, SpMv};

/// Deterministic row-major dense operand with mixed-sign entries.
fn dense_x(ncols: usize, k: usize) -> Vec<f64> {
    (0..ncols * k)
        .map(|j| 0.5 + (j % 13) as f64 * 0.25 - (j % 7) as f64 * 0.4)
        .collect()
}

/// Naive dense multiply that skips zeros, walking each row's columns
/// ascending — the accumulation order the sparse kernels promise.
fn dense_reference(coo: &CooMatrix, x: &[f64], k: usize) -> Vec<f64> {
    let dense = coo.to_dense();
    let (nrows, ncols) = (coo.nrows(), coo.ncols());
    let mut y = vec![0.0; nrows * k];
    for r in 0..nrows {
        for c in 0..ncols {
            let v = dense[r][c];
            if v != 0.0 {
                for j in 0..k {
                    y[r * k + j] += v * x[c * k + j];
                }
            }
        }
    }
    y
}

fn spmm_of(m: &(impl SpMm + ?Sized), x: &[f64], k: usize, nrows: usize) -> Vec<f64> {
    let mut y = vec![0.0; nrows * k];
    m.spmm(x, k, &mut y);
    y
}

fn assert_close(label: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{label}: length");
    for (i, (va, vb)) in a.iter().zip(b).enumerate() {
        assert!(
            (va - vb).abs() <= 1e-12 * (1.0 + va.abs().max(vb.abs())),
            "{label} slot {i}: {va} vs {vb}"
        );
    }
}

fn families(seed: u64) -> Vec<CooMatrix> {
    let s = seed as usize;
    vec![
        gen::random_uniform(24 + s % 40, 30 + s % 24, 5, seed),
        gen::banded(32 + s % 48, 3 + s % 4, 0.7, seed),
        gen::power_law(40 + s % 48, 60, 2, 2.2, 30, seed),
        gen::row_skewed(32 + s % 32, 70, 2, 24, 0.15, seed),
    ]
}

/// Run every registry format on `coo` for one `k`, asserting against the
/// dense reference. COO is additionally checked bit for bit.
fn check_all_formats(coo: &CooMatrix, k: usize) {
    let csr = CsrMatrix::from(coo);
    let x = dense_x(coo.ncols(), k);
    let want = dense_reference(coo, &x, k);

    // COO iterates (row-major, ascending columns) exactly like the
    // reference: bit-for-bit equality, not just closeness.
    let got = spmm_of(coo, &x, k, coo.nrows());
    for (i, (a, b)) in got.iter().zip(&want).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "COO slot {i}: {a} vs {b}");
    }

    for spec in FormatRegistry::full().specs() {
        let kernel = match spec.build(&csr) {
            Ok(kernel) => kernel,
            // ELL/DIA legitimately reject imbalanced or scattered
            // matrices; conversion feasibility is covered elsewhere.
            Err(_) => continue,
        };
        let mut y = vec![0.0; coo.nrows() * k];
        kernel.spmm(&x, k, &mut y);
        // 1e-12 relative: HYB's tail, SELL's permutation, and BSR's
        // zero-fill skip reassociate sums (and can flip ±0.0).
        assert_close(spec.name(), &y, &want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_format_matches_dense_reference(seed in 0u64..5_000, ki in 0usize..3) {
        let k = [1, 4, 32][ki];
        for coo in families(seed) {
            check_all_formats(&coo, k);
        }
    }

    #[test]
    fn spmm_k1_agrees_with_spmv(seed in 0u64..5_000) {
        // k = 1 SpMM and SpMV are the same contraction; per format they
        // must agree to the shared tolerance on every family.
        let csr_families = families(seed);
        for coo in &csr_families {
            let csr = CsrMatrix::from(coo);
            let x = dense_x(coo.ncols(), 1);
            for spec in FormatRegistry::full().specs() {
                if let Ok(kernel) = spec.build(&csr) {
                    let mut y_mv = vec![0.0; coo.nrows()];
                    kernel.spmv(&x, &mut y_mv);
                    let mut y_mm = vec![0.0; coo.nrows()];
                    kernel.spmm(&x, 1, &mut y_mm);
                    assert_close(spec.name(), &y_mm, &y_mv);
                }
            }
        }
    }

    #[test]
    fn degenerate_shapes_are_zero(nr in 0usize..5, nc in 0usize..5, ki in 0usize..3) {
        let k = [1, 4, 32][ki];
        let coo = CooMatrix::zeros(nr, nc);
        let csr = CsrMatrix::from(&coo);
        let x = dense_x(nc, k);
        for spec in FormatRegistry::full().specs() {
            let kernel = spec.build(&csr).unwrap();
            let mut y = vec![1.0; nr * k];
            kernel.spmm(&x, k, &mut y);
            prop_assert!(y.iter().all(|&v| v == 0.0), "{} left residue", spec.name());
        }
    }
}

/// Adversarial shapes outside the random families: a hub row (heavy
/// imbalance), a single row, a single dense column, and a matrix whose
/// values cancel catastrophically — the case where accumulation-order
/// differences would surface loudest.
#[test]
fn adversarial_matrices_match_dense_reference() {
    let hub: Vec<_> = (0..48).map(|c| (0usize, c, 1.0 + c as f64 * 0.5)).collect();
    let one_col: Vec<_> = (0..40).map(|r| (r, 3usize, 0.25 + r as f64)).collect();
    let cancel: Vec<_> = (0..32)
        .flat_map(|r| [(r, r, 1e9), (r, (r + 1) % 32, -1e9), (r, (r + 2) % 32, 1.0)])
        .collect();
    let cases = [
        CooMatrix::from_triplets(120, 48, &hub).unwrap(),
        CooMatrix::from_triplets(1, 9, &[(0, 0, 2.0), (0, 5, -1.5), (0, 8, 4.0)]).unwrap(),
        CooMatrix::from_triplets(40, 8, &one_col).unwrap(),
        CooMatrix::from_triplets(32, 32, &cancel).unwrap(),
    ];
    for coo in &cases {
        for k in [1, 4, 32] {
            check_all_formats(coo, k);
        }
    }
}

/// The registry's extended set must cover exactly the formats the
/// disagreement experiments serve, each with a working SpMM.
#[test]
fn extended_registry_formats_all_spmm() {
    let coo = gen::banded(64, 4, 0.8, 11);
    let csr = CsrMatrix::from(&coo);
    let x = dense_x(coo.ncols(), 4);
    let want = dense_reference(&coo, &x, 4);
    let reg = FormatRegistry::extended();
    assert!(reg.contains(Format::Bsr) && reg.contains(Format::Sell));
    for spec in reg.specs() {
        let kernel = spec.build(&csr).unwrap();
        let mut y = vec![0.0; coo.nrows() * 4];
        kernel.spmm(&x, 4, &mut y);
        assert_close(spec.name(), &y, &want);
    }
}
