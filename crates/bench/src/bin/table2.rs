//! Regenerate Table 2: GPU hardware specifications.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::table2;

fn main() {
    let mut h = HarnessOptions::open();
    let t = h.time("experiment", table2::run);
    println!("Table 2: NVIDIA GPUs used in the experiments\n");
    println!("{}", t.render());
    h.finish(&t);
}
