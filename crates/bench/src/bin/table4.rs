//! Regenerate Table 4: semi-supervised local performance (9 algorithms x
//! 3 GPUs).

use spsel_bench::HarnessOptions;
use spsel_core::experiments::table4;

fn main() {
    let mut h = HarnessOptions::open();
    let ctx = h.context();
    let cfg = if h.opts.quick {
        table4::Table4Config {
            nc_candidates: vec![25, 50],
            folds: 3,
            seed: 17,
        }
    } else {
        table4::Table4Config::default()
    };
    eprintln!(
        "running 9 algorithms x 3 GPUs ({} NC candidates)...",
        cfg.nc_candidates.len()
    );
    let t = h.cached_experiment("table4", &ctx, &cfg, || table4::run(&ctx, &cfg));
    println!("Table 4: semi-supervised performance per clustering algorithm\n");
    println!("{}", t.render());
    h.finish(&t);
}
