//! `perfcheck`: measure the experiment pipeline's parallel speedup and
//! cache effectiveness, and emit the numbers as a JSON run report.
//!
//! Three timed configurations of `ExperimentContext` construction:
//!
//! 1. **cold-serial** — parallelism forced off, cache disabled (the
//!    pre-parallel baseline);
//! 2. **cold-parallel** — parallel build + benchmark, writing into a
//!    fresh cache directory;
//! 3. **warm-cached** — the same run again, now served from the cache.
//!
//! The report records `parallel_speedup` (1 vs 2) and `cache_speedup`
//! (2 vs 3), and the run asserts that parallel and serial construction
//! produce bit-identical corpora and benchmark results.

use spsel_bench::HarnessOptions;
use spsel_core::cache::Cache;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use std::time::Instant;

fn main() {
    let mut h = HarnessOptions::open();
    let cfg = h.opts.corpus.clone();
    let dir = h
        .opts
        .cache_dir
        .clone()
        .unwrap_or_else(|| "results/cache".to_string());
    let dir = format!("{dir}/perfcheck-{}", std::process::id());
    eprintln!("perfcheck: {} base matrices, cache dir {dir}", cfg.n_base);

    // 1. Cold, serial, uncached.
    rayon::set_serial(true);
    let start = Instant::now();
    let serial_ctx = ExperimentContext::build(
        cfg.clone(),
        &Cache::disabled(),
        &mut RunReport::new("perfcheck-serial"),
    );
    let serial_s = start.elapsed().as_secs_f64();
    rayon::set_serial(false);
    eprintln!("cold-serial    {serial_s:>8.2}s");

    // 2. Cold, parallel, populating a fresh cache.
    let cache = Cache::new(&dir);
    let start = Instant::now();
    let parallel_ctx =
        ExperimentContext::build(cfg.clone(), &cache, &mut RunReport::new("perfcheck-cold"));
    let cold_s = start.elapsed().as_secs_f64();
    eprintln!("cold-parallel  {cold_s:>8.2}s");

    // Parallel execution must be bit-identical to serial.
    assert_eq!(
        serial_ctx.corpus.records, parallel_ctx.corpus.records,
        "parallel corpus differs from serial"
    );
    assert_eq!(
        serial_ctx.benches, parallel_ctx.benches,
        "parallel benchmarks differ from serial"
    );

    // 3. Warm, served from the cache.
    let warm_cache = Cache::new(&dir);
    let start = Instant::now();
    let warm_ctx = ExperimentContext::build(
        cfg.clone(),
        &warm_cache,
        &mut RunReport::new("perfcheck-warm"),
    );
    let warm_s = start.elapsed().as_secs_f64();
    eprintln!("warm-cached    {warm_s:>8.2}s");
    assert_eq!(warm_ctx.benches, parallel_ctx.benches, "cached run differs");
    let wr = warm_cache.report();
    assert_eq!(wr.misses, 0, "warm run should not miss ({wr:?})");

    h.report.record("cold_serial", serial_s);
    h.report.record("cold_parallel", cold_s);
    h.report.record("warm_cached", warm_s);
    let parallel_speedup = serial_s / cold_s;
    let cache_speedup = cold_s / warm_s;
    println!("parallel speedup (cold serial / cold parallel): {parallel_speedup:.2}x");
    println!("cache speedup    (cold parallel / warm cached): {cache_speedup:.2}x");

    let _ = std::fs::remove_dir_all(&dir);
    h.finish(&PerfSummary {
        parallel_speedup,
        cache_speedup,
        cold_serial_s: serial_s,
        cold_parallel_s: cold_s,
        warm_cached_s: warm_s,
        threads: rayon::current_num_threads(),
    });
}

#[derive(serde::Serialize)]
struct PerfSummary {
    parallel_speedup: f64,
    cache_speedup: f64,
    cold_serial_s: f64,
    cold_parallel_s: f64,
    warm_cached_s: f64,
    threads: usize,
}
