//! `perfcheck`: measure the experiment pipeline's parallel speedup and
//! cache effectiveness, and emit the numbers as a JSON run report.
//!
//! Three timed configurations of `ExperimentContext` construction:
//!
//! 1. **cold-serial** — parallelism forced off, cache disabled (the
//!    pre-parallel baseline);
//! 2. **cold-parallel** — parallel build + benchmark, writing into a
//!    fresh cache directory;
//! 3. **warm-cached** — the same run again, now served from the cache.
//!
//! The report records `parallel_speedup` (1 vs 2) and `cache_speedup`
//! (2 vs 3), and the run asserts that parallel and serial construction
//! produce bit-identical corpora and benchmark results.
//!
//! It then measures the training phase on the real corpus: per-model fit
//! time, the presorted-vs-naive split-search speedup for the tree family,
//! and a cold/warm demonstration of the per-table experiment cache (a
//! warm Table 4 rerun must be served entirely from disk).
//!
//! Finally it profiles the serving decision path: the single-pass
//! `FeatureExtractor` against the legacy multi-pass `MatrixStats` walk,
//! the per-phase (embed / assign / label) nanosecond budget of a
//! steady-state `learn: false` select, and an Elafrou-style per-feature
//! cost table attributing each Table 1 feature to the extractor pass
//! that pays for it.

use spsel_bench::HarnessOptions;
use spsel_core::cache::Cache;
use spsel_core::experiments::{table4, ExperimentContext};
use spsel_core::semi::{ClusterMethod, Labeler, SemiConfig};
use spsel_core::telemetry::RunReport;
use spsel_core::{SemiSupervisedSelector, ShardedOnlineSelector};
use spsel_features::stats::WARP_ROWS;
use spsel_features::{FeatureExtractor, FeatureId, FeatureVector, MatrixStats};
use spsel_gpusim::Gpu;
use spsel_matrix::{gen, CsrMatrix, Format, FormatRegistry, SpMv, Workload};
use spsel_ml::forest::{RandomForest, RandomForestParams};
use spsel_ml::gboost::{GradientBoosting, GradientBoostingParams};
use spsel_ml::knn::KnnClassifier;
use spsel_ml::tree::{DecisionTree, DecisionTreeParams};
use spsel_ml::{Classifier, Dataset};
use std::hint::black_box;
use std::time::Instant;

/// Milliseconds of the fastest of three runs of `f` (best-of-n damps
/// scheduler noise without a full Criterion session).
fn time_ms(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let mut h = HarnessOptions::open();
    let cfg = h.opts.corpus.clone();
    let dir = h
        .opts
        .cache_dir
        .clone()
        .unwrap_or_else(|| "results/cache".to_string());
    let dir = format!("{dir}/perfcheck-{}", std::process::id());
    eprintln!("perfcheck: {} base matrices, cache dir {dir}", cfg.n_base);

    // 1. Cold, serial, uncached.
    rayon::set_serial(true);
    let start = Instant::now();
    let serial_ctx = ExperimentContext::build(
        cfg.clone(),
        &Cache::disabled(),
        &mut RunReport::new("perfcheck-serial"),
    );
    let serial_s = start.elapsed().as_secs_f64();
    rayon::set_serial(false);
    eprintln!("cold-serial    {serial_s:>8.2}s");

    // 2. Cold, parallel, populating a fresh cache.
    let cache = Cache::new(&dir);
    let start = Instant::now();
    let parallel_ctx =
        ExperimentContext::build(cfg.clone(), &cache, &mut RunReport::new("perfcheck-cold"));
    let cold_s = start.elapsed().as_secs_f64();
    eprintln!("cold-parallel  {cold_s:>8.2}s");

    // Parallel execution must be bit-identical to serial.
    assert_eq!(
        serial_ctx.corpus.records, parallel_ctx.corpus.records,
        "parallel corpus differs from serial"
    );
    assert_eq!(
        serial_ctx.benches, parallel_ctx.benches,
        "parallel benchmarks differ from serial"
    );

    // 3. Warm, served from the cache.
    let warm_cache = Cache::new(&dir);
    let start = Instant::now();
    let warm_ctx = ExperimentContext::build(
        cfg.clone(),
        &warm_cache,
        &mut RunReport::new("perfcheck-warm"),
    );
    let warm_s = start.elapsed().as_secs_f64();
    eprintln!("warm-cached    {warm_s:>8.2}s");
    assert_eq!(warm_ctx.benches, parallel_ctx.benches, "cached run differs");
    let wr = warm_cache.report();
    assert_eq!(wr.misses, 0, "warm run should not miss ({wr:?})");

    h.report.record("cold_serial", serial_s);
    h.report.record("cold_parallel", cold_s);
    h.report.record("warm_cached", warm_s);
    let parallel_speedup = serial_s / cold_s;
    let cache_speedup = cold_s / warm_s;
    println!("parallel speedup (cold serial / cold parallel): {parallel_speedup:.2}x");
    println!("cache speedup    (cold parallel / warm cached): {cache_speedup:.2}x");

    // 4. Training phase on the real corpus: the Turing dataset, labels
    //    from the modeled benchmarks — exactly what the supervised
    //    experiments train on.
    let ds = parallel_ctx.dataset(Gpu::Turing);
    let features = parallel_ctx.features(&ds);
    let results = parallel_ctx
        .results(Gpu::Turing, &ds)
        .expect("feasible Turing dataset");
    let x: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();
    let y: Vec<usize> = results.iter().map(|r| r.best.index()).collect();
    let data = Dataset::new(x, y, Format::COUNT);
    eprintln!(
        "training set: {} samples x {} features",
        data.len(),
        data.dim()
    );

    let dt_params = DecisionTreeParams {
        max_depth: Some(20),
        seed: 17,
        ..Default::default()
    };
    let dt_naive_ms = time_ms(|| DecisionTree::new(dt_params.clone()).fit_naive(&data));
    let dt_presorted_ms = time_ms(|| DecisionTree::new(dt_params.clone()).fit(&data));
    let gb_params = GradientBoostingParams {
        n_rounds: if h.opts.quick { 10 } else { 100 },
        ..Default::default()
    };
    let gboost_naive_ms = time_ms(|| GradientBoosting::new(gb_params.clone()).fit_naive(&data));
    let gboost_presorted_ms = time_ms(|| GradientBoosting::new(gb_params.clone()).fit(&data));
    let rf_fit_ms = time_ms(|| {
        RandomForest::new(RandomForestParams {
            n_estimators: if h.opts.quick { 20 } else { 100 },
            max_depth: Some(6),
            seed: 17,
            ..Default::default()
        })
        .fit(&data)
    });
    let knn_fit_ms = time_ms(|| KnnClassifier::new(5).fit(&data));
    let training = TrainingSummary {
        samples: data.len(),
        dt_naive_ms,
        dt_presorted_ms,
        dt_split_speedup: dt_naive_ms / dt_presorted_ms,
        gboost_naive_ms,
        gboost_presorted_ms,
        gboost_split_speedup: gboost_naive_ms / gboost_presorted_ms,
        tree_family_speedup: (dt_naive_ms + gboost_naive_ms)
            / (dt_presorted_ms + gboost_presorted_ms),
        rf_fit_ms,
        knn_fit_ms,
    };
    h.report.record("train_dt_naive", dt_naive_ms / 1e3);
    h.report.record("train_dt_presorted", dt_presorted_ms / 1e3);
    h.report.record("train_gboost_naive", gboost_naive_ms / 1e3);
    h.report
        .record("train_gboost_presorted", gboost_presorted_ms / 1e3);
    h.report.record("train_rf", rf_fit_ms / 1e3);
    h.report.record("train_knn", knn_fit_ms / 1e3);
    println!(
        "split-search speedup (naive / presorted): dt {:.2}x, xgboost {:.2}x, \
         tree family {:.2}x",
        training.dt_split_speedup, training.gboost_split_speedup, training.tree_family_speedup
    );
    println!(
        "fit time: dt {dt_presorted_ms:.0}ms, rf {rf_fit_ms:.0}ms, \
         xgboost {gboost_presorted_ms:.0}ms, knn {knn_fit_ms:.0}ms"
    );

    // 5. Experiment cache, cold vs warm: a Table 4 run stored once must
    //    be served from disk with zero training on the rerun.
    let exp_dir = format!("{dir}-exp");
    let exp_cache = Cache::new(&exp_dir);
    let t4cfg = table4::Table4Config {
        nc_candidates: vec![25, 50],
        folds: 3,
        seed: 17,
    };
    let digest = parallel_ctx.digest();
    let start = Instant::now();
    assert!(
        exp_cache
            .load_experiment::<table4::Table4, _>("table4", digest, &t4cfg)
            .is_none(),
        "fresh experiment cache must miss"
    );
    let cold_t4 = table4::run(&parallel_ctx, &t4cfg);
    exp_cache.store_experiment("table4", digest, &t4cfg, &cold_t4);
    let exp_cold_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm_t4: table4::Table4 = exp_cache
        .load_experiment("table4", digest, &t4cfg)
        .expect("warm experiment rerun must hit");
    let exp_warm_s = start.elapsed().as_secs_f64();
    assert_eq!(
        serde_json::to_string(&warm_t4).unwrap(),
        serde_json::to_string(&cold_t4).unwrap(),
        "cached table differs from computed"
    );
    let exp_report = exp_cache.report();
    assert_eq!(
        (exp_report.experiment_hits, exp_report.experiment_misses),
        (1, 1),
        "expected exactly one miss (cold) and one hit (warm)"
    );
    h.report.record("experiment_cold", exp_cold_s);
    h.report.record("experiment_warm", exp_warm_s);
    let experiment_cache = ExperimentCacheSummary {
        cold_s: exp_cold_s,
        warm_s: exp_warm_s,
        speedup: exp_cold_s / exp_warm_s,
        hits: exp_report.experiment_hits,
        misses: exp_report.experiment_misses,
        stores: exp_report.experiment_stores,
    };
    println!(
        "experiment cache (table4): cold {exp_cold_s:.2}s, warm {exp_warm_s:.4}s \
         ({:.0}x), {} hit / {} miss",
        experiment_cache.speedup, exp_report.experiment_hits, exp_report.experiment_misses
    );

    // 6. Decision path: the steady-state `learn: false` select budget,
    //    stage by stage. The probe sweep mixes the corpus families at
    //    serving-typical sizes; every number is the best of three full
    //    sweeps (same scheduler-noise damping as `time_ms`).
    let probes: Vec<CsrMatrix> = (0..12u64)
        .flat_map(|s| {
            [
                CsrMatrix::from(&gen::stencil2d(24 + s as usize % 8, s)),
                CsrMatrix::from(&gen::banded(600 + s as usize * 13, 5, 0.8, s)),
                CsrMatrix::from(&gen::power_law(700 + s as usize * 11, 700, 2, 2.2, 300, s)),
                CsrMatrix::from(&gen::row_skewed(500 + s as usize * 7, 900, 2, 80, 0.1, s)),
            ]
        })
        .collect();
    let n_probes = probes.len() as f64;
    let probe_nnz: usize = probes.iter().map(|m| m.nnz()).sum();

    // Single-pass extractor vs the retained multi-pass path (the two are
    // bit-identical; the property suite proves it, this measures it).
    let legacy_ms = time_ms(|| {
        for csr in &probes {
            black_box(MatrixStats::from_csr(csr));
        }
    });
    let mut extractor = FeatureExtractor::new();
    for csr in &probes {
        extractor.stats(csr); // size the scratch before timing
    }
    let single_ms = time_ms(|| {
        for csr in &probes {
            black_box(extractor.stats(csr));
        }
    });
    let extract_speedup = legacy_ms / single_ms;
    let extract_ns = single_ms * 1e6 / n_probes;

    // Per-pass kernels mirroring the extractor's three walks, timed over
    // the same sweep with pre-sized epoch-stamped scratch. These are
    // attribution weights for the feature table, not a second source of
    // truth: their sum tracks the single-pass total.
    let mut hist = Vec::new();
    let mut hist_epoch: Vec<u32> = Vec::new();
    let mut epoch = 0u32;
    let walk1_ms = time_ms(|| {
        for csr in &probes {
            epoch += 1;
            let row_ptr = csr.row_ptr();
            let (mut nnz, mut lo, mut hi) = (0usize, usize::MAX, 0usize);
            let (mut csr_max, mut warp) = (0usize, 0usize);
            for r in 0..csr.nrows() {
                let c = row_ptr[r + 1] - row_ptr[r];
                nnz += c;
                lo = lo.min(c);
                hi = hi.max(c);
                warp += c;
                if (r + 1) % WARP_ROWS == 0 {
                    csr_max = csr_max.max(warp);
                    warp = 0;
                }
                if hist.len() <= c {
                    hist.resize(c + 1, 0usize);
                    hist_epoch.resize(c + 1, 0);
                }
                if hist_epoch[c] == epoch {
                    hist[c] += 1;
                } else {
                    hist[c] = 1;
                    hist_epoch[c] = epoch;
                }
            }
            black_box((nnz, lo, hi, csr_max.max(warp)));
        }
    });
    struct ProbePrep {
        counts: Vec<usize>,
        mean: f64,
        width: usize,
    }
    let preps: Vec<ProbePrep> = probes
        .iter()
        .map(|m| {
            let s = MatrixStats::from_csr(m);
            ProbePrep {
                counts: m.row_counts(),
                mean: s.nnz_mean,
                width: s.hyb_ell_width,
            }
        })
        .collect();
    let walk2_ms = time_ms(|| {
        for p in &preps {
            let (mut var, mut low, mut low_n) = (0.0f64, 0.0f64, 0usize);
            let (mut high, mut high_n, mut ell_nnz) = (0.0f64, 0usize, 0usize);
            for &c in &p.counts {
                let d = c as f64 - p.mean;
                var += d * d;
                if d < 0.0 {
                    low += d * d;
                    low_n += 1;
                } else if d > 0.0 {
                    high += d * d;
                    high_n += 1;
                }
                ell_nnz += c.min(p.width);
            }
            black_box((var, low, low_n, high, high_n, ell_nnz));
        }
    });
    let mut diag_epoch: Vec<u32> = Vec::new();
    let mut depoch = 0u32;
    let walk3_ms = time_ms(|| {
        for csr in &probes {
            depoch += 1;
            let (nrows, ncols) = (csr.nrows(), csr.ncols());
            if nrows == 0 || ncols == 0 {
                continue;
            }
            let offsets = nrows + ncols - 1;
            if diag_epoch.len() < offsets {
                diag_epoch.resize(offsets, 0);
            }
            let row_ptr = csr.row_ptr();
            let col_idx = csr.col_idx();
            let mut diagonals = 0usize;
            for r in 0..nrows {
                for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                    let idx = c as usize + nrows - 1 - r;
                    if diag_epoch[idx] != depoch {
                        diag_epoch[idx] = depoch;
                        diagonals += 1;
                    }
                }
            }
            black_box(diagonals);
        }
    });
    let pass_cost = |pass: &str| -> f64 {
        let ms = match pass {
            "row-ptr walk" => walk1_ms,
            "counts walk" => walk2_ms,
            "col-idx walk" => walk3_ms,
            _ => return 0.0, // header fields and O(1) derived ratios
        };
        ms * 1e6 / n_probes
    };
    let feature_costs: Vec<FeatureCost> = FeatureId::ALL
        .iter()
        .map(|&id| {
            let pass = pass_of(id);
            let shared = pass_cost(pass);
            let siblings = FeatureId::ALL
                .iter()
                .filter(|&&o| pass_of(o) == pass)
                .count();
            FeatureCost {
                feature: id.name().to_string(),
                pass: pass.to_string(),
                pass_ns: shared,
                share_ns: shared / siblings as f64,
            }
        })
        .collect();

    // Steady-state decide on a warm-started online selector trained from
    // the real corpus: per-phase nanoseconds straight from the same
    // counters the serving engine exports in its Stats reply.
    let labels: Vec<Format> = results.iter().map(|r| r.best).collect();
    let nc = 25.min((labels.len() / 2).max(2));
    let semi = SemiSupervisedSelector::fit(
        &features,
        &labels,
        SemiConfig::new(ClusterMethod::KMeans { nc }, Labeler::Vote, 17),
    );
    let online = ShardedOnlineSelector::from_batch(&semi, 0.5, 64, 4);
    let probe_fvs: Vec<FeatureVector> = probes
        .iter()
        .map(|m| FeatureVector::from_stats(&extractor.stats(m)))
        .collect();
    for fv in &probe_fvs {
        online.decide(fv, false); // size the thread-local embed scratch
    }
    let rounds = if h.opts.quick { 50 } else { 200 };
    let (mut embed_sum, mut assign_sum, mut label_sum, mut n_dec) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..rounds {
        for fv in &probe_fvs {
            let (view, ph) = online.decide_phased(fv, false);
            black_box(view.decision.cluster);
            embed_sum += ph.embed_ns;
            assign_sum += ph.assign_ns;
            label_sum += ph.label_ns;
            n_dec += 1;
        }
    }
    let embed_ns = embed_sum as f64 / n_dec as f64;
    let assign_ns = assign_sum as f64 / n_dec as f64;
    let label_ns = label_sum as f64 / n_dec as f64;
    let select_ns = extract_ns + embed_ns + assign_ns + label_ns;
    h.report.record("decision_extract", extract_ns / 1e9);
    h.report.record("decision_embed", embed_ns / 1e9);
    h.report.record("decision_assign", assign_ns / 1e9);
    h.report.record("decision_label", label_ns / 1e9);
    println!(
        "decision path (learn:false, {} clusters): extract {extract_ns:.0}ns + \
         embed {embed_ns:.0}ns + assign {assign_ns:.0}ns + label {label_ns:.0}ns \
         = {select_ns:.0}ns/select",
        online.n_clusters(),
    );
    println!(
        "single-pass extractor vs MatrixStats::from_csr: {extract_speedup:.2}x \
         over {} probe matrices ({probe_nnz} nnz, avg {:.0}ns/matrix)",
        probes.len(),
        extract_ns,
    );
    println!("feature budget (avg ns per probe matrix, pass cost shared by its features):");
    for fc in &feature_costs {
        println!(
            "  {:<13} {:<12} pass {:>8.0} ns  share {:>7.0} ns",
            fc.feature, fc.pass, fc.pass_ns, fc.share_ns
        );
    }
    let decision_path = DecisionPathSummary {
        probe_matrices: probes.len(),
        probe_nnz,
        legacy_extract_ns: legacy_ms * 1e6 / n_probes,
        single_pass_extract_ns: extract_ns,
        extract_speedup,
        embed_ns,
        assign_ns,
        label_ns,
        select_ns,
        decisions_timed: n_dec,
        row_ptr_walk_ns: pass_cost("row-ptr walk"),
        counts_walk_ns: pass_cost("counts walk"),
        col_idx_walk_ns: pass_cost("col-idx walk"),
        feature_costs,
    };

    // 7. Kernel section: per-format SpMV vs SpMM microsecond costs over
    //    the full registry, built and dispatched through the registry's
    //    own `FormatSpec::build` path — the CPU-side ground truth for the
    //    workload abstraction. Infeasible conversions (ELL/DIA blow-up on
    //    the irregular probe) are reported as absent, not errors.
    let registry = FormatRegistry::full();
    let kernel_probes = [
        ("stencil2d-64", CsrMatrix::from(&gen::stencil2d(64, 3))),
        (
            "power-law-2k",
            CsrMatrix::from(&gen::power_law(2000, 2000, 2, 2.2, 400, 3)),
        ),
    ];
    let kernel_reps = if h.opts.quick { 5 } else { 20 };
    let spmm_k = Workload::DEFAULT_SPMM_K;
    let mut kernels: Vec<KernelCost> = Vec::new();
    println!(
        "kernel section ({} formats x {} probes, best of 3 x {kernel_reps} reps):",
        registry.formats().len(),
        kernel_probes.len(),
    );
    for (probe, csr) in &kernel_probes {
        let x1 = vec![1.0; csr.ncols()];
        let mut y1 = vec![0.0; csr.nrows()];
        let xk = vec![1.0; csr.ncols() * spmm_k];
        let mut yk = vec![0.0; csr.nrows() * spmm_k];
        for spec in registry.specs() {
            let Ok(kernel) = spec.build(csr) else {
                println!("  {probe:<13} {:<5} infeasible", spec.name());
                continue;
            };
            let spmv_us = time_ms(|| {
                for _ in 0..kernel_reps {
                    kernel.spmv(&x1, &mut y1);
                    black_box(&y1);
                }
            }) * 1e3
                / kernel_reps as f64;
            let spmm_us = time_ms(|| {
                for _ in 0..kernel_reps {
                    kernel.spmm(&xk, spmm_k, &mut yk);
                    black_box(&yk);
                }
            }) * 1e3
                / kernel_reps as f64;
            println!(
                "  {probe:<13} {:<5} spmv {spmv_us:>9.1}us  spmm{spmm_k} {spmm_us:>9.1}us \
                 ({:.2}x per column), {} KiB",
                spec.name(),
                spmm_us / (spmv_us * spmm_k as f64),
                kernel.memory_bytes() / 1024,
            );
            kernels.push(KernelCost {
                probe: probe.to_string(),
                format: spec.name().to_string(),
                nnz: csr.nnz(),
                spmv_us,
                spmm_k,
                spmm_us,
                spmm_per_column_ratio: spmm_us / (spmv_us * spmm_k as f64),
                memory_bytes: kernel.memory_bytes(),
            });
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&exp_dir);
    h.finish(&PerfSummary {
        parallel_speedup,
        cache_speedup,
        cold_serial_s: serial_s,
        cold_parallel_s: cold_s,
        warm_cached_s: warm_s,
        threads: rayon::current_num_threads(),
        training,
        experiment_cache,
        decision_path,
        kernels,
    });
}

/// The extractor pass that pays for one Table 1 feature: the row-pointer
/// walk (counts, extrema, warp chunks, HYB histogram), the counts walk
/// (mean-relative deviations, HYB ELL occupancy), the column-index walk
/// (diagonal census), the O(1) header, or an O(1) derived ratio.
fn pass_of(id: FeatureId) -> &'static str {
    match id {
        FeatureId::NRows | FeatureId::NCols => "header",
        FeatureId::Nnz
        | FeatureId::NnzMu
        | FeatureId::NnzMin
        | FeatureId::NnzMax
        | FeatureId::CsrMax
        | FeatureId::HybEllSize => "row-ptr walk",
        FeatureId::NnzSig
        | FeatureId::SigLower
        | FeatureId::SigHigher
        | FeatureId::HybCoo
        | FeatureId::HybEllFrac => "counts walk",
        FeatureId::Diagonals | FeatureId::DiaSize | FeatureId::DiaFrac => "col-idx walk",
        FeatureId::NnzFrac
        | FeatureId::MaxMu
        | FeatureId::MuMin
        | FeatureId::EllFrac
        | FeatureId::EllSize => "derived",
    }
}

#[derive(serde::Serialize)]
struct PerfSummary {
    parallel_speedup: f64,
    cache_speedup: f64,
    cold_serial_s: f64,
    cold_parallel_s: f64,
    warm_cached_s: f64,
    threads: usize,
    training: TrainingSummary,
    experiment_cache: ExperimentCacheSummary,
    decision_path: DecisionPathSummary,
    kernels: Vec<KernelCost>,
}

/// One (probe matrix, format) cell of the kernel section: measured CPU
/// SpMV and SpMM costs through the registry's dispatch path.
#[derive(serde::Serialize)]
struct KernelCost {
    probe: String,
    format: String,
    nnz: usize,
    spmv_us: f64,
    spmm_k: usize,
    spmm_us: f64,
    /// SpMM cost per dense column relative to one SpMV — below 1.0 means
    /// the format amortizes the sparse walk over the k columns.
    spmm_per_column_ratio: f64,
    memory_bytes: usize,
}

/// Stage-by-stage budget of one steady-state `learn: false` select, plus
/// the per-feature cost attribution (Elafrou-style feature budget).
#[derive(serde::Serialize)]
struct DecisionPathSummary {
    probe_matrices: usize,
    probe_nnz: usize,
    /// Avg ns per matrix for the retained multi-pass `MatrixStats` walk.
    legacy_extract_ns: f64,
    /// Avg ns per matrix for the warmed single-pass extractor.
    single_pass_extract_ns: f64,
    extract_speedup: f64,
    /// Avg per-decision phase nanoseconds from `decide_phased` — the same
    /// counters the serving engine accumulates into its Stats reply.
    embed_ns: f64,
    assign_ns: f64,
    label_ns: f64,
    /// extract + embed + assign + label: the whole budget for one select.
    select_ns: f64,
    decisions_timed: u64,
    row_ptr_walk_ns: f64,
    counts_walk_ns: f64,
    col_idx_walk_ns: f64,
    feature_costs: Vec<FeatureCost>,
}

/// One Table 1 feature's slot in the budget: the extractor pass that
/// computes it, that pass's cost, and the cost amortized over the pass's
/// features (header fields and derived ratios are O(1) and cost 0).
#[derive(serde::Serialize)]
struct FeatureCost {
    feature: String,
    pass: String,
    pass_ns: f64,
    share_ns: f64,
}

/// Fit times on the per-GPU corpus dataset, plus the naive-vs-presorted
/// split-search comparison backing the tree-family speedup claim.
#[derive(serde::Serialize)]
struct TrainingSummary {
    samples: usize,
    dt_naive_ms: f64,
    dt_presorted_ms: f64,
    dt_split_speedup: f64,
    gboost_naive_ms: f64,
    gboost_presorted_ms: f64,
    gboost_split_speedup: f64,
    /// Combined (dt + gboost) naive / presorted ratio — the headline
    /// training-phase speedup.
    tree_family_speedup: f64,
    rf_fit_ms: f64,
    knn_fit_ms: f64,
}

/// Cold compute-and-store vs warm load-from-disk for one Table 4 run.
#[derive(serde::Serialize)]
struct ExperimentCacheSummary {
    cold_s: f64,
    warm_s: f64,
    speedup: f64,
    hits: u64,
    misses: u64,
    stores: u64,
}
