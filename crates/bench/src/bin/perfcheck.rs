//! `perfcheck`: measure the experiment pipeline's parallel speedup and
//! cache effectiveness, and emit the numbers as a JSON run report.
//!
//! Three timed configurations of `ExperimentContext` construction:
//!
//! 1. **cold-serial** — parallelism forced off, cache disabled (the
//!    pre-parallel baseline);
//! 2. **cold-parallel** — parallel build + benchmark, writing into a
//!    fresh cache directory;
//! 3. **warm-cached** — the same run again, now served from the cache.
//!
//! The report records `parallel_speedup` (1 vs 2) and `cache_speedup`
//! (2 vs 3), and the run asserts that parallel and serial construction
//! produce bit-identical corpora and benchmark results.
//!
//! It then measures the training phase on the real corpus: per-model fit
//! time, the presorted-vs-naive split-search speedup for the tree family,
//! and a cold/warm demonstration of the per-table experiment cache (a
//! warm Table 4 rerun must be served entirely from disk).

use spsel_bench::HarnessOptions;
use spsel_core::cache::Cache;
use spsel_core::experiments::{table4, ExperimentContext};
use spsel_core::telemetry::RunReport;
use spsel_gpusim::Gpu;
use spsel_matrix::Format;
use spsel_ml::forest::{RandomForest, RandomForestParams};
use spsel_ml::gboost::{GradientBoosting, GradientBoostingParams};
use spsel_ml::knn::KnnClassifier;
use spsel_ml::tree::{DecisionTree, DecisionTreeParams};
use spsel_ml::{Classifier, Dataset};
use std::time::Instant;

/// Milliseconds of the fastest of three runs of `f` (best-of-n damps
/// scheduler noise without a full Criterion session).
fn time_ms(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let mut h = HarnessOptions::open();
    let cfg = h.opts.corpus.clone();
    let dir = h
        .opts
        .cache_dir
        .clone()
        .unwrap_or_else(|| "results/cache".to_string());
    let dir = format!("{dir}/perfcheck-{}", std::process::id());
    eprintln!("perfcheck: {} base matrices, cache dir {dir}", cfg.n_base);

    // 1. Cold, serial, uncached.
    rayon::set_serial(true);
    let start = Instant::now();
    let serial_ctx = ExperimentContext::build(
        cfg.clone(),
        &Cache::disabled(),
        &mut RunReport::new("perfcheck-serial"),
    );
    let serial_s = start.elapsed().as_secs_f64();
    rayon::set_serial(false);
    eprintln!("cold-serial    {serial_s:>8.2}s");

    // 2. Cold, parallel, populating a fresh cache.
    let cache = Cache::new(&dir);
    let start = Instant::now();
    let parallel_ctx =
        ExperimentContext::build(cfg.clone(), &cache, &mut RunReport::new("perfcheck-cold"));
    let cold_s = start.elapsed().as_secs_f64();
    eprintln!("cold-parallel  {cold_s:>8.2}s");

    // Parallel execution must be bit-identical to serial.
    assert_eq!(
        serial_ctx.corpus.records, parallel_ctx.corpus.records,
        "parallel corpus differs from serial"
    );
    assert_eq!(
        serial_ctx.benches, parallel_ctx.benches,
        "parallel benchmarks differ from serial"
    );

    // 3. Warm, served from the cache.
    let warm_cache = Cache::new(&dir);
    let start = Instant::now();
    let warm_ctx = ExperimentContext::build(
        cfg.clone(),
        &warm_cache,
        &mut RunReport::new("perfcheck-warm"),
    );
    let warm_s = start.elapsed().as_secs_f64();
    eprintln!("warm-cached    {warm_s:>8.2}s");
    assert_eq!(warm_ctx.benches, parallel_ctx.benches, "cached run differs");
    let wr = warm_cache.report();
    assert_eq!(wr.misses, 0, "warm run should not miss ({wr:?})");

    h.report.record("cold_serial", serial_s);
    h.report.record("cold_parallel", cold_s);
    h.report.record("warm_cached", warm_s);
    let parallel_speedup = serial_s / cold_s;
    let cache_speedup = cold_s / warm_s;
    println!("parallel speedup (cold serial / cold parallel): {parallel_speedup:.2}x");
    println!("cache speedup    (cold parallel / warm cached): {cache_speedup:.2}x");

    // 4. Training phase on the real corpus: the Turing dataset, labels
    //    from the modeled benchmarks — exactly what the supervised
    //    experiments train on.
    let ds = parallel_ctx.dataset(Gpu::Turing);
    let features = parallel_ctx.features(&ds);
    let results = parallel_ctx
        .results(Gpu::Turing, &ds)
        .expect("feasible Turing dataset");
    let x: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();
    let y: Vec<usize> = results.iter().map(|r| r.best.index()).collect();
    let data = Dataset::new(x, y, Format::COUNT);
    eprintln!(
        "training set: {} samples x {} features",
        data.len(),
        data.dim()
    );

    let dt_params = DecisionTreeParams {
        max_depth: Some(20),
        seed: 17,
        ..Default::default()
    };
    let dt_naive_ms = time_ms(|| DecisionTree::new(dt_params.clone()).fit_naive(&data));
    let dt_presorted_ms = time_ms(|| DecisionTree::new(dt_params.clone()).fit(&data));
    let gb_params = GradientBoostingParams {
        n_rounds: if h.opts.quick { 10 } else { 100 },
        ..Default::default()
    };
    let gboost_naive_ms = time_ms(|| GradientBoosting::new(gb_params.clone()).fit_naive(&data));
    let gboost_presorted_ms = time_ms(|| GradientBoosting::new(gb_params.clone()).fit(&data));
    let rf_fit_ms = time_ms(|| {
        RandomForest::new(RandomForestParams {
            n_estimators: if h.opts.quick { 20 } else { 100 },
            max_depth: Some(6),
            seed: 17,
            ..Default::default()
        })
        .fit(&data)
    });
    let knn_fit_ms = time_ms(|| KnnClassifier::new(5).fit(&data));
    let training = TrainingSummary {
        samples: data.len(),
        dt_naive_ms,
        dt_presorted_ms,
        dt_split_speedup: dt_naive_ms / dt_presorted_ms,
        gboost_naive_ms,
        gboost_presorted_ms,
        gboost_split_speedup: gboost_naive_ms / gboost_presorted_ms,
        tree_family_speedup: (dt_naive_ms + gboost_naive_ms)
            / (dt_presorted_ms + gboost_presorted_ms),
        rf_fit_ms,
        knn_fit_ms,
    };
    h.report.record("train_dt_naive", dt_naive_ms / 1e3);
    h.report.record("train_dt_presorted", dt_presorted_ms / 1e3);
    h.report.record("train_gboost_naive", gboost_naive_ms / 1e3);
    h.report
        .record("train_gboost_presorted", gboost_presorted_ms / 1e3);
    h.report.record("train_rf", rf_fit_ms / 1e3);
    h.report.record("train_knn", knn_fit_ms / 1e3);
    println!(
        "split-search speedup (naive / presorted): dt {:.2}x, xgboost {:.2}x, \
         tree family {:.2}x",
        training.dt_split_speedup, training.gboost_split_speedup, training.tree_family_speedup
    );
    println!(
        "fit time: dt {dt_presorted_ms:.0}ms, rf {rf_fit_ms:.0}ms, \
         xgboost {gboost_presorted_ms:.0}ms, knn {knn_fit_ms:.0}ms"
    );

    // 5. Experiment cache, cold vs warm: a Table 4 run stored once must
    //    be served from disk with zero training on the rerun.
    let exp_dir = format!("{dir}-exp");
    let exp_cache = Cache::new(&exp_dir);
    let t4cfg = table4::Table4Config {
        nc_candidates: vec![25, 50],
        folds: 3,
        seed: 17,
    };
    let digest = parallel_ctx.digest();
    let start = Instant::now();
    assert!(
        exp_cache
            .load_experiment::<table4::Table4, _>("table4", digest, &t4cfg)
            .is_none(),
        "fresh experiment cache must miss"
    );
    let cold_t4 = table4::run(&parallel_ctx, &t4cfg);
    exp_cache.store_experiment("table4", digest, &t4cfg, &cold_t4);
    let exp_cold_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm_t4: table4::Table4 = exp_cache
        .load_experiment("table4", digest, &t4cfg)
        .expect("warm experiment rerun must hit");
    let exp_warm_s = start.elapsed().as_secs_f64();
    assert_eq!(
        serde_json::to_string(&warm_t4).unwrap(),
        serde_json::to_string(&cold_t4).unwrap(),
        "cached table differs from computed"
    );
    let exp_report = exp_cache.report();
    assert_eq!(
        (exp_report.experiment_hits, exp_report.experiment_misses),
        (1, 1),
        "expected exactly one miss (cold) and one hit (warm)"
    );
    h.report.record("experiment_cold", exp_cold_s);
    h.report.record("experiment_warm", exp_warm_s);
    let experiment_cache = ExperimentCacheSummary {
        cold_s: exp_cold_s,
        warm_s: exp_warm_s,
        speedup: exp_cold_s / exp_warm_s,
        hits: exp_report.experiment_hits,
        misses: exp_report.experiment_misses,
        stores: exp_report.experiment_stores,
    };
    println!(
        "experiment cache (table4): cold {exp_cold_s:.2}s, warm {exp_warm_s:.4}s \
         ({:.0}x), {} hit / {} miss",
        experiment_cache.speedup, exp_report.experiment_hits, exp_report.experiment_misses
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&exp_dir);
    h.finish(&PerfSummary {
        parallel_speedup,
        cache_speedup,
        cold_serial_s: serial_s,
        cold_parallel_s: cold_s,
        warm_cached_s: warm_s,
        threads: rayon::current_num_threads(),
        training,
        experiment_cache,
    });
}

#[derive(serde::Serialize)]
struct PerfSummary {
    parallel_speedup: f64,
    cache_speedup: f64,
    cold_serial_s: f64,
    cold_parallel_s: f64,
    warm_cached_s: f64,
    threads: usize,
    training: TrainingSummary,
    experiment_cache: ExperimentCacheSummary,
}

/// Fit times on the per-GPU corpus dataset, plus the naive-vs-presorted
/// split-search comparison backing the tree-family speedup claim.
#[derive(serde::Serialize)]
struct TrainingSummary {
    samples: usize,
    dt_naive_ms: f64,
    dt_presorted_ms: f64,
    dt_split_speedup: f64,
    gboost_naive_ms: f64,
    gboost_presorted_ms: f64,
    gboost_split_speedup: f64,
    /// Combined (dt + gboost) naive / presorted ratio — the headline
    /// training-phase speedup.
    tree_family_speedup: f64,
    rf_fit_ms: f64,
    knn_fit_ms: f64,
}

/// Cold compute-and-store vs warm load-from-disk for one Table 4 run.
#[derive(serde::Serialize)]
struct ExperimentCacheSummary {
    cold_s: f64,
    warm_s: f64,
    speedup: f64,
    hits: u64,
    misses: u64,
    stores: u64,
}
