//! Regenerate Table 7: supervised classifiers under transfer.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::{table7, ExperimentContext};

fn main() {
    let opts = HarnessOptions::from_args();
    let ctx = opts.context();
    let cfg = table7::Table7Config {
        folds: if opts.quick { 3 } else { 5 },
        seed: 37,
        quick: opts.quick,
    };
    eprintln!("running 5 transfer pairs x 5 models x 3 budgets...");
    let t = table7::run(&ctx, &cfg);
    println!("Table 7: supervised format selection under transfer\n");
    println!("{}", t.render());
    opts.write_json(&t);
}
