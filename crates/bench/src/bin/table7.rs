//! Regenerate Table 7: supervised classifiers under transfer.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::table7;

fn main() {
    let mut h = HarnessOptions::open();
    let ctx = h.context();
    let cfg = table7::Table7Config {
        folds: if h.opts.quick { 3 } else { 5 },
        seed: 37,
        quick: h.opts.quick,
    };
    eprintln!("running 5 transfer pairs x 5 models x 3 budgets...");
    let t = h.cached_experiment("table7", &ctx, &cfg, || table7::run(&ctx, &cfg));
    println!("Table 7: supervised format selection under transfer\n");
    println!("{}", t.render());
    h.finish(&t);
}
