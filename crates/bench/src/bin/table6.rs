//! Regenerate Table 6: supervised classifier performance per GPU.
//!
//! Pass `--images` to include the CNN row (slower).

use spsel_bench::HarnessOptions;
use spsel_core::experiments::{table6, ExperimentContext};

fn main() {
    let opts = HarnessOptions::from_args();
    let ctx = opts.context();
    let cfg = table6::Table6Config {
        folds: if opts.quick { 3 } else { 5 },
        seed: 31,
        with_cnn: opts.corpus.with_images,
        quick: opts.quick,
    };
    eprintln!(
        "running supervised models (CNN: {})...",
        if cfg.with_cnn { "yes" } else { "no (pass --images)" }
    );
    let t = table6::run(&ctx, &cfg);
    println!("Table 6: performance of supervised ML models per GPU\n");
    println!("{}", t.render());
    opts.write_json(&t);
}
