//! Regenerate Table 6: supervised classifier performance per GPU.
//!
//! Pass `--images` to include the CNN row (slower).

use spsel_bench::HarnessOptions;
use spsel_core::experiments::table6;

fn main() {
    let mut h = HarnessOptions::open();
    let ctx = h.context();
    let cfg = table6::Table6Config {
        folds: if h.opts.quick { 3 } else { 5 },
        seed: 31,
        with_cnn: h.opts.corpus.with_images,
        quick: h.opts.quick,
    };
    eprintln!(
        "running supervised models (CNN: {})...",
        if cfg.with_cnn {
            "yes"
        } else {
            "no (pass --images)"
        }
    );
    let t = h.cached_experiment("table6", &ctx, &cfg, || table6::run(&ctx, &cfg));
    println!("Table 6: performance of supervised ML models per GPU\n");
    println!("{}", t.render());
    h.finish(&t);
}
