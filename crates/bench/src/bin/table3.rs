//! Regenerate Table 3: best-format distribution per GPU + common subset.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::{table3, ExperimentContext};

fn main() {
    let opts = HarnessOptions::from_args();
    let ctx = opts.context();
    let t = table3::run(&ctx);
    println!("Table 3: distribution of the best sparse formats across GPUs\n");
    println!("{}", t.render());
    opts.write_json(&t);
}
