//! Regenerate Table 3: best-format distribution per GPU + common subset.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::table3;

fn main() {
    let mut h = HarnessOptions::open();
    let ctx = h.context();
    let t = h.time("experiment", || table3::run(&ctx));
    println!("Table 3: distribution of the best sparse formats across GPUs\n");
    println!("{}", t.render());
    h.finish(&t);
}
