//! Ablation studies for the design choices DESIGN.md calls out: feature
//! transforms, PCA dimensionality, cluster count, and the number of
//! benchmarks per cluster.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::ablation;
use spsel_gpusim::Gpu;

fn main() {
    let opts = HarnessOptions::from_args();
    let ctx = opts.context();
    let (nc, folds) = if opts.quick { (25, 3) } else { (200, 5) };

    println!("Ablation studies (GPU: Turing unless noted)\n");

    let t = ablation::transforms(&ctx, Gpu::Turing, nc, 17);
    println!("{}", ablation::render_transforms(&t));

    let dims = [2usize, 4, 8, 12, 16];
    let pca = ablation::pca_sweep(&ctx, Gpu::Turing, &dims, nc, folds, 17);
    println!("{}", ablation::render_pca(&pca));

    let ncs: Vec<usize> = if opts.quick {
        vec![5, 15, 30, 60]
    } else {
        vec![25, 50, 100, 200, 400, 800]
    };
    let ncp = ablation::nc_sweep(&ctx, Gpu::Turing, &ncs, folds, 17);
    println!("{}", ablation::render_nc(&ncp));

    let votes = [1usize, 2, 4, 8, 1_000_000];
    let vp = ablation::votes_per_cluster(&ctx, Gpu::Pascal, &votes, nc, folds, 17);
    println!("{}", ablation::render_votes(&vp));

    opts.write_json(&(t, pca, ncp, vp));
}
