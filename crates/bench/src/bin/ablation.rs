//! Ablation studies for the design choices DESIGN.md calls out: feature
//! transforms, PCA dimensionality, cluster count, and the number of
//! benchmarks per cluster.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::ablation;
use spsel_gpusim::Gpu;

fn main() {
    let mut h = HarnessOptions::open();
    let ctx = h.context();
    let (nc, folds) = if h.opts.quick { (25, 3) } else { (200, 5) };

    println!("Ablation studies (GPU: Turing unless noted)\n");

    // Each sweep goes through the experiment cache under its own key:
    // the params tuple captures every input beyond the shared context.
    let t = h.cached_experiment("transforms", &ctx, &("Turing", nc, 17u64), || {
        ablation::transforms(&ctx, Gpu::Turing, nc, 17)
    });
    println!("{}", ablation::render_transforms(&t));

    let dims = [2usize, 4, 8, 12, 16];
    let pca_params = ("Turing", dims, (nc, folds, 17u64));
    let pca = h.cached_experiment("pca_sweep", &ctx, &pca_params, || {
        ablation::pca_sweep(&ctx, Gpu::Turing, &dims, nc, folds, 17)
    });
    println!("{}", ablation::render_pca(&pca));

    let ncs: Vec<usize> = if h.opts.quick {
        vec![5, 15, 30, 60]
    } else {
        vec![25, 50, 100, 200, 400, 800]
    };
    let nc_params = ("Turing", ncs.clone(), (folds, 17u64));
    let ncp = h.cached_experiment("nc_sweep", &ctx, &nc_params, || {
        ablation::nc_sweep(&ctx, Gpu::Turing, &ncs, folds, 17)
    });
    println!("{}", ablation::render_nc(&ncp));

    let votes = [1usize, 2, 4, 8, 1_000_000];
    let votes_params = ("Pascal", votes, (nc, folds, 17u64));
    let vp = h.cached_experiment("votes_per_cluster", &ctx, &votes_params, || {
        ablation::votes_per_cluster(&ctx, Gpu::Pascal, &votes, nc, folds, 17)
    });
    println!("{}", ablation::render_votes(&vp));

    h.finish(&(t, pca, ncp, vp));
}
