//! Regenerate Table 5: semi-supervised transfer across GPUs.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::table5;

fn main() {
    let mut h = HarnessOptions::open();
    let ctx = h.context();
    let cfg = if h.opts.quick {
        table5::Table5Config {
            nc_candidates: vec![25],
            folds: 3,
            seed: 23,
        }
    } else {
        table5::Table5Config::default()
    };
    eprintln!("running 6 transfer pairs x 9 algorithms x 3 budgets...");
    let t = h.time("experiment", || table5::run(&ctx, &cfg));
    println!("Table 5: semi-supervised format selection under transfer\n");
    println!("{}", t.render());
    h.finish(&t);
}
