//! Regenerate the Section 5.1 anecdote: worst-case CSR slowdown on each
//! GPU for mawi-like (hub-row) matrices.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::worstcase;

fn main() {
    let mut h = HarnessOptions::open();
    let cases = h.time("experiment", worstcase::run);
    println!("Worst-case slowdown from defaulting to CSR (mawi-like hub matrices)\n");
    println!("{}", worstcase::render(&cases));
    println!("(paper: 194.85x for mawi_201512012345 on the Quadro RTX 8000, HYB optimal)");
    h.finish(&cases);
}
