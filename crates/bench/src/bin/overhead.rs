//! Overhead-conscious selection demo: break-even iteration counts and
//! amortized-choice crossovers over the corpus (the extension of the
//! paper's Table 8 cost analysis).

use spsel_bench::HarnessOptions;
use spsel_core::overhead::{amortized_best, break_even_iterations};
use spsel_gpusim::cost::ConversionCostModel;
use spsel_gpusim::Gpu;
use spsel_matrix::Format;

fn main() {
    let mut h = HarnessOptions::open();
    let ctx = h.context();
    let conv = ConversionCostModel::default();
    let gpu = Gpu::Turing;
    let ds = ctx.dataset(gpu);

    // Over all matrices whose best format is not CSR: distribution of the
    // break-even iteration counts.
    let mut break_evens = Vec::new();
    let mut flips_at = [0usize; 4]; // chosen format counts at 1000 iters
    for &i in &ds {
        let r = ctx.bench(gpu)[i].unwrap();
        if r.best != Format::Csr {
            if let Some(n) = break_even_iterations(&r.times, &conv, r.best) {
                break_evens.push(n);
            }
        }
        flips_at[amortized_best(&r.times, &conv, 1000).format.index()] += 1;
    }
    break_evens.sort_unstable();
    let pct = |p: f64| break_evens[((break_evens.len() - 1) as f64 * p) as usize];
    println!(
        "Overhead-conscious selection on {gpu} ({} matrices)\n",
        ds.len()
    );
    println!(
        "break-even iterations for non-CSR optima (n = {}):",
        break_evens.len()
    );
    if !break_evens.is_empty() {
        println!(
            "  p10 {:>7}   median {:>7}   p90 {:>9}",
            pct(0.1),
            pct(0.5),
            pct(0.9)
        );
    }
    println!("\nformats chosen by the amortized rule at 1000 iterations:");
    for f in Format::ALL {
        println!("  {:<4} {:>6}", f.name(), flips_at[f.index()]);
    }
    println!("\n(one-shot workloads stay CSR; long iterative solvers amortize conversions)");
    h.finish(&break_evens);
}
