//! Regenerate Table 8: conversion cost ratios and benchmarking hours.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::table8;

fn main() {
    let mut h = HarnessOptions::open();
    let ctx = h.context();
    let t = h.time("experiment", || table8::run(&ctx, 100, 5.0));
    println!("Table 8: format conversion cost and benchmarking time\n");
    println!("{}", t.render());
    h.finish(&t);
}
