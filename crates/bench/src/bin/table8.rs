//! Regenerate Table 8: conversion cost ratios and benchmarking hours.

use spsel_bench::HarnessOptions;
use spsel_core::experiments::{table8, ExperimentContext};

fn main() {
    let opts = HarnessOptions::from_args();
    let ctx = opts.context();
    let t = table8::run(&ctx, 100, 5.0);
    println!("Table 8: format conversion cost and benchmarking time\n");
    println!("{}", t.render());
    opts.write_json(&t);
}
