//! Run the format-zoo experiment: per-workload label distributions over
//! an extended format registry, plus the cross-workload disagreement
//! table (how often the best format for SpMM differs from SpMV's).
//!
//! ```sh
//! formatzoo [--registry cusp|extended|full] [--quick] [--json OUT.json]
//! ```

use spsel_bench::HarnessOptions;
use spsel_core::experiments::formatzoo::{self, FormatZooConfig, RegistryChoice};

fn main() {
    let mut h = HarnessOptions::open();
    let registry = match h.opts.registry.as_deref() {
        None | Some("extended") => RegistryChoice::Extended,
        Some("cusp") => RegistryChoice::CuspDefault,
        Some("full") => RegistryChoice::Full,
        Some(other) => {
            eprintln!("formatzoo: --registry must be cusp, extended, or full (got `{other}`)");
            std::process::exit(2);
        }
    };
    let ctx = h.context();
    let cfg = FormatZooConfig { registry };
    eprintln!(
        "labeling {} matrices x 3 GPUs x 3 workloads against the {:?} registry...",
        ctx.corpus.len(),
        registry,
    );
    let zoo = h.cached_experiment("formatzoo", &ctx, &cfg, || formatzoo::run(&ctx, &cfg));
    println!("Format zoo: per-workload label distributions and disagreement\n");
    println!("{}", zoo.render());
    println!(
        "total cross-workload disagreements: {}",
        zoo.total_disagreements()
    );
    h.finish(&zoo);
}
