//! `select`: the end-user tool. Reads a Matrix Market file, extracts the
//! Table 1 features, and prints the recommended storage format for each
//! GPU (with the cluster-based explanation), plus the overhead-conscious
//! recommendation for iterative workloads.
//!
//! ```sh
//! select path/to/matrix.mtx [--iterations N] [--base N] [--faults R]
//! ```

use spsel_core::corpus::{Corpus, CorpusConfig};
use spsel_core::overhead::{amortized_best, break_even_iterations};
use spsel_core::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
use spsel_features::{FeatureVector, MatrixStats};
use spsel_gpusim::cost::ConversionCostModel;
use spsel_gpusim::{predict_times, FaultConfig, Gpu, TrialPolicy};
use spsel_matrix::{io, CsrMatrix, Format, SpMv};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut path = None;
    let mut iterations = 1000usize;
    let mut n_base = 300usize;
    let mut faults = FaultConfig::from_env();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iterations" => {
                i += 1;
                iterations = args[i].parse().expect("--iterations takes a number");
            }
            "--base" => {
                i += 1;
                n_base = args[i].parse().expect("--base takes a number");
            }
            "--faults" => {
                i += 1;
                let rate: f64 = args[i].parse().expect("--faults takes a rate in [0, 1]");
                faults = if rate > 0.0 {
                    FaultConfig::uniform(rate.min(1.0), faults.seed)
                } else {
                    FaultConfig::off()
                };
            }
            "--fault-seed" => {
                i += 1;
                faults.seed = args[i].parse().expect("--fault-seed takes a number");
            }
            p if !p.starts_with("--") => path = Some(p.to_string()),
            other => panic!("unknown argument `{other}`"),
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| {
        eprintln!("usage: select MATRIX.mtx [--iterations N] [--base N] [--faults R]");
        std::process::exit(2);
    });

    let coo = io::read_matrix_market_file(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let csr = CsrMatrix::from(&coo);
    let stats = MatrixStats::from_csr(&csr);
    let fv = FeatureVector::from_stats(&stats);
    println!(
        "{path}: {} x {} matrix, {} nonzeros, rows {}..{} (mean {:.1})",
        csr.nrows(),
        csr.ncols(),
        csr.nnz(),
        stats.nnz_min,
        stats.nnz_max,
        stats.nnz_mean
    );

    eprintln!("training selectors on a {n_base}-matrix corpus...");
    let corpus = Corpus::build(CorpusConfig {
        n_base,
        augment_copies: 0,
        seed: 0xC0FFEE,
        with_images: false,
        image_resolution: 32,
        size_scale: 1.0,
    });
    let conv = ConversionCostModel::default();

    println!(
        "\n{:<8} {:>10} | {:>38} | amortized @{iterations} iters",
        "GPU", "predicted", "explanation"
    );
    for gpu in Gpu::ALL {
        let bench = if faults.enabled() {
            let measured = corpus.measure(gpu, &faults, &TrialPolicy::default());
            for (index, err) in measured.quarantined() {
                eprintln!(
                    "degradation: {} record {index} quarantined ({err})",
                    gpu.name()
                );
            }
            measured.results()
        } else {
            corpus.benchmark(gpu)
        };
        let usable: Vec<usize> = (0..corpus.len()).filter(|&i| bench[i].is_some()).collect();
        if usable.is_empty() {
            eprintln!("degradation: no usable training matrices on {}", gpu.name());
            continue;
        }
        let features: Vec<FeatureVector> = usable
            .iter()
            .map(|&i| corpus.records[i].features.clone())
            .collect();
        let labels: Vec<Format> = match Corpus::labels(&bench, &usable) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("degradation: cannot label {} corpus: {e}", gpu.name());
                continue;
            }
        };
        let selector = SemiSupervisedSelector::fit(
            &features,
            &labels,
            SemiConfig::new(
                ClusterMethod::KMeans {
                    nc: (usable.len() / 10).max(4),
                },
                Labeler::Vote,
                7,
            ),
        );
        let prediction = selector.predict(&fv);
        let e = selector.explain(&fv);
        let times = predict_times(&gpu.spec(), &stats, 0xF00D);
        let amortized = amortized_best(&times, &conv, iterations);
        let break_even = break_even_iterations(&times, &conv, amortized.format);
        println!(
            "{:<8} {:>10} | cluster #{:<4} size {:<5} dist {:<6.3} | {} (break-even {} iters)",
            gpu.name(),
            prediction.name(),
            e.cluster,
            e.cluster_size,
            e.centroid_distance,
            amortized.format.name(),
            break_even.map_or("-".to_string(), |n| n.to_string()),
        );
    }
}
