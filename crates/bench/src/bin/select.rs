//! `select`: the end-user tool. Reads a Matrix Market file, extracts the
//! Table 1 features, and prints the recommended storage format for each
//! GPU (with the cluster-based explanation), plus the overhead-conscious
//! recommendation for iterative workloads.
//!
//! ```sh
//! select MATRIX.mtx [--model MODEL.spsel] [--iterations N] [--base N]
//!        [--faults R] [--fault-seed S]
//! ```
//!
//! With `--model` the decision comes from a pre-trained artifact (see
//! `spsel train`); otherwise selectors are trained on demand. Either way
//! the decision itself goes through the serving engine — the exact
//! codepath `spsel-serve` answers network requests with — so the CLI and
//! the daemon can never disagree about a matrix. All failures are typed:
//! the serve error envelope goes to stderr and the exit code is nonzero
//! (2 for bad arguments, 1 otherwise).

use spsel_core::corpus::{Corpus, CorpusConfig};
use spsel_core::semi::SemiSupervisedSelector;
use spsel_core::CoreError;
use spsel_features::{FeatureVector, MatrixStats};
use spsel_gpusim::cost::ConversionCostModel;
use spsel_gpusim::{FaultConfig, Gpu, TrialPolicy};
use spsel_matrix::{io, CsrMatrix, Format, SpMv};
use spsel_serve::artifact::{self, TrainConfig};
use spsel_serve::protocol::SelectBody;
use spsel_serve::{Engine, EngineOptions, ServeError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!(
            "select: {}",
            serde_json::to_string(&e.envelope()).expect("envelope serializes")
        );
        std::process::exit(match e {
            ServeError::BadRequest { .. } => 2,
            _ => 1,
        });
    }
}

/// Parse the value after a flag, typed; a missing or unparsable value is
/// an `invalid argument` error, not a panic.
fn value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, ServeError> {
    args.get(i + 1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CoreError::invalid_argument(format!("{flag} needs a value")).into())
}

fn run(args: &[String]) -> Result<(), ServeError> {
    let mut path = None;
    let mut model_path: Option<String> = None;
    let mut iterations = 1000usize;
    let mut n_base = 300usize;
    let mut faults = FaultConfig::from_env();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                model_path = Some(value(args, i, "--model")?);
                i += 1;
            }
            "--iterations" => {
                iterations = value(args, i, "--iterations")?;
                i += 1;
            }
            "--base" => {
                n_base = value(args, i, "--base")?;
                i += 1;
            }
            "--faults" => {
                let rate: f64 = value(args, i, "--faults")?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(
                        CoreError::invalid_argument("--faults takes a rate in [0, 1]").into(),
                    );
                }
                faults = if rate > 0.0 {
                    FaultConfig::uniform(rate, faults.seed)
                } else {
                    FaultConfig::off()
                };
                i += 1;
            }
            "--fault-seed" => {
                faults.seed = value(args, i, "--fault-seed")?;
                i += 1;
            }
            p if !p.starts_with("--") => path = Some(p.to_string()),
            other => {
                return Err(
                    CoreError::invalid_argument(format!("unknown argument `{other}`")).into(),
                )
            }
        }
        i += 1;
    }
    let path = path.ok_or_else(|| {
        ServeError::from(CoreError::invalid_argument(
            "usage: select MATRIX.mtx [--model MODEL] [--iterations N] [--base N] [--faults R]",
        ))
    })?;

    let coo = io::read_matrix_market_file(&path).map_err(|e| ServeError::Io {
        path: path.clone(),
        message: e.to_string(),
    })?;
    let csr = CsrMatrix::from(&coo);
    let stats = MatrixStats::from_csr(&csr);
    let fv = FeatureVector::from_stats(&stats);
    println!(
        "{path}: {} x {} matrix, {} nonzeros, rows {}..{} (mean {:.1})",
        csr.nrows(),
        csr.ncols(),
        csr.nnz(),
        stats.nnz_min,
        stats.nnz_max,
        stats.nnz_mean
    );

    let engine = match model_path {
        Some(model_path) => {
            let model = artifact::load(&model_path)?;
            eprintln!(
                "using artifact v{} from {model_path} ({} GPUs, context {})",
                model.artifact_version,
                model.gpus.len(),
                model.context_digest
            );
            Engine::from_artifact(&model, &EngineOptions::default())?
        }
        None => {
            eprintln!("training selectors on a {n_base}-matrix corpus...");
            train_on_demand(n_base, &faults)?
        }
    };

    println!(
        "\n{:<8} {:>10} | {:>38} | amortized @{iterations} iters",
        "GPU", "predicted", "explanation"
    );
    for gpu in engine.gpus() {
        let body = SelectBody {
            matrix: None,
            features: Some(fv.as_slice().to_vec()),
            gpu: gpu.name().to_string(),
            iterations: Some(iterations),
            learn: Some(false),
            workload: None,
        };
        let reply = engine.select(&body)?;
        println!(
            "{:<8} {:>10} | cluster #{:<4} size {:<5} dist {:<6.3} | {} (break-even {} iters)",
            reply.gpu,
            reply.format,
            reply.cluster,
            reply.cluster_size,
            reply.centroid_distance,
            reply.amortized_format,
            reply
                .break_even_iterations
                .map_or("-".to_string(), |n| n.to_string()),
        );
    }
    Ok(())
}

/// The no-artifact path: build the training corpus, benchmark it
/// (optionally through the fault injector), and fit one selector per
/// GPU with the standard training heuristic.
fn train_on_demand(n_base: usize, faults: &FaultConfig) -> Result<Engine, ServeError> {
    let corpus = Corpus::build(CorpusConfig {
        n_base,
        augment_copies: 0,
        seed: 0xC0FFEE,
        with_images: false,
        image_resolution: 32,
        size_scale: 1.0,
    });
    let tc = TrainConfig::default();
    let mut selectors = Vec::new();
    for gpu in Gpu::ALL {
        let bench = if faults.enabled() {
            let measured = corpus.measure(gpu, faults, &TrialPolicy::default());
            for (index, err) in measured.quarantined() {
                eprintln!(
                    "degradation: {} record {index} quarantined ({err})",
                    gpu.name()
                );
            }
            measured.results()
        } else {
            corpus.benchmark(gpu)
        };
        let usable: Vec<usize> = (0..corpus.len()).filter(|&i| bench[i].is_some()).collect();
        if usable.is_empty() {
            eprintln!("degradation: no usable training matrices on {}", gpu.name());
            continue;
        }
        let features: Vec<FeatureVector> = usable
            .iter()
            .map(|&i| corpus.records[i].features.clone())
            .collect();
        let labels: Vec<Format> = match Corpus::labels(&bench, &usable) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("degradation: cannot label {} corpus: {e}", gpu.name());
                continue;
            }
        };
        let selector =
            SemiSupervisedSelector::fit(&features, &labels, tc.semi_config(usable.len()));
        selectors.push((gpu, selector, usable.len()));
    }
    if selectors.is_empty() {
        return Err(CoreError::EmptyDataset { gpu: "all".into() }.into());
    }
    Ok(Engine::from_selectors(
        selectors,
        ConversionCostModel::default(),
        &EngineOptions::default(),
    ))
}
