//! Regenerate Table 9: model training times at 0/25/50% transfer data.
//!
//! Pass `--images` to include the CNN row (much slower, as in the paper).

use spsel_bench::HarnessOptions;
use spsel_core::experiments::{table9, ExperimentContext};

fn main() {
    let opts = HarnessOptions::from_args();
    let ctx = opts.context();
    let cfg = table9::Table9Config {
        nc: if opts.quick { 25 } else { 200 },
        with_cnn: opts.corpus.with_images,
        quick: opts.quick,
        ..Default::default()
    };
    eprintln!("timing model training...");
    let t = table9::run(&ctx, &cfg);
    println!("Table 9: average training times (seconds)\n");
    println!("{}", t.render());
    opts.write_json(&t);
}
