//! Regenerate Table 9: model training times at 0/25/50% transfer data.
//!
//! Pass `--images` to include the CNN row (much slower, as in the paper).

use spsel_bench::HarnessOptions;
use spsel_core::experiments::table9;

fn main() {
    let mut h = HarnessOptions::open();
    let ctx = h.context();
    let cfg = table9::Table9Config {
        nc: if h.opts.quick { 25 } else { 200 },
        with_cnn: h.opts.corpus.with_images,
        quick: h.opts.quick,
        ..Default::default()
    };
    eprintln!("timing model training...");
    let t = h.time("experiment", || table9::run(&ctx, &cfg));
    println!("Table 9: average training times (seconds)\n");
    println!("{}", t.render());
    h.finish(&t);
}
