//! `loadgen`: concurrent load generator for `spsel-serve`.
//!
//! ```sh
//! loadgen [--clients N] [--connections C] [--pipeline D] [--requests M]
//!         [--protocol json|binary|both] [--model MODEL.spsel]
//!         [--addr HOST:PORT] [--seed S] [--feedback] [--json REPORT]
//!         [--read-frac F] [--bench-json BENCH.json] [--workload W]
//! ```
//!
//! By default it trains a quick model, starts an in-process daemon on an
//! ephemeral port, and drives `C` persistent connections (default: one
//! per client thread) spread over `N` client threads (default 32), each
//! connection issuing `M` selection requests (default 20) over distinct
//! synthetic matrices with up to `D` requests in flight (default 1, i.e.
//! strict request/response lockstep), then shuts the daemon down and
//! prints both client-observed latency and the server's own counters.
//! With `--addr` it targets an already-running daemon instead (and does
//! not shut it down). The exit code is nonzero if any request fails — CI
//! uses this as the serving soak test.
//!
//! `--protocol` picks the wire protocol; `both` drives the same workload
//! twice (JSON then binary) against the same daemon and `--bench-json`
//! then records a two-element array, one record per protocol, so the two
//! wire formats are directly comparable from one run. `--read-frac F`
//! sends that (deterministically assigned) fraction of selects as
//! `learn: false` probes, which the engine answers lock-free from its
//! online snapshot — the contention counters in the stats reply prove
//! it. `--workload W` tags every select with a workload (`spmv`, `spmm`,
//! or `spmm<k>`); the flag is validated locally, so a typo fails fast
//! instead of producing a full run of error envelopes.

use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_core::CoreError;
use spsel_features::{FeatureVector, MatrixStats};
use spsel_gpusim::Gpu;
use spsel_matrix::{gen, CsrMatrix, Workload};
use spsel_serve::artifact::{self, TrainConfig};
use spsel_serve::{
    Client, Engine, EngineOptions, Protocol, Request, ServeError, ServeOptions, Server,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => {}
        Ok(failed) => {
            eprintln!("loadgen: {failed} requests failed");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!(
                "loadgen: {}",
                serde_json::to_string(&e.envelope()).expect("envelope serializes")
            );
            std::process::exit(1);
        }
    }
}

fn value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, ServeError> {
    args.get(i + 1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CoreError::invalid_argument(format!("{flag} needs a value")).into())
}

/// Deterministic read/write split: request `idx` (global order) is a
/// `learn: false` probe when its per-mille slot falls under `read_frac`.
/// No RNG, so the same flags always produce the same request mix.
fn is_read(idx: usize, read_frac: f64) -> bool {
    (idx % 1000) < (read_frac.clamp(0.0, 1.0) * 1000.0).round() as usize
}

/// The select request for global slot `idx`: a distinct synthetic matrix
/// per slot, GPUs rotated, deterministic for a given seed.
fn select_request(
    idx: usize,
    seed: u64,
    read_frac: f64,
    workload: Option<Workload>,
) -> (Request, Gpu, bool) {
    let gpus = [Gpu::Pascal, Gpu::Volta, Gpu::Turing];
    let matrix_seed = seed ^ (idx as u64);
    let csr = CsrMatrix::from(&gen::power_law(
        120 + (matrix_seed % 80) as usize,
        120,
        2,
        2.2 + (matrix_seed % 5) as f64 * 0.1,
        60,
        matrix_seed,
    ));
    let features = FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
        .as_slice()
        .to_vec();
    let gpu = gpus[idx % gpus.len()];
    let learn = !is_read(idx, read_frac);
    let request = Request::Select {
        matrix: None,
        features: Some(features),
        gpu: gpu.name().to_string(),
        iterations: Some(500),
        deadline_ms: None,
        learn: Some(learn),
        workload: workload.map(|w| w.name()),
    };
    (request, gpu, learn)
}

/// One in-flight request's bookkeeping: when it was sent, and the
/// feedback context to replay if its select succeeds.
struct InFlight {
    sent_at: Instant,
    gpu: Gpu,
    learn: bool,
}

/// One persistent connection's progress through its request quota.
struct ConnState {
    client: Client,
    /// Global connection index (namespaces its request slots).
    conn_id: usize,
    issued: usize,
    inflight: VecDeque<InFlight>,
}

/// The knobs one drive phase runs with (everything but the protocol).
#[derive(Clone, Copy)]
struct DriveConfig {
    clients: usize,
    connections: usize,
    requests: usize,
    pipeline: usize,
    seed: u64,
    feedback: bool,
    read_frac: f64,
    /// Workload tag on every select; `None` omits the field (the wire
    /// default, SpMV).
    workload: Option<Workload>,
}

/// One client thread's work: its slice of persistent connections,
/// serviced round-robin with up to `pipeline` requests in flight per
/// connection. Responses are matched to sends in FIFO order (the
/// protocol answers in request order), so per-request latency is
/// send-to-receive even when pipelined.
fn client_thread(
    addr: &str,
    protocol: Protocol,
    conn_ids: std::ops::Range<usize>,
    cfg: DriveConfig,
) -> std::io::Result<(usize, Vec<Duration>)> {
    let mut conns: Vec<ConnState> = Vec::with_capacity(conn_ids.len());
    for conn_id in conn_ids {
        conns.push(ConnState {
            client: Client::connect_with(addr, protocol)?,
            conn_id,
            issued: 0,
            inflight: VecDeque::new(),
        });
    }
    let mut failed = 0usize;
    let mut latencies = Vec::with_capacity(conns.len() * cfg.requests);
    loop {
        let mut live = false;
        // Top up every connection's pipeline, then flush once per conn.
        for conn in &mut conns {
            while conn.issued < cfg.requests && conn.inflight.len() < cfg.pipeline {
                let idx = conn.conn_id * cfg.requests + conn.issued;
                let (request, gpu, learn) =
                    select_request(idx, cfg.seed, cfg.read_frac, cfg.workload);
                conn.client.send(&request)?;
                conn.inflight.push_back(InFlight {
                    sent_at: Instant::now(),
                    gpu,
                    learn,
                });
                conn.issued += 1;
            }
            if !conn.inflight.is_empty() {
                conn.client.flush()?;
                live = true;
            }
        }
        if !live {
            return Ok((failed, latencies));
        }
        // Harvest one response per connection with work in flight; the
        // blocking recv on one connection keeps its neighbours' pipelines
        // cooking on the server meanwhile.
        for conn in &mut conns {
            let Some(sent) = conn.inflight.pop_front() else {
                continue;
            };
            let response = conn.client.recv()?;
            latencies.push(sent.sent_at.elapsed());
            if !response.ok {
                failed += 1;
                continue;
            }
            if cfg.feedback && sent.learn {
                if let Some(select) = &response.select {
                    let reply = conn.client.roundtrip(&Request::Feedback {
                        gpu: sent.gpu.name().to_string(),
                        cluster: select.cluster,
                        best: select.amortized_format.clone(),
                    })?;
                    if !reply.ok {
                        failed += 1;
                    }
                }
            }
        }
    }
}

/// What one drive phase measured.
struct DriveResult {
    failed: usize,
    /// Sorted client-observed latencies, one per completed request.
    latencies: Vec<Duration>,
    wall: Duration,
    total: usize,
}

/// Drive the full workload over one protocol: `cfg.connections`
/// persistent connections partitioned over (at most) `cfg.clients`
/// threads.
fn drive(addr: &str, protocol: Protocol, cfg: DriveConfig) -> DriveResult {
    let threads = cfg.clients.min(cfg.connections).max(1);
    eprintln!(
        "driving {} connections x {} requests (pipeline {}) over {threads} threads, \
         {} protocol, against {addr}...",
        cfg.connections,
        cfg.requests,
        cfg.pipeline,
        protocol.name(),
    );
    let wall = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            // Partition connections evenly; the first `rem` threads take
            // one extra.
            let per = cfg.connections / threads;
            let rem = cfg.connections % threads;
            let start = t * per + t.min(rem);
            let end = start + per + usize::from(t < rem);
            let addr = addr.to_string();
            std::thread::spawn(move || client_thread(&addr, protocol, start..end, cfg))
        })
        .collect();
    let mut failed = 0usize;
    let mut disconnected = 0usize;
    let mut latencies: Vec<Duration> = Vec::with_capacity(cfg.connections * cfg.requests);
    for h in handles {
        match h.join().expect("client thread joins") {
            Ok((f, l)) => {
                failed += f;
                latencies.extend(l);
            }
            Err(e) => {
                eprintln!("client error: {e}");
                disconnected += 1;
            }
        }
    }
    let wall = wall.elapsed();
    // A dropped thread fails the whole quota of its connections.
    let per_thread = cfg.connections.div_ceil(threads);
    failed += disconnected * per_thread * cfg.requests;
    latencies.sort();
    DriveResult {
        failed,
        latencies,
        wall,
        total: cfg.connections * cfg.requests,
    }
}

/// The `BENCH_serve.json` schema: one flat record per (run, protocol),
/// comparable across revisions. `serving` carries the daemon's own
/// counters (including the online-contention ones) when they were
/// collectable — cumulative since daemon start, so under
/// `--protocol both` the second record includes the first phase's
/// traffic.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchRecord {
    bench: String,
    protocol: String,
    workload: String,
    clients: usize,
    connections: usize,
    pipeline: usize,
    requests_per_connection: usize,
    total_requests: usize,
    failed: usize,
    read_frac: f64,
    feedback: bool,
    threads: usize,
    wall_seconds: f64,
    throughput_rps: f64,
    client_p50_ms: f64,
    client_p99_ms: f64,
    client_max_ms: f64,
    serving: Option<spsel_core::telemetry::ServingReport>,
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run(args: &[String]) -> Result<usize, ServeError> {
    let mut clients = 32usize;
    let mut connections = 0usize; // 0: one per client thread
    let mut pipeline = 1usize;
    let mut requests = 20usize;
    let mut protocol_arg = "json".to_string();
    let mut model_path: Option<String> = None;
    let mut external: Option<String> = None;
    let mut seed = 42u64;
    let mut feedback = false;
    let mut json = None;
    let mut read_frac = 0.0f64;
    let mut bench_json: Option<String> = None;
    let mut workload: Option<Workload> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--clients" => {
                clients = value(args, i, "--clients")?;
                i += 1;
            }
            "--connections" => {
                connections = value(args, i, "--connections")?;
                i += 1;
            }
            "--pipeline" => {
                pipeline = value(args, i, "--pipeline")?;
                i += 1;
            }
            "--requests" => {
                requests = value(args, i, "--requests")?;
                i += 1;
            }
            "--protocol" => {
                protocol_arg = value(args, i, "--protocol")?;
                i += 1;
            }
            "--model" => {
                model_path = Some(value(args, i, "--model")?);
                i += 1;
            }
            "--addr" => {
                external = Some(value(args, i, "--addr")?);
                i += 1;
            }
            "--seed" => {
                seed = value(args, i, "--seed")?;
                i += 1;
            }
            "--json" => {
                json = Some(value::<String>(args, i, "--json")?);
                i += 1;
            }
            "--read-frac" => {
                read_frac = value(args, i, "--read-frac")?;
                i += 1;
            }
            "--bench-json" => {
                bench_json = Some(value::<String>(args, i, "--bench-json")?);
                i += 1;
            }
            "--workload" => {
                let name = value::<String>(args, i, "--workload")?;
                workload = Some(Workload::parse(&name).map_err(|e| {
                    ServeError::from(CoreError::invalid_argument(format!("--workload: {e}")))
                })?);
                i += 1;
            }
            "--feedback" => feedback = true,
            other => {
                return Err(
                    CoreError::invalid_argument(format!("unknown argument `{other}`")).into(),
                )
            }
        }
        i += 1;
    }
    let protocols: Vec<Protocol> = match protocol_arg.as_str() {
        "json" => vec![Protocol::Json],
        "binary" => vec![Protocol::Binary],
        "both" => vec![Protocol::Json, Protocol::Binary],
        other => {
            return Err(CoreError::invalid_argument(format!(
                "--protocol must be json, binary, or both (got `{other}`)"
            ))
            .into())
        }
    };
    if feedback && pipeline > 1 {
        return Err(CoreError::invalid_argument(
            "--feedback needs the request/response lockstep of --pipeline 1",
        )
        .into());
    }
    let cfg = DriveConfig {
        clients,
        connections: if connections == 0 {
            clients
        } else {
            connections
        },
        requests,
        pipeline: pipeline.max(1),
        seed,
        feedback,
        read_frac,
        workload,
    };

    // Either target an external daemon or start one in-process.
    let (addr, server_thread) = match external {
        Some(addr) => (addr, None),
        None => {
            let model = match model_path {
                Some(path) => artifact::load(&path)?,
                None => {
                    eprintln!("training a quick model for the in-process daemon...");
                    let cache = Cache::disabled();
                    let mut report = RunReport::new("loadgen-train");
                    let ctx = ExperimentContext::build(
                        CorpusConfig::small(40, seed),
                        &cache,
                        &mut report,
                    );
                    artifact::train(&ctx, &TrainConfig::default())?
                }
            };
            let engine = Arc::new(Engine::from_artifact(&model, &EngineOptions::default())?);
            let server =
                Server::bind(engine, ServeOptions::default()).map_err(|e| ServeError::Io {
                    path: "listener".into(),
                    message: e.to_string(),
                })?;
            let addr = server
                .local_addr()
                .map_err(|e| ServeError::Io {
                    path: "listener".into(),
                    message: e.to_string(),
                })?
                .to_string();
            eprintln!("in-process daemon listening on {addr}");
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    // Drive each requested protocol over the same daemon, snapshotting
    // the server counters after each phase.
    let mut failed = 0usize;
    let mut records: Vec<BenchRecord> = Vec::with_capacity(protocols.len());
    let mut last_serving = None;
    for protocol in protocols {
        let result = drive(&addr, protocol, cfg);
        failed += result.failed;
        let serving = Client::connect(addr.as_str())
            .ok()
            .and_then(|mut control| control.roundtrip(&Request::Stats).ok())
            .and_then(|r| r.stats)
            .map(|s| s.serving);
        let throughput = if result.wall.as_secs_f64() > 0.0 {
            result.latencies.len() as f64 / result.wall.as_secs_f64()
        } else {
            0.0
        };
        println!(
            "loadgen[{}]: {} connections x {} requests = {} total, {} ok, {} failed",
            protocol.name(),
            cfg.connections,
            cfg.requests,
            result.total,
            result.total - result.failed,
            result.failed,
        );
        println!(
            "wall {:.2}s, {throughput:.0} req/s; client-observed p50 {:.2}ms p99 {:.2}ms max {:.2}ms",
            result.wall.as_secs_f64(),
            quantile(&result.latencies, 0.50).as_secs_f64() * 1e3,
            quantile(&result.latencies, 0.99).as_secs_f64() * 1e3,
            result
                .latencies
                .last()
                .copied()
                .unwrap_or(Duration::ZERO)
                .as_secs_f64()
                * 1e3,
        );
        records.push(BenchRecord {
            bench: "serve".into(),
            protocol: protocol.name().into(),
            workload: cfg
                .workload
                .map_or_else(|| "spmv".to_string(), |w| w.name()),
            clients: cfg.clients,
            connections: cfg.connections,
            pipeline: cfg.pipeline,
            requests_per_connection: cfg.requests,
            total_requests: result.total,
            failed: result.failed,
            read_frac,
            feedback,
            threads: rayon::current_num_threads(),
            wall_seconds: result.wall.as_secs_f64(),
            throughput_rps: throughput,
            client_p50_ms: quantile(&result.latencies, 0.50).as_secs_f64() * 1e3,
            client_p99_ms: quantile(&result.latencies, 0.99).as_secs_f64() * 1e3,
            client_max_ms: result
                .latencies
                .last()
                .copied()
                .unwrap_or(Duration::ZERO)
                .as_secs_f64()
                * 1e3,
            serving,
        });
        last_serving = serving;
    }

    // Stop the in-process daemon and prefer its final counters; an
    // external daemon is left running with its stats snapshot.
    let serving = if let Some(handle) = server_thread {
        let mut control = Client::connect(addr.as_str()).map_err(|e| ServeError::Io {
            path: addr.clone(),
            message: e.to_string(),
        })?;
        let _ = control.roundtrip(&Request::Shutdown);
        Some(handle.join().expect("server thread joins"))
    } else {
        last_serving
    };

    if let Some(serving) = serving {
        println!(
            "server counters: {} requests ({} select, {} feedback, {} binary), {} errors \
             ({} shed), {} new clusters, p50 {:.0}us p99 {:.0}us, peak {} connections",
            serving.requests,
            serving.select_requests,
            serving.feedback_requests,
            serving.binary_requests,
            serving.errors,
            serving.shed,
            serving.new_clusters,
            serving.p50_latency_us,
            serving.p99_latency_us,
            serving.peak_connections,
        );
        println!(
            "contention: {} read / {} write decisions, {} write-lock acquisitions \
             ({} us waited), {} snapshot swaps",
            serving.read_decisions,
            serving.write_decisions,
            serving.write_lock_acquisitions,
            serving.write_lock_wait_us,
            serving.snapshot_swaps,
        );
        if let Some(path) = json {
            let mut report = RunReport::new("loadgen");
            report.serving = Some(serving);
            let payload = serde_json::to_string_pretty(&report).expect("report serializes");
            std::fs::write(&path, payload).map_err(|e| ServeError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
        }
    }
    if let Some(path) = bench_json {
        // Flat, machine-readable benchmark records: one per protocol
        // driven. A single protocol writes one object (the historical
        // shape); `both` writes a two-element array.
        let payload = if records.len() == 1 {
            serde_json::to_string_pretty(&records[0]).expect("record serializes")
        } else {
            serde_json::to_string_pretty(&records).expect("records serialize")
        };
        std::fs::write(&path, payload).map_err(|e| ServeError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
    }
    Ok(failed)
}
