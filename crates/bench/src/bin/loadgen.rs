//! `loadgen`: concurrent load generator for `spsel-serve`.
//!
//! ```sh
//! loadgen [--clients N] [--requests M] [--model MODEL.spsel]
//!         [--addr HOST:PORT] [--seed S] [--feedback] [--json REPORT]
//!         [--read-frac F] [--bench-json BENCH.json]
//! ```
//!
//! By default it trains a quick model, starts an in-process daemon on an
//! ephemeral port, and drives `N` concurrent clients (default 32) each
//! issuing `M` selection requests (default 20) over distinct synthetic
//! matrices, then shuts the daemon down and prints both client-observed
//! latency and the server's own counters. With `--addr` it targets an
//! already-running daemon instead (and does not shut it down). The exit
//! code is nonzero if any request fails — CI uses this as the serving
//! soak test.
//!
//! `--read-frac F` sends that (deterministically assigned) fraction of
//! selects as `learn: false` probes, which the engine answers lock-free
//! from its online snapshot — the contention counters in the stats reply
//! prove it. `--bench-json` writes a flat machine-readable benchmark
//! record (throughput, p50/p99, contention counters, thread count) so
//! runs are comparable across revisions.

use spsel_core::cache::Cache;
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_core::CoreError;
use spsel_features::{FeatureVector, MatrixStats};
use spsel_gpusim::Gpu;
use spsel_matrix::{gen, CsrMatrix};
use spsel_serve::artifact::{self, TrainConfig};
use spsel_serve::{Client, Engine, EngineOptions, Request, ServeError, ServeOptions, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => {}
        Ok(failed) => {
            eprintln!("loadgen: {failed} requests failed");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!(
                "loadgen: {}",
                serde_json::to_string(&e.envelope()).expect("envelope serializes")
            );
            std::process::exit(1);
        }
    }
}

fn value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, ServeError> {
    args.get(i + 1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CoreError::invalid_argument(format!("{flag} needs a value")).into())
}

/// Deterministic read/write split: request `idx` (global order) is a
/// `learn: false` probe when its per-mille slot falls under `read_frac`.
/// No RNG, so the same flags always produce the same request mix.
fn is_read(idx: usize, read_frac: f64) -> bool {
    (idx % 1000) < (read_frac.clamp(0.0, 1.0) * 1000.0).round() as usize
}

/// One client's work: `requests` selections (plus a feedback round-trip
/// per learning select when `feedback` is on), all over distinct
/// matrices.
fn client_loop(
    addr: &str,
    client_id: usize,
    requests: usize,
    seed: u64,
    feedback: bool,
    read_frac: f64,
) -> std::io::Result<(usize, Vec<Duration>)> {
    let mut client = Client::connect(addr)?;
    let gpus = [Gpu::Pascal, Gpu::Volta, Gpu::Turing];
    let mut failed = 0usize;
    let mut latencies = Vec::with_capacity(requests);
    for r in 0..requests {
        let idx = client_id * requests + r;
        let matrix_seed = seed ^ (idx as u64);
        let csr = CsrMatrix::from(&gen::power_law(
            120 + (matrix_seed % 80) as usize,
            120,
            2,
            2.2 + (matrix_seed % 5) as f64 * 0.1,
            60,
            matrix_seed,
        ));
        let features = FeatureVector::from_stats(&MatrixStats::from_csr(&csr))
            .as_slice()
            .to_vec();
        let gpu = gpus[(client_id + r) % gpus.len()];
        let learn = !is_read(idx, read_frac);
        let request = Request::Select {
            matrix: None,
            features: Some(features),
            gpu: gpu.name().to_string(),
            iterations: Some(500),
            deadline_ms: None,
            learn: Some(learn),
        };
        let start = Instant::now();
        let response = client.roundtrip(&request)?;
        latencies.push(start.elapsed());
        if !response.ok {
            failed += 1;
            continue;
        }
        if feedback && learn {
            if let Some(select) = &response.select {
                let reply = client.roundtrip(&Request::Feedback {
                    gpu: gpu.name().to_string(),
                    cluster: select.cluster,
                    best: select.amortized_format.clone(),
                })?;
                if !reply.ok {
                    failed += 1;
                }
            }
        }
    }
    Ok((failed, latencies))
}

/// The `BENCH_serve.json` schema: one flat record per run, comparable
/// across revisions. `serving` carries the daemon's own counters
/// (including the online-contention ones) when they were collectable.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchRecord {
    bench: String,
    clients: usize,
    requests_per_client: usize,
    total_requests: usize,
    failed: usize,
    read_frac: f64,
    feedback: bool,
    threads: usize,
    wall_seconds: f64,
    throughput_rps: f64,
    client_p50_ms: f64,
    client_p99_ms: f64,
    client_max_ms: f64,
    serving: Option<spsel_core::telemetry::ServingReport>,
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run(args: &[String]) -> Result<usize, ServeError> {
    let mut clients = 32usize;
    let mut requests = 20usize;
    let mut model_path: Option<String> = None;
    let mut external: Option<String> = None;
    let mut seed = 42u64;
    let mut feedback = false;
    let mut json = None;
    let mut read_frac = 0.0f64;
    let mut bench_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--clients" => {
                clients = value(args, i, "--clients")?;
                i += 1;
            }
            "--requests" => {
                requests = value(args, i, "--requests")?;
                i += 1;
            }
            "--model" => {
                model_path = Some(value(args, i, "--model")?);
                i += 1;
            }
            "--addr" => {
                external = Some(value(args, i, "--addr")?);
                i += 1;
            }
            "--seed" => {
                seed = value(args, i, "--seed")?;
                i += 1;
            }
            "--json" => {
                json = Some(value::<String>(args, i, "--json")?);
                i += 1;
            }
            "--read-frac" => {
                read_frac = value(args, i, "--read-frac")?;
                i += 1;
            }
            "--bench-json" => {
                bench_json = Some(value::<String>(args, i, "--bench-json")?);
                i += 1;
            }
            "--feedback" => feedback = true,
            other => {
                return Err(
                    CoreError::invalid_argument(format!("unknown argument `{other}`")).into(),
                )
            }
        }
        i += 1;
    }

    // Either target an external daemon or start one in-process.
    let (addr, server_thread) = match external {
        Some(addr) => (addr, None),
        None => {
            let model = match model_path {
                Some(path) => artifact::load(&path)?,
                None => {
                    eprintln!("training a quick model for the in-process daemon...");
                    let cache = Cache::disabled();
                    let mut report = RunReport::new("loadgen-train");
                    let ctx = ExperimentContext::build(
                        CorpusConfig::small(40, seed),
                        &cache,
                        &mut report,
                    );
                    artifact::train(&ctx, &TrainConfig::default())?
                }
            };
            let engine = Arc::new(Engine::from_artifact(&model, &EngineOptions::default())?);
            let server =
                Server::bind(engine, ServeOptions::default()).map_err(|e| ServeError::Io {
                    path: "listener".into(),
                    message: e.to_string(),
                })?;
            let addr = server
                .local_addr()
                .map_err(|e| ServeError::Io {
                    path: "listener".into(),
                    message: e.to_string(),
                })?
                .to_string();
            eprintln!("in-process daemon listening on {addr}");
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    eprintln!("driving {clients} clients x {requests} requests against {addr}...");
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || client_loop(&addr, c, requests, seed, feedback, read_frac))
        })
        .collect();
    let mut failed = 0usize;
    let mut disconnected = 0usize;
    let mut latencies: Vec<Duration> = Vec::with_capacity(clients * requests);
    for h in handles {
        match h.join().expect("client thread joins") {
            Ok((f, l)) => {
                failed += f;
                latencies.extend(l);
            }
            Err(e) => {
                eprintln!("client error: {e}");
                disconnected += 1;
            }
        }
    }
    let wall = wall.elapsed();
    failed += disconnected * requests; // a dropped client fails its whole quota

    // Stop the in-process daemon and collect its counters; an external
    // daemon is left running and its counters come from a Stats request.
    let serving = if let Some(handle) = server_thread {
        let mut control = Client::connect(addr.as_str()).map_err(|e| ServeError::Io {
            path: addr.clone(),
            message: e.to_string(),
        })?;
        let _ = control.roundtrip(&Request::Shutdown);
        Some(handle.join().expect("server thread joins"))
    } else {
        Client::connect(addr.as_str())
            .ok()
            .and_then(|mut control| control.roundtrip(&Request::Stats).ok())
            .and_then(|r| r.stats)
            .map(|s| s.serving)
    };

    latencies.sort();
    let total = clients * requests;
    let throughput = if wall.as_secs_f64() > 0.0 {
        latencies.len() as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    println!(
        "loadgen: {clients} clients x {requests} requests = {total} total, {} ok, {failed} failed",
        total - failed
    );
    println!(
        "wall {:.2}s, {throughput:.0} req/s; client-observed p50 {:.2}ms p99 {:.2}ms max {:.2}ms",
        wall.as_secs_f64(),
        quantile(&latencies, 0.50).as_secs_f64() * 1e3,
        quantile(&latencies, 0.99).as_secs_f64() * 1e3,
        latencies
            .last()
            .copied()
            .unwrap_or(Duration::ZERO)
            .as_secs_f64()
            * 1e3,
    );
    if let Some(serving) = serving {
        println!(
            "server counters: {} requests ({} select, {} feedback), {} errors, {} new clusters, \
             p50 {:.0}us p99 {:.0}us",
            serving.requests,
            serving.select_requests,
            serving.feedback_requests,
            serving.errors,
            serving.new_clusters,
            serving.p50_latency_us,
            serving.p99_latency_us,
        );
        println!(
            "contention: {} read / {} write decisions, {} write-lock acquisitions \
             ({} us waited), {} snapshot swaps",
            serving.read_decisions,
            serving.write_decisions,
            serving.write_lock_acquisitions,
            serving.write_lock_wait_us,
            serving.snapshot_swaps,
        );
        if let Some(path) = json {
            let mut report = RunReport::new("loadgen");
            report.record("wall", wall.as_secs_f64());
            report.serving = Some(serving);
            let payload = serde_json::to_string_pretty(&report).expect("report serializes");
            std::fs::write(&path, payload).map_err(|e| ServeError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
        }
    }
    if let Some(path) = bench_json {
        // Flat, machine-readable benchmark record: one file per run, so
        // numbers stay comparable across revisions.
        let record = BenchRecord {
            bench: "serve".into(),
            clients,
            requests_per_client: requests,
            total_requests: total,
            failed,
            read_frac,
            feedback,
            threads: rayon::current_num_threads(),
            wall_seconds: wall.as_secs_f64(),
            throughput_rps: throughput,
            client_p50_ms: quantile(&latencies, 0.50).as_secs_f64() * 1e3,
            client_p99_ms: quantile(&latencies, 0.99).as_secs_f64() * 1e3,
            client_max_ms: latencies
                .last()
                .copied()
                .unwrap_or(Duration::ZERO)
                .as_secs_f64()
                * 1e3,
            serving,
        };
        let payload = serde_json::to_string_pretty(&record).expect("record serializes");
        std::fs::write(&path, payload).map_err(|e| ServeError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
    }
    Ok(failed)
}
