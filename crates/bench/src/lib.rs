//! Benchmark harness: table-regeneration binaries and Criterion benches.
//!
//! Each `table*` binary rebuilds the corpus, runs the corresponding
//! experiment from `spsel-core::experiments`, prints the table in the
//! paper's layout, and writes the raw result as JSON next to the text so
//! EXPERIMENTS.md numbers are auditable.

use spsel_core::corpus::{Corpus, CorpusConfig};
use spsel_core::experiments::ExperimentContext;

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Corpus configuration.
    pub corpus: CorpusConfig,
    /// Reduced model sizes / fold counts for smoke runs.
    pub quick: bool,
    /// Where to write the JSON result (None = skip).
    pub json_out: Option<String>,
    /// Corpus cache path (`--cache`): load the corpus from here if the
    /// file exists, otherwise build it and save it here.
    pub cache: Option<String>,
}

impl HarnessOptions {
    /// Parse from `std::env::args`:
    ///
    /// * `--quick` — small corpus and reduced models (smoke test);
    /// * `--base N` — number of base matrices (default 1929);
    /// * `--augment N` — permuted copies per base (default 1);
    /// * `--seed S` — corpus seed;
    /// * `--images` — rasterize density images (needed for the CNN);
    /// * `--json PATH` — dump the result struct as JSON;
    /// * `--cache PATH` — reuse a corpus built by an earlier run.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut quick = false;
        let mut n_base = 1929usize;
        let mut augment = 1usize;
        let mut seed = 0xC0FFEEu64;
        let mut images = false;
        let mut json_out = None;
        let mut cache = None;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => quick = true,
                "--images" => images = true,
                "--base" => {
                    i += 1;
                    n_base = args[i].parse().expect("--base takes a number");
                }
                "--augment" => {
                    i += 1;
                    augment = args[i].parse().expect("--augment takes a number");
                }
                "--seed" => {
                    i += 1;
                    seed = args[i].parse().expect("--seed takes a number");
                }
                "--json" => {
                    i += 1;
                    json_out = Some(args[i].clone());
                }
                "--cache" => {
                    i += 1;
                    cache = Some(args[i].clone());
                }
                other => panic!("unknown argument `{other}`"),
            }
            i += 1;
        }
        let mut corpus = if quick {
            CorpusConfig::small(120, seed)
        } else {
            CorpusConfig {
                n_base,
                augment_copies: augment,
                seed,
                with_images: false,
                image_resolution: 32,
                size_scale: 1.0,
            }
        };
        if images {
            corpus.with_images = true;
        }
        HarnessOptions {
            corpus,
            quick,
            json_out,
            cache,
        }
    }

    /// Build the experiment context, honoring the corpus cache. The cache
    /// stores only the corpus; benchmarks are recomputed (they are fast
    /// and deterministic).
    pub fn context(&self) -> ExperimentContext {
        if let Some(path) = &self.cache {
            if let Ok(bytes) = std::fs::read(path) {
                if let Ok(corpus) = serde_json::from_slice::<Corpus>(&bytes) {
                    if corpus.config() == &self.corpus {
                        eprintln!("loaded corpus from {path}");
                        let benches = spsel_gpusim::Gpu::ALL
                            .iter()
                            .map(|&g| corpus.benchmark(g))
                            .collect();
                        return ExperimentContext { corpus, benches };
                    }
                    eprintln!("cache config mismatch; rebuilding corpus");
                }
            }
            eprintln!("building corpus ({} base matrices)...", self.corpus.n_base);
            let ctx = ExperimentContext::new(self.corpus.clone());
            let json = serde_json::to_vec(&ctx.corpus).expect("corpus serializes");
            std::fs::write(path, json).expect("writable cache path");
            eprintln!("saved corpus to {path}");
            ctx
        } else {
            eprintln!("building corpus ({} base matrices)...", self.corpus.n_base);
            ExperimentContext::new(self.corpus.clone())
        }
    }

    /// Write a serializable result as JSON if `--json` was given.
    pub fn write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json_out {
            let json = serde_json::to_string_pretty(value).expect("serializable result");
            std::fs::write(path, json).expect("writable json path");
            eprintln!("wrote {path}");
        }
    }
}
