//! Benchmark harness: table-regeneration binaries and Criterion benches.
//!
//! Each `table*` binary builds (or loads from the persistent cache) the
//! corpus + benchmark context, runs the corresponding experiment from
//! `spsel-core::experiments`, prints the table in the paper's layout, and
//! writes the raw result as JSON next to the text so EXPERIMENTS.md
//! numbers are auditable. Every invocation also emits a JSON *run report*
//! (phase timings + cache hit/miss counters) next to the table's output —
//! see `spsel-core::telemetry`.

use spsel_core::cache::{Cache, GcConfig, DEFAULT_CACHE_DIR};
use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_gpusim::{FaultConfig, TrialPolicy};

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Corpus configuration.
    pub corpus: CorpusConfig,
    /// Reduced model sizes / fold counts for smoke runs.
    pub quick: bool,
    /// Where to write the JSON result (None = skip).
    pub json_out: Option<String>,
    /// Cache directory (None = caching disabled for this run).
    pub cache_dir: Option<String>,
    /// Name of the running binary (labels the run report).
    pub bin_name: String,
    /// Fault-injection configuration (off unless `--faults`/`SPSEL_FAULTS`).
    pub faults: FaultConfig,
    /// Trial policy for the fault-tolerant measurement path.
    pub policy: TrialPolicy,
    /// Run a cache garbage collection before the experiment.
    pub cache_gc: bool,
    /// Format-registry choice (`--registry cusp|extended|full`); consumed
    /// by the binaries that label against a registry, ignored elsewhere.
    pub registry: Option<String>,
}

/// A [`HarnessOptions`] bundled with the live run report and cache handle
/// produced by [`HarnessOptions::open`].
pub struct Harness {
    /// Parsed options.
    pub opts: HarnessOptions,
    /// The run's instrumentation record.
    pub report: RunReport,
    cache: Cache,
}

impl HarnessOptions {
    /// Parse from `std::env::args`:
    ///
    /// * `--quick` — small corpus and reduced models (smoke test);
    /// * `--base N` — number of base matrices (default 1929, or 120
    ///   under `--quick`; composes with `--quick` so overlapping-base
    ///   cache runs can stay quick-sized);
    /// * `--augment N` — permuted copies per base (default 1);
    /// * `--seed S` — corpus seed;
    /// * `--images` — rasterize density images (needed for the CNN);
    /// * `--json PATH` — dump the result struct as JSON;
    /// * `--cache DIR` — cache directory (default `results/cache`);
    /// * `--no-cache` — disable the persistent cache for this run
    ///   (equivalent to `SPSEL_NO_CACHE=1`);
    /// * `--faults R` — enable deterministic fault injection at rate `R`
    ///   (equivalent to `SPSEL_FAULTS=R`; `0` disables);
    /// * `--fault-seed S` — fault-injection seed (`SPSEL_FAULT_SEED`);
    /// * `--trials N` — trials per benchmark cell under fault injection;
    /// * `--cache-gc` — garbage-collect the cache directory before running.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let bin_name = args
            .first()
            .map(|a| {
                std::path::Path::new(a)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("run")
                    .to_string()
            })
            .unwrap_or_else(|| "run".to_string());
        let mut quick = false;
        let mut n_base: Option<usize> = None;
        let mut augment = 1usize;
        let mut seed = 0xC0FFEEu64;
        let mut images = false;
        let mut json_out = None;
        let mut cache_dir = Some(DEFAULT_CACHE_DIR.to_string());
        // Environment first (SPSEL_FAULTS / SPSEL_FAULT_SEED); flags override.
        let mut faults = FaultConfig::from_env();
        let mut policy = TrialPolicy::default();
        let mut cache_gc = false;
        let mut registry = None;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => quick = true,
                "--images" => images = true,
                "--no-cache" => cache_dir = None,
                "--cache-gc" => cache_gc = true,
                "--faults" => {
                    i += 1;
                    let rate: f64 = args[i].parse().expect("--faults takes a rate in [0, 1]");
                    faults = if rate > 0.0 {
                        FaultConfig::uniform(rate.min(1.0), faults.seed)
                    } else {
                        FaultConfig::off()
                    };
                }
                "--fault-seed" => {
                    i += 1;
                    faults.seed = args[i].parse().expect("--fault-seed takes a number");
                }
                "--trials" => {
                    i += 1;
                    policy.trials = args[i].parse().expect("--trials takes a number");
                }
                "--base" => {
                    i += 1;
                    n_base = Some(args[i].parse().expect("--base takes a number"));
                }
                "--augment" => {
                    i += 1;
                    augment = args[i].parse().expect("--augment takes a number");
                }
                "--seed" => {
                    i += 1;
                    seed = args[i].parse().expect("--seed takes a number");
                }
                "--json" => {
                    i += 1;
                    json_out = Some(args[i].clone());
                }
                "--cache" => {
                    i += 1;
                    cache_dir = Some(args[i].clone());
                }
                "--registry" => {
                    i += 1;
                    registry = Some(args[i].clone());
                }
                other => panic!("unknown argument `{other}`"),
            }
            i += 1;
        }
        let mut corpus = if quick {
            CorpusConfig::small(n_base.unwrap_or(120), seed)
        } else {
            CorpusConfig {
                n_base: n_base.unwrap_or(1929),
                augment_copies: augment,
                seed,
                with_images: false,
                image_resolution: 32,
                size_scale: 1.0,
            }
        };
        if images {
            corpus.with_images = true;
        }
        HarnessOptions {
            corpus,
            quick,
            json_out,
            cache_dir,
            bin_name,
            faults,
            policy,
            cache_gc,
            registry,
        }
    }

    /// Parse options and open the harness (cache handle + run report).
    /// Runs cache garbage collection first when `--cache-gc` was given.
    pub fn open() -> Harness {
        let opts = Self::from_args();
        let cache = match &opts.cache_dir {
            Some(dir) => Cache::from_env(dir).with_faults(opts.faults),
            None => Cache::disabled(),
        };
        if opts.cache_gc {
            let gc = cache.gc(&GcConfig::default());
            eprintln!(
                "cache gc: scanned {}, kept {} ({} bytes), evicted {} ({} bytes)",
                gc.scanned, gc.kept, gc.bytes_kept, gc.evicted, gc.bytes_evicted
            );
        }
        let report = RunReport::new(opts.bin_name.clone());
        Harness {
            opts,
            report,
            cache,
        }
    }
}

impl Harness {
    /// Build the experiment context through the persistent cache: a warm
    /// run loads the corpus and all three GPUs' benchmark results from
    /// disk; a cold run computes them (corpus generation record-parallel,
    /// the three GPU benchmarks concurrently) and stores them back.
    pub fn context(&mut self) -> ExperimentContext {
        match self.cache.dir() {
            Some(dir) => eprintln!(
                "corpus: {} base matrices (cache: {})",
                self.opts.corpus.n_base,
                dir.display()
            ),
            None => eprintln!(
                "corpus: {} base matrices (cache disabled)",
                self.opts.corpus.n_base
            ),
        }
        if self.opts.faults.enabled() {
            eprintln!(
                "fault injection: on (seed {}, transient {:.3})",
                self.opts.faults.seed, self.opts.faults.rates.transient
            );
        }
        ExperimentContext::build_with_faults(
            self.opts.corpus.clone(),
            &self.cache,
            &mut self.report,
            &self.opts.faults,
            &self.opts.policy,
        )
    }

    /// Time `f` as a named phase of the run report.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        self.report.time(name, f)
    }

    /// Run the experiment phase through the per-table result cache.
    ///
    /// The key covers the experiment code version, the table name, a
    /// digest of the full experiment context (corpus config + every
    /// benchmark measurement, bit-for-bit) and the experiment parameters,
    /// so a warm rerun with identical inputs loads the finished table
    /// from disk and skips training/CV entirely. Falls back to computing
    /// (and storing the result) on a miss. Bypassed — straight to `f` —
    /// when caching is disabled or fault injection is active: degraded
    /// results must not be served to later clean runs. The phase in the
    /// run report is named after `table`, hit or miss.
    pub fn cached_experiment<T, P>(
        &mut self,
        table: &str,
        ctx: &ExperimentContext,
        params: &P,
        f: impl FnOnce() -> T,
    ) -> T
    where
        T: serde::Serialize + serde::Deserialize,
        P: serde::Serialize,
    {
        if !self.cache.enabled() || self.opts.faults.enabled() {
            return self.report.time(table, f);
        }
        let digest = ctx.digest();
        let start = std::time::Instant::now();
        if let Some(cached) = self.cache.load_experiment::<T, P>(table, digest, params) {
            self.report.record(table, start.elapsed().as_secs_f64());
            eprintln!("experiment cache: warm hit for {table} — skipping training");
            return cached;
        }
        let out = self.report.time(table, f);
        self.cache.store_experiment(table, digest, params, &out);
        out
    }

    /// Write a serializable result as JSON if `--json` was given.
    pub fn write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.opts.json_out {
            let json = serde_json::to_string_pretty(value).expect("serializable result");
            std::fs::write(path, json).expect("writable json path");
            eprintln!("wrote {path}");
        }
    }

    /// Finish the run: write the result JSON (if requested) and the run
    /// report — next to the result when `--json` was given, otherwise
    /// under `results/`.
    pub fn finish<T: serde::Serialize>(mut self, value: &T) {
        self.write_json(value);
        self.report.cache = self.cache.report();
        if self.report.degradation.any() {
            eprintln!("{}", self.report.degradation.summary());
        }
        let path = match &self.opts.json_out {
            Some(json) => format!("{json}.report.json"),
            None => format!("results/{}-report.json", self.opts.bin_name),
        };
        let report_json = serde_json::to_string_pretty(&self.report).expect("report serializes");
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, report_json) {
            Ok(()) => eprintln!(
                "run report: {path} ({:.2}s total, cache {} hits / {} misses)",
                self.report.total_seconds(),
                self.report.cache.hits,
                self.report.cache.misses
            ),
            Err(e) => eprintln!("run report: cannot write {path}: {e}"),
        }
    }
}
