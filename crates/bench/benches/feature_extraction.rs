//! Criterion benches for Table 1 feature extraction: the paper requires
//! features computable in O(nnz), and the corpus pipeline extracts them
//! for every matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spsel_features::{DensityImage, FeatureVector, MatrixStats};
use spsel_matrix::{gen, CsrMatrix, SpMv};

fn bench_features(c: &mut Criterion) {
    let sizes = [5_000usize, 20_000, 80_000];
    let mut group = c.benchmark_group("features/extract");
    for &n in &sizes {
        let csr = CsrMatrix::from(&gen::power_law(n, n, 2, 2.2, 1_000, 7));
        group.throughput(Throughput::Elements(csr.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("stats", n), &csr, |b, m| {
            b.iter(|| MatrixStats::from_csr(m))
        });
        group.bench_with_input(BenchmarkId::new("full_vector", n), &csr, |b, m| {
            b.iter(|| FeatureVector::from_csr(m))
        });
        group.bench_with_input(BenchmarkId::new("density_image_32", n), &csr, |b, m| {
            b.iter(|| DensityImage::from_csr(m, 32))
        });
    }
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    // Fit the transform/scale/PCA pipeline on a batch of feature vectors.
    let features: Vec<FeatureVector> = (0..200u64)
        .map(|s| {
            FeatureVector::from_csr(&CsrMatrix::from(&gen::random_uniform(
                1_000 + (s as usize * 37) % 3_000,
                2_000,
                8,
                s,
            )))
        })
        .collect();
    c.bench_function("features/preprocessor_fit_200", |b| {
        b.iter(|| spsel_features::Preprocessor::fit(&features))
    });
    let pre = spsel_features::Preprocessor::fit(&features);
    c.bench_function("features/embed_one", |b| b.iter(|| pre.embed(&features[0])));
}

criterion_group!(benches, bench_features, bench_preprocessing);
criterion_main!(benches);
