//! Criterion benches for the handwritten SpMV kernels: every format,
//! sequential and parallel, on structurally distinct matrices.
//!
//! These benches are the CPU-side evidence for the format-performance
//! trade-offs the paper studies: ELL wins on uniform rows, CSR on mildly
//! irregular ones, and HYB tolerates skew that would bloat ELL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spsel_matrix::{gen, CooMatrix, CsrMatrix, EllMatrix, HybMatrix, SellMatrix, SpMv};

struct Workload {
    name: &'static str,
    coo: CooMatrix,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "stencil2d_100",
            coo: gen::stencil2d(100, 1),
        },
        Workload {
            name: "uniform_20k_d16",
            coo: gen::random_uniform(20_000, 20_000, 16, 2),
        },
        Workload {
            name: "powerlaw_20k",
            coo: gen::power_law(20_000, 20_000, 2, 2.2, 2_000, 3),
        },
        Workload {
            name: "bimodal_20k",
            coo: gen::bimodal(20_000, 20_000, 4, 40, 0.2, 4),
        },
    ]
}

fn bench_spmv(c: &mut Criterion) {
    for w in workloads() {
        let csr = CsrMatrix::from(&w.coo);
        let x: Vec<f64> = (0..csr.ncols()).map(|i| (i % 17) as f64 * 0.1).collect();
        let mut y = vec![0.0; csr.nrows()];
        let nnz = csr.nnz() as u64;

        let mut group = c.benchmark_group(format!("spmv/{}", w.name));
        group.throughput(Throughput::Elements(nnz));

        group.bench_function(BenchmarkId::new("coo", "seq"), |b| {
            b.iter(|| w.coo.spmv(&x, &mut y))
        });
        group.bench_function(BenchmarkId::new("csr", "seq"), |b| {
            b.iter(|| csr.spmv(&x, &mut y))
        });
        group.bench_function(BenchmarkId::new("csr", "par"), |b| {
            b.iter(|| csr.spmv_par(&x, &mut y))
        });
        if let Ok(ell) = EllMatrix::try_from_csr(&csr) {
            group.bench_function(BenchmarkId::new("ell", "seq"), |b| {
                b.iter(|| ell.spmv(&x, &mut y))
            });
            group.bench_function(BenchmarkId::new("ell", "par"), |b| {
                b.iter(|| ell.spmv_par(&x, &mut y))
            });
        }
        let hyb = HybMatrix::from_csr(&csr);
        group.bench_function(BenchmarkId::new("hyb", "seq"), |b| {
            b.iter(|| hyb.spmv(&x, &mut y))
        });
        group.bench_function(BenchmarkId::new("hyb", "par"), |b| {
            b.iter(|| hyb.spmv_par(&x, &mut y))
        });
        // SELL-32-256: the sliced-ELL extension format.
        let sell = SellMatrix::from_csr(&csr, 32, 256);
        group.bench_function(BenchmarkId::new("sell_32_256", "seq"), |b| {
            b.iter(|| sell.spmv(&x, &mut y))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
