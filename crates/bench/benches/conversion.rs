//! Criterion benches backing the conversion-cost half of Table 8: time to
//! convert a CSR matrix into each other format, against one CSR SpMV.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spsel_matrix::{gen, CooMatrix, CsrMatrix, EllMatrix, HybMatrix, SpMv};

fn bench_conversion(c: &mut Criterion) {
    let coo = gen::random_uniform(50_000, 50_000, 16, 9);
    let csr = CsrMatrix::from(&coo);
    let x = vec![1.0; csr.ncols()];
    let mut y = vec![0.0; csr.nrows()];

    let mut group = c.benchmark_group("convert_50k_d16");
    group.sample_size(20);
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.bench_function("csr_spmv_baseline", |b| b.iter(|| csr.spmv(&x, &mut y)));
    group.bench_function("to_coo", |b| b.iter(|| CooMatrix::from(&csr)));
    group.bench_function("to_ell", |b| {
        b.iter(|| EllMatrix::try_from_csr(&csr).expect("uniform is ELL-safe"))
    });
    group.bench_function("to_hyb", |b| b.iter(|| HybMatrix::from_csr(&csr)));
    group.bench_function("from_triplets_resort", |b| {
        let triplets: Vec<(usize, usize, f64)> = coo.iter().collect();
        b.iter(|| CooMatrix::from_triplets(coo.nrows(), coo.ncols(), &triplets).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_conversion);
criterion_main!(benches);
