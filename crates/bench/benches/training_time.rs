//! Criterion benches backing Table 9: training time of each classifier on
//! a corpus-scale tabular problem. (The table binary measures wall-clock
//! once; these benches give statistically robust versions of the same
//! comparisons.)

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsel_ml::forest::{RandomForest, RandomForestParams};
use spsel_ml::gboost::{GradientBoosting, GradientBoostingParams};
use spsel_ml::knn::KnnClassifier;
use spsel_ml::logreg::LogisticRegression;
use spsel_ml::svm::LinearSvm;
use spsel_ml::tree::DecisionTree;
use spsel_ml::{Classifier, Dataset};

/// Corpus-like training set: 1000 samples, 21 features, 4 unbalanced
/// classes.
fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let class = match rng.gen_range(0..100) {
            0..=66 => 1,  // CSR-dominant imbalance
            67..=92 => 2, // ELL
            93..=97 => 3, // HYB
            _ => 0,       // COO
        };
        let row: Vec<f64> = (0..21)
            .map(|j| class as f64 * 0.7 + ((j * 13) % 7) as f64 * 0.1 + rng.gen_range(-0.5..0.5))
            .collect();
        x.push(row);
        y.push(class);
    }
    Dataset::new(x, y, 4)
}

fn bench_training(c: &mut Criterion) {
    let data = dataset(1_000, 5);
    let mut group = c.benchmark_group("train_1000x21");
    group.sample_size(10);
    group.bench_function("dt", |b| {
        b.iter(|| {
            let mut m = DecisionTree::with_defaults();
            m.fit(&data);
            m
        })
    });
    group.bench_function("rf_100", |b| {
        b.iter(|| {
            let mut m = RandomForest::new(RandomForestParams::default());
            m.fit(&data);
            m
        })
    });
    group.bench_function("svm", |b| {
        b.iter(|| {
            let mut m = LinearSvm::with_defaults();
            m.fit(&data);
            m
        })
    });
    group.bench_function("knn_fit", |b| {
        b.iter(|| {
            let mut m = KnnClassifier::new(5);
            m.fit(&data);
            m
        })
    });
    group.bench_function("logreg", |b| {
        b.iter(|| {
            let mut m = LogisticRegression::with_defaults();
            m.fit(&data);
            m
        })
    });
    group.bench_function("xgboost_25r", |b| {
        b.iter(|| {
            let mut m = GradientBoosting::new(GradientBoostingParams {
                n_rounds: 25,
                ..Default::default()
            });
            m.fit(&data);
            m
        })
    });
    group.finish();
}

/// Corpus-scale tree ensembles: the two heaviest trainers at full paper
/// configuration (100 trees / 100 boosting rounds) on a 2000x21 problem,
/// the size the augmented corpus presents per GPU.
fn bench_training_corpus_scale(c: &mut Criterion) {
    let data = dataset(2_000, 5);
    let mut group = c.benchmark_group("train_2000x21");
    group.sample_size(10);
    group.bench_function("rf_100", |b| {
        b.iter(|| {
            let mut m = RandomForest::new(RandomForestParams::default());
            m.fit(&data);
            m
        })
    });
    group.bench_function("xgboost_100r", |b| {
        b.iter(|| {
            let mut m = GradientBoosting::new(GradientBoostingParams {
                n_rounds: 100,
                ..Default::default()
            });
            m.fit(&data);
            m
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_training_corpus_scale);
criterion_main!(benches);
