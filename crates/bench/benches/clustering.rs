//! Criterion benches for the clustering substrate: K-Means / Mean-Shift /
//! Birch on embedded corpus-like point sets, plus nearest-centroid
//! assignment (the inference path of the semi-supervised selector).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsel_ml::cluster::{birch::Birch, kmeans::KMeans, meanshift::MeanShift};
use spsel_ml::ClusterAlgorithm;

/// Corpus-like point cloud: 8-dim, clumped.
fn points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let c = (i % 12) as f64 / 12.0;
            (0..8).map(|_| c + rng.gen_range(-0.08..0.08)).collect()
        })
        .collect()
}

fn bench_clustering(c: &mut Criterion) {
    let pts = points(2_000, 3);
    let mut group = c.benchmark_group("cluster/fit_2000pts");
    group.sample_size(10);
    for k in [50usize, 200] {
        group.bench_with_input(BenchmarkId::new("kmeans", k), &k, |b, &k| {
            b.iter(|| KMeans::new(k, 1).fit(&pts))
        });
        group.bench_with_input(BenchmarkId::new("birch", k), &k, |b, &k| {
            b.iter(|| Birch::new(k, 1).fit(&pts))
        });
    }
    group.bench_function("meanshift", |b| b.iter(|| MeanShift::default().fit(&pts)));
    group.finish();

    let clustering = KMeans::new(200, 1).fit(&pts);
    c.bench_function("cluster/assign_one", |b| {
        b.iter(|| clustering.assign(&pts[17]))
    });
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
