//! Brute-force k-nearest-neighbors classifier.
//!
//! The paper notes that a KNN predictor over the same transformed /
//! scaled / PCA-projected feature space as the clustering algorithms
//! should be competitive with the semi-supervised approach; this is that
//! predictor.

use crate::{dot, Classifier, Dataset};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// KNN classifier with majority vote (ties broken toward the nearest
/// neighbor's class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnClassifier {
    /// Number of neighbors.
    pub k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    /// Squared norm of each training row, precomputed at fit time so a
    /// query ranks neighbors by `|t|^2 - 2 q.t` (the `|q|^2` term is
    /// constant per query and dropped) with one dot product per row.
    norms: Vec<f64>,
    n_classes: usize,
}

impl KnnClassifier {
    /// New untrained classifier with `k` neighbors.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        KnnClassifier {
            k,
            x: Vec::new(),
            y: Vec::new(),
            norms: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.x = data.x.clone();
        self.y = data.y.clone();
        self.norms = data.x.iter().map(|xi| dot(xi, xi)).collect();
        self.n_classes = data.n_classes;
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.x.is_empty(), "predict before fit");
        let k = self.k.min(self.x.len());
        // Partial selection of the k nearest rows by the norm expansion:
        // |x - t|^2 = |t|^2 - 2 x.t + |x|^2, with the constant |x|^2
        // dropped — same ranking, one multiply-add per element instead of
        // subtract-square.
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .zip(self.norms.iter().zip(&self.y))
            .map(|(xi, (&ni, &yi))| (ni - 2.0 * dot(x, xi), yi))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbors = &mut dists[..k];
        neighbors.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

        let mut votes = vec![0usize; self.n_classes];
        for &(_, label) in neighbors.iter() {
            votes[label] += 1;
        }
        let max_votes = *votes.iter().max().expect("at least one class");
        // Tie break: the tied class whose representative appears earliest
        // in the sorted neighbor list (i.e. is nearest).
        neighbors
            .iter()
            .find(|&&(_, label)| votes[label] == max_votes)
            .map(|&(_, label)| label)
            .expect("k >= 1")
    }

    fn predict(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.par_iter().map(|x| self.predict_one(x)).collect()
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Dataset {
        Dataset::new(
            vec![
                vec![0.0, 0.0],
                vec![0.1, 0.0],
                vec![0.0, 0.1],
                vec![5.0, 5.0],
                vec![5.1, 5.0],
                vec![5.0, 5.1],
            ],
            vec![0, 0, 0, 1, 1, 1],
            2,
        )
    }

    #[test]
    fn nearest_cluster_wins() {
        let mut knn = KnnClassifier::new(3);
        knn.fit(&simple());
        assert_eq!(knn.predict_one(&[0.2, 0.2]), 0);
        assert_eq!(knn.predict_one(&[4.8, 4.9]), 1);
    }

    #[test]
    fn k1_memorizes_training_data() {
        let data = simple();
        let mut knn = KnnClassifier::new(1);
        knn.fit(&data);
        assert_eq!(knn.predict(&data.x), data.y);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let data = simple();
        let mut knn = KnnClassifier::new(100);
        knn.fit(&data);
        // All six points vote; 3 vs 3 tie resolved toward the nearest.
        assert_eq!(knn.predict_one(&[0.0, 0.0]), 0);
        assert_eq!(knn.predict_one(&[5.0, 5.0]), 1);
    }

    #[test]
    fn tie_broken_by_proximity() {
        let data = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![3.0], vec![4.0]],
            vec![0, 0, 1, 1],
            2,
        );
        let mut knn = KnnClassifier::new(4);
        knn.fit(&data);
        // Query at 0.5: votes tie 2-2, nearest neighbor has class 0.
        assert_eq!(knn.predict_one(&[0.5]), 0);
        // Query at 3.5: nearest is class 1.
        assert_eq!(knn.predict_one(&[3.5]), 1);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        KnnClassifier::new(0);
    }
}
