//! From-scratch machine-learning substrate for sparse format selection.
//!
//! The paper evaluates six supervised classifiers (Decision Tree, Random
//! Forest, SVM, KNN, XGBoost, CNN) and nine semi-supervised combinations
//! (three clustering algorithms × three cluster-labeling strategies). None
//! of scikit-learn / XGBoost / TensorFlow exist in this workspace, so this
//! crate implements every algorithm from first principles:
//!
//! * classifiers: CART decision trees, bagged random forests, brute-force
//!   KNN, linear one-vs-rest SVMs, multinomial logistic regression,
//!   second-order gradient-boosted trees (XGBoost-style), and a small
//!   convolutional network on density images;
//! * clustering: K-Means (k-means++ init), Mean-Shift (flat kernel with
//!   bandwidth estimation), and Birch (CF-tree with a global refinement
//!   stage), plus an online/incremental K-Means variant for the paper's
//!   future-work scenario;
//! * evaluation: confusion matrices, accuracy, macro-F1, the multiclass
//!   Matthews correlation coefficient the paper argues for, and stratified
//!   k-fold cross-validation.

pub mod classifier;
pub mod cluster;
pub mod cnn;
pub mod cv;
pub mod data;
pub mod forest;
pub mod gboost;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod ridge;
pub mod svm;
pub mod tree;

pub use classifier::Classifier;
pub use cluster::{
    birch::Birch, flat::FlatCentroids, kmeans::KMeans, meanshift::MeanShift, ClusterAlgorithm,
    Clustering,
};
pub use cnn::CnnClassifier;
pub use cv::{stratified_kfold, train_test_split};
pub use data::Dataset;
pub use forest::RandomForest;
pub use gboost::GradientBoosting;
pub use knn::KnnClassifier;
pub use logreg::LogisticRegression;
pub use metrics::{accuracy, f1_score, mcc, ConfusionMatrix};
pub use ridge::RidgeRegression;
pub use svm::LinearSvm;
pub use tree::DecisionTree;

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length vectors.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Dot product of two equal-length vectors.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}
