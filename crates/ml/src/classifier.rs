//! The common classifier interface.

use crate::Dataset;

/// A trainable multiclass classifier over dense feature rows.
///
/// Implementations are deterministic given their configured seed, so
/// experiment tables are exactly reproducible.
pub trait Classifier {
    /// Fit on a training dataset, replacing any previous model.
    fn fit(&mut self, data: &Dataset);

    /// Predict the class of one feature row.
    ///
    /// # Panics
    /// Panics if called before `fit` or with a row of the wrong width.
    fn predict_one(&self, x: &[f64]) -> usize;

    /// Predict a batch of rows. The default maps `predict_one`.
    fn predict(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Short display name for report tables.
    fn name(&self) -> &'static str;
}
