//! Ridge regression (L2-regularized least squares) solved by normal
//! equations with Cholesky factorization.
//!
//! Backs the regression-style format selectors of prior work (the paper's
//! Section 2.2: "the ML models can be either regression or classification
//! based"): one regressor per format predicts the kernel time and the
//! selector takes the argmin.

use serde::{Deserialize, Serialize};

/// Ridge regression model `y ~ w . x + b`.
///
/// ```
/// use spsel_ml::RidgeRegression;
/// let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 1.0).collect();
/// let mut m = RidgeRegression::new(1e-9);
/// m.fit(&x, &y);
/// assert!((m.predict_one(&[20.0]) - 61.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RidgeRegression {
    /// L2 penalty on the weights (the bias is not penalized).
    pub lambda: f64,
    weights: Vec<f64>,
    bias: f64,
}

/// Cholesky solve of the symmetric positive-definite system `A x = b`
/// (row-major `n x n`). Returns `None` if the factorization breaks down.
fn cholesky_solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    let mut l = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            for k in 0..j {
                sum -= l[i][k] * l[j][k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i][j] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    // Forward substitution: L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i][k] * z[k];
        }
        z[i] = sum / l[i][i];
    }
    // Back substitution: L^T x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in (i + 1)..n {
            sum -= l[k][i] * x[k];
        }
        x[i] = sum / l[i][i];
    }
    Some(x)
}

impl RidgeRegression {
    /// New unfitted model with penalty `lambda`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        RidgeRegression {
            lambda,
            weights: Vec::new(),
            bias: 0.0,
        }
    }

    /// Fit on rows `x` with targets `y` by solving the normal equations
    /// over the bias-augmented design matrix.
    ///
    /// # Panics
    /// Panics on empty input or mismatched lengths.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "one target per row");
        assert!(!x.is_empty(), "cannot fit on empty data");
        let n = x.len();
        let d = x[0].len();
        // Gram matrix of [x | 1] plus lambda I (bias unpenalized).
        let mut gram = vec![vec![0.0f64; d + 1]; d + 1];
        let mut rhs = vec![0.0f64; d + 1];
        for (xi, &yi) in x.iter().zip(y) {
            assert_eq!(xi.len(), d, "inconsistent row widths");
            for a in 0..d {
                for b in a..d {
                    gram[a][b] += xi[a] * xi[b];
                }
                gram[a][d] += xi[a];
                rhs[a] += xi[a] * yi;
            }
            rhs[d] += yi;
        }
        gram[d][d] = n as f64;
        for a in 0..d {
            for b in a..d {
                gram[b][a] = gram[a][b];
            }
            gram[d][a] = gram[a][d];
            gram[a][a] += self.lambda;
        }
        // Tiny jitter keeps the factorization alive on degenerate data.
        let solution = cholesky_solve(&gram, &rhs).unwrap_or_else(|| {
            let mut jittered = gram.clone();
            for (i, row) in jittered.iter_mut().enumerate() {
                row[i] += 1e-8;
            }
            cholesky_solve(&jittered, &rhs).expect("jittered system is SPD")
        });
        self.bias = solution[d];
        self.weights = solution[..d].to_vec();
    }

    /// Predict the target of one row.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature width mismatch");
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.bias
    }

    /// Predict a batch of rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Fitted weights (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_function() {
        // y = 2 x0 - 3 x1 + 5
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 5.0).collect();
        let mut m = RidgeRegression::new(1e-9);
        m.fit(&x, &y);
        assert!((m.weights()[0] - 2.0).abs() < 1e-6);
        assert!((m.weights()[1] + 3.0).abs() < 1e-6);
        assert!((m.bias() - 5.0).abs() < 1e-6);
        assert!((m.predict_one(&[10.0, 10.0]) + 5.0).abs() < 1e-5);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 4.0 * r[0]).collect();
        let mut weak = RidgeRegression::new(1e-9);
        let mut strong = RidgeRegression::new(1e5);
        weak.fit(&x, &y);
        strong.fit(&x, &y);
        assert!(strong.weights()[0].abs() < weak.weights()[0].abs());
    }

    #[test]
    fn handles_constant_feature() {
        // Degenerate column: Gram matrix is singular without the ridge.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[1] * 2.0 + 1.0).collect();
        let mut m = RidgeRegression::new(1e-6);
        m.fit(&x, &y);
        for (xi, &yi) in x.iter().zip(&y) {
            assert!((m.predict_one(xi) - yi).abs() < 1e-3);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn single_sample() {
        let mut m = RidgeRegression::new(1.0);
        m.fit(&[vec![2.0]], &[6.0]);
        // Heavily determined by regularization but must stay finite.
        assert!(m.predict_one(&[2.0]).is_finite());
    }

    #[test]
    #[should_panic]
    fn empty_fit_panics() {
        RidgeRegression::new(1.0).fit(&[], &[]);
    }
}
