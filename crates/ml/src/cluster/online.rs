//! Online (incremental) K-Means.
//!
//! The paper's conclusion calls for an *online* learning scenario in which
//! new matrices arrive continuously and new clusters form on the fly, and
//! notes it "would require an incremental clustering algorithm, which is
//! beyond the scope of this work". This module provides that extension:
//! sequential K-Means with distance-threshold cluster creation, so a
//! deployed selector can absorb never-before-seen sparsity patterns
//! without refitting.

use super::Clustering;
use crate::{dist, sq_dist};
use serde::{Deserialize, Serialize};

/// Incremental K-Means with threshold-gated cluster creation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineKMeans {
    /// A point farther than this from every centroid opens a new cluster.
    pub distance_threshold: f64,
    /// Hard cap on the number of clusters.
    pub max_clusters: usize,
    centroids: Vec<Vec<f64>>,
    counts: Vec<usize>,
}

impl OnlineKMeans {
    /// New empty model.
    pub fn new(distance_threshold: f64, max_clusters: usize) -> Self {
        assert!(distance_threshold > 0.0, "threshold must be positive");
        assert!(max_clusters >= 1, "need at least one cluster slot");
        OnlineKMeans {
            distance_threshold,
            max_clusters,
            centroids: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Warm-start from an existing (batch) clustering.
    pub fn from_clustering(c: &Clustering, distance_threshold: f64, max_clusters: usize) -> Self {
        let members = c.members();
        OnlineKMeans {
            distance_threshold,
            max_clusters: max_clusters.max(c.n_clusters()),
            centroids: c.centroids.clone(),
            counts: members.iter().map(|m| m.len().max(1)).collect(),
        }
    }

    /// Current number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Current centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Observations absorbed per cluster.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Absorb one observation; returns `(cluster_index, created_new)`.
    ///
    /// The point joins the nearest centroid if it is within the threshold
    /// (or the cluster cap is reached), moving that centroid by the running
    /// mean update `c += (x - c) / n`; otherwise it seeds a new cluster.
    pub fn observe(&mut self, x: &[f64]) -> (usize, bool) {
        if self.centroids.is_empty() {
            self.centroids.push(x.to_vec());
            self.counts.push(1);
            return (0, true);
        }
        let (nearest, d2) = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, sq_dist(x, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        let far = d2.sqrt() > self.distance_threshold;
        if far && self.centroids.len() < self.max_clusters {
            self.centroids.push(x.to_vec());
            self.counts.push(1);
            return (self.centroids.len() - 1, true);
        }
        self.counts[nearest] += 1;
        let n = self.counts[nearest] as f64;
        for (c, v) in self.centroids[nearest].iter_mut().zip(x) {
            *c += (v - *c) / n;
        }
        (nearest, false)
    }

    /// Nearest-centroid assignment without updating the model.
    pub fn assign(&self, x: &[f64]) -> usize {
        assert!(!self.centroids.is_empty(), "no observations yet");
        self.centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, sq_dist(x, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .expect("non-empty")
    }

    /// Distance from `x` to its nearest centroid (an outlier score).
    pub fn novelty(&self, x: &[f64]) -> f64 {
        self.centroids
            .iter()
            .map(|c| dist(x, c))
            .fold(f64::INFINITY, f64::min)
    }

    /// Flatten the centroids for allocation-free nearest queries: one
    /// `FlatCentroids::nearest` call replaces the [`Self::assign`] +
    /// [`Self::novelty`] pair (same argmin, bit-identical distance).
    pub fn flatten(&self) -> super::flat::FlatCentroids {
        super::flat::FlatCentroids::from_rows(&self.centroids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_point_creates_cluster() {
        let mut m = OnlineKMeans::new(1.0, 10);
        let (id, new) = m.observe(&[0.0, 0.0]);
        assert_eq!((id, new), (0, true));
        assert_eq!(m.n_clusters(), 1);
    }

    #[test]
    fn nearby_points_join_and_shift_centroid() {
        let mut m = OnlineKMeans::new(2.0, 10);
        m.observe(&[0.0, 0.0]);
        let (id, new) = m.observe(&[1.0, 0.0]);
        assert_eq!((id, new), (0, false));
        assert_eq!(m.centroids()[0], vec![0.5, 0.0]);
        assert_eq!(m.counts()[0], 2);
    }

    #[test]
    fn distant_point_opens_new_cluster() {
        let mut m = OnlineKMeans::new(1.0, 10);
        m.observe(&[0.0, 0.0]);
        let (id, new) = m.observe(&[10.0, 0.0]);
        assert_eq!((id, new), (1, true));
    }

    #[test]
    fn cap_forces_absorption() {
        let mut m = OnlineKMeans::new(0.5, 2);
        m.observe(&[0.0]);
        m.observe(&[10.0]);
        let (id, new) = m.observe(&[100.0]);
        assert!(!new);
        assert_eq!(id, 1); // nearest existing cluster
        assert_eq!(m.n_clusters(), 2);
    }

    #[test]
    fn warm_start_preserves_batch_centroids() {
        let batch = Clustering {
            centroids: vec![vec![0.0], vec![5.0]],
            assignments: vec![0, 0, 1],
        };
        let m = OnlineKMeans::from_clustering(&batch, 1.0, 8);
        assert_eq!(m.n_clusters(), 2);
        assert_eq!(m.assign(&[4.7]), 1);
        assert_eq!(m.counts(), &[2, 1]);
    }

    #[test]
    fn novelty_is_zero_on_centroid() {
        let mut m = OnlineKMeans::new(1.0, 4);
        m.observe(&[3.0, 4.0]);
        assert_eq!(m.novelty(&[3.0, 4.0]), 0.0);
        assert!((m.novelty(&[0.0, 0.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_two_blobs_converges_to_two_clusters() {
        let mut m = OnlineKMeans::new(2.0, 50);
        for i in 0..100 {
            let base = if i % 2 == 0 { 0.0 } else { 20.0 };
            let jitter = (i % 7) as f64 * 0.1;
            m.observe(&[base + jitter]);
        }
        assert_eq!(m.n_clusters(), 2);
        assert!(m.assign(&[1.0]) != m.assign(&[19.0]));
    }
}
