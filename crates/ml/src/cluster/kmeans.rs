//! K-Means clustering with k-means++ seeding and Lloyd iterations.

use super::{ClusterAlgorithm, Clustering};
use crate::sq_dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// K-Means configuration.
///
/// ```
/// use spsel_ml::{ClusterAlgorithm, KMeans};
/// let points = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
/// let clustering = KMeans::new(2, 42).fit(&points);
/// assert_eq!(clustering.n_clusters(), 2);
/// assert_eq!(clustering.assign(&[0.05]), clustering.assignments[0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    /// Number of clusters (the paper's `NC`).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f64,
    /// Seed for k-means++ initialization.
    pub seed: u64,
}

impl KMeans {
    /// K-Means with `k` clusters and sensible defaults.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be positive");
        KMeans {
            k,
            max_iter: 100,
            tol: 1e-9,
            seed,
        }
    }

    /// k-means++ seeding: first centroid uniform, each next one sampled
    /// proportional to squared distance from the nearest chosen centroid.
    fn init_centroids(&self, points: &[Vec<f64>], rng: &mut StdRng) -> Vec<Vec<f64>> {
        let n = points.len();
        let k = self.k.min(n);
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(points[rng.gen_range(0..n)].clone());
        let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
        while centroids.len() < k {
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                // All remaining points coincide with chosen centroids.
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &d) in d2.iter().enumerate() {
                    if target < d {
                        chosen = i;
                        break;
                    }
                    target -= d;
                }
                chosen
            };
            centroids.push(points[next].clone());
            let c = centroids.last().expect("just pushed");
            for (i, p) in points.iter().enumerate() {
                let d = sq_dist(p, c);
                if d < d2[i] {
                    d2[i] = d;
                }
            }
        }
        centroids
    }
}

impl ClusterAlgorithm for KMeans {
    fn fit(&self, points: &[Vec<f64>]) -> Clustering {
        assert!(!points.is_empty(), "cannot cluster an empty point set");
        let n = points.len();
        let dim = points[0].len();
        let k = self.k.min(n);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut centroids = self.init_centroids(points, &mut rng);
        let mut assignments = vec![0usize; n];

        for _ in 0..self.max_iter {
            // Assignment step (parallel).
            assignments = points
                .par_iter()
                .map(|p| {
                    centroids
                        .iter()
                        .enumerate()
                        .map(|(i, c)| (i, sq_dist(p, c)))
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .map(|(i, _)| i)
                        .expect("k >= 1")
                })
                .collect();

            // Update step.
            let mut sums = vec![vec![0.0; dim]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, v) in sums[a].iter_mut().zip(p) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its centroid, a standard repair that keeps k stable.
                    let (far, _) = points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i, sq_dist(p, &centroids[assignments[i]])))
                        .max_by(|a, b| a.1.total_cmp(&b.1))
                        .expect("non-empty points");
                    movement += sq_dist(&centroids[c], &points[far]);
                    centroids[c] = points[far].clone();
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let mut new_c = sums[c].clone();
                for v in new_c.iter_mut() {
                    *v *= inv;
                }
                movement += sq_dist(&centroids[c], &new_c);
                centroids[c] = new_c;
            }
            if movement < self.tol {
                break;
            }
        }

        // Final assignment against the last centroids.
        let assignments = points
            .par_iter()
            .map(|p| {
                centroids
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (i, sq_dist(p, c)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(i, _)| i)
                    .expect("k >= 1")
            })
            .collect();
        Clustering {
            centroids,
            assignments,
        }
    }

    fn name(&self) -> &'static str {
        "K-Means"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs(per: usize, centers: &[(f64, f64)], seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                pts.push(vec![
                    cx + rng.gen_range(-0.5..0.5),
                    cy + rng.gen_range(-0.5..0.5),
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_three_blobs() {
        let pts = blobs(30, &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 1);
        let c = KMeans::new(3, 7).fit(&pts);
        assert_eq!(c.n_clusters(), 3);
        // Every blob maps to a single cluster.
        for blob in 0..3 {
            let ids: std::collections::HashSet<usize> =
                (0..30).map(|i| c.assignments[blob * 30 + i]).collect();
            assert_eq!(ids.len(), 1, "blob {blob} split across clusters");
        }
        // Low inertia: all points near their centroid.
        assert!((c.inertia(&pts) / pts.len() as f64) < 0.5);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![0.0], vec![1.0]];
        let c = KMeans::new(10, 0).fit(&pts);
        assert_eq!(c.n_clusters(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs(20, &[(0.0, 0.0), (5.0, 5.0)], 2);
        let a = KMeans::new(4, 3).fit(&pts);
        let b = KMeans::new(4, 3).fit(&pts);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_points_handled() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let c = KMeans::new(3, 0).fit(&pts);
        assert!(c.n_clusters() <= 3);
        assert_eq!(c.inertia(&pts), 0.0);
    }

    #[test]
    fn more_clusters_lower_inertia() {
        let pts = blobs(25, &[(0.0, 0.0), (4.0, 4.0), (8.0, 0.0), (4.0, -4.0)], 5);
        let i2 = KMeans::new(2, 1).fit(&pts).inertia(&pts);
        let i8 = KMeans::new(8, 1).fit(&pts).inertia(&pts);
        assert!(i8 < i2, "inertia should decrease with k: {i8} >= {i2}");
    }
}
