//! Birch clustering: a CF-tree (clustering-feature tree) first pass that
//! compresses the data into subclusters, followed by a global weighted
//! K-Means over the subcluster centroids (Zhang, Ramakrishnan, Livny 1996;
//! scikit-learn uses an agglomerative global step, any global clusterer is
//! admissible).

use super::{ClusterAlgorithm, Clustering};
use crate::sq_dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Birch configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Birch {
    /// Number of final clusters (the paper's `NC`).
    pub n_clusters: usize,
    /// Subcluster absorption radius threshold.
    pub threshold: f64,
    /// Maximum entries per CF-tree node before it splits.
    pub branching_factor: usize,
    /// Seed for the global K-Means step.
    pub seed: u64,
}

impl Birch {
    /// Birch with `n_clusters` final clusters and library defaults
    /// (threshold 0.25, branching factor 50).
    pub fn new(n_clusters: usize, seed: u64) -> Self {
        assert!(n_clusters >= 1, "need at least one cluster");
        Birch {
            n_clusters,
            threshold: 0.25,
            branching_factor: 50,
            seed,
        }
    }
}

/// A clustering feature: count, linear sum, and squared-norm sum.
#[derive(Debug, Clone, PartialEq)]
struct Cf {
    n: f64,
    ls: Vec<f64>,
    ss: f64,
}

impl Cf {
    fn from_point(p: &[f64]) -> Self {
        Cf {
            n: 1.0,
            ls: p.to_vec(),
            ss: p.iter().map(|v| v * v).sum(),
        }
    }

    fn centroid(&self) -> Vec<f64> {
        self.ls.iter().map(|v| v / self.n).collect()
    }

    fn merge(&mut self, other: &Cf) {
        self.n += other.n;
        for (a, b) in self.ls.iter_mut().zip(&other.ls) {
            *a += b;
        }
        self.ss += other.ss;
    }

    /// RMS radius of this CF after absorbing `other`.
    fn radius_after_merge(&self, other: &Cf) -> f64 {
        let n = self.n + other.n;
        let ss = self.ss + other.ss;
        let mut c2 = 0.0;
        for (a, b) in self.ls.iter().zip(&other.ls) {
            let s = a + b;
            c2 += (s / n) * (s / n);
        }
        (ss / n - c2).max(0.0).sqrt()
    }

    fn centroid_sq_dist(&self, other: &Cf) -> f64 {
        let mut d = 0.0;
        for (a, b) in self.ls.iter().zip(&other.ls) {
            let diff = a / self.n - b / other.n;
            d += diff * diff;
        }
        d
    }
}

enum Node {
    Leaf {
        entries: Vec<Cf>,
    },
    Internal {
        summaries: Vec<Cf>,
        children: Vec<Node>,
    },
}

/// Result of inserting into a node: possibly a split into two halves.
enum InsertResult {
    Ok,
    Split(Cf, Node, Cf, Node),
}

fn summarize(entries: &[Cf]) -> Cf {
    let mut total = entries[0].clone();
    for e in &entries[1..] {
        total.merge(e);
    }
    total
}

/// Split a set of CFs into two groups seeded by the farthest pair.
fn split_entries(mut entries: Vec<Cf>) -> (Vec<Cf>, Vec<Cf>) {
    let n = entries.len();
    debug_assert!(n >= 2);
    let (mut si, mut sj, mut best) = (0, 1, -1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = entries[i].centroid_sq_dist(&entries[j]);
            if d > best {
                best = d;
                si = i;
                sj = j;
            }
        }
    }
    // Remove the higher index first so the lower one stays valid.
    let seed_b = entries.remove(sj);
    let seed_a = entries.remove(si);
    let mut a = vec![seed_a];
    let mut b = vec![seed_b];
    for e in entries {
        if e.centroid_sq_dist(&a[0]) <= e.centroid_sq_dist(&b[0]) {
            a.push(e);
        } else {
            b.push(e);
        }
    }
    (a, b)
}

impl Node {
    fn insert(&mut self, point_cf: Cf, threshold: f64, branching: usize) -> InsertResult {
        match self {
            Node::Leaf { entries } => {
                // Nearest entry by centroid distance.
                if let Some((idx, _)) = entries
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (i, e.centroid_sq_dist(&point_cf)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                {
                    if entries[idx].radius_after_merge(&point_cf) <= threshold {
                        entries[idx].merge(&point_cf);
                        return InsertResult::Ok;
                    }
                }
                entries.push(point_cf);
                if entries.len() <= branching {
                    return InsertResult::Ok;
                }
                let (a, b) = split_entries(std::mem::take(entries));
                let (cfa, cfb) = (summarize(&a), summarize(&b));
                InsertResult::Split(
                    cfa,
                    Node::Leaf { entries: a },
                    cfb,
                    Node::Leaf { entries: b },
                )
            }
            Node::Internal {
                summaries,
                children,
            } => {
                let (idx, _) = summaries
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i, s.centroid_sq_dist(&point_cf)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("internal nodes are non-empty");
                summaries[idx].merge(&point_cf);
                match children[idx].insert(point_cf, threshold, branching) {
                    InsertResult::Ok => InsertResult::Ok,
                    InsertResult::Split(cfa, na, cfb, nb) => {
                        summaries[idx] = cfa;
                        children[idx] = na;
                        summaries.push(cfb);
                        children.push(nb);
                        if children.len() <= branching {
                            return InsertResult::Ok;
                        }
                        // Split this internal node: partition children by
                        // proximity to the farthest summary pair.
                        let summaries_taken = std::mem::take(summaries);
                        let children_taken = std::mem::take(children);
                        let n = summaries_taken.len();
                        let (mut si, mut sj, mut best) = (0, 1, -1.0);
                        for i in 0..n {
                            for j in (i + 1)..n {
                                let d = summaries_taken[i].centroid_sq_dist(&summaries_taken[j]);
                                if d > best {
                                    best = d;
                                    si = i;
                                    sj = j;
                                }
                            }
                        }
                        let mut sa = Vec::new();
                        let mut ca = Vec::new();
                        let mut sb = Vec::new();
                        let mut cb = Vec::new();
                        let anchor_a = summaries_taken[si].clone();
                        let anchor_b = summaries_taken[sj].clone();
                        for (s, c) in summaries_taken.into_iter().zip(children_taken) {
                            if s.centroid_sq_dist(&anchor_a) <= s.centroid_sq_dist(&anchor_b) {
                                sa.push(s);
                                ca.push(c);
                            } else {
                                sb.push(s);
                                cb.push(c);
                            }
                        }
                        let (cfa, cfb) = (summarize(&sa), summarize(&sb));
                        InsertResult::Split(
                            cfa,
                            Node::Internal {
                                summaries: sa,
                                children: ca,
                            },
                            cfb,
                            Node::Internal {
                                summaries: sb,
                                children: cb,
                            },
                        )
                    }
                }
            }
        }
    }

    fn collect_leaf_entries(&self, out: &mut Vec<Cf>) {
        match self {
            Node::Leaf { entries } => out.extend(entries.iter().cloned()),
            Node::Internal { children, .. } => {
                for c in children {
                    c.collect_leaf_entries(out);
                }
            }
        }
    }
}

/// Weighted K-Means over subcluster centroids (the global step).
fn weighted_kmeans(
    centroids_in: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    let n = centroids_in.len();
    let k = k.min(n);
    let dim = centroids_in[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    // Weighted k-means++ seeding.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rng.gen_range(0..n);
    centers.push(centroids_in[first].clone());
    let mut d2: Vec<f64> = centroids_in
        .iter()
        .zip(weights)
        .map(|(p, &w)| w * sq_dist(p, &centers[0]))
        .collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centers.push(centroids_in[next].clone());
        for (i, p) in centroids_in.iter().enumerate() {
            let d = weights[i] * sq_dist(p, centers.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }

    for _ in 0..100 {
        let assignments: Vec<usize> = centroids_in
            .iter()
            .map(|p| {
                centers
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (i, sq_dist(p, c)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(i, _)| i)
                    .expect("k >= 1")
            })
            .collect();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut wsum = vec![0.0; k];
        for ((p, &a), &w) in centroids_in.iter().zip(&assignments).zip(weights) {
            wsum[a] += w;
            for (s, v) in sums[a].iter_mut().zip(p) {
                *s += w * v;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if wsum[c] <= 0.0 {
                continue;
            }
            let new_c: Vec<f64> = sums[c].iter().map(|s| s / wsum[c]).collect();
            movement += sq_dist(&centers[c], &new_c);
            centers[c] = new_c;
        }
        if movement < 1e-12 {
            break;
        }
    }
    centers
}

impl ClusterAlgorithm for Birch {
    fn fit(&self, points: &[Vec<f64>]) -> Clustering {
        assert!(!points.is_empty(), "cannot cluster an empty point set");

        // Phase 1: build the CF tree.
        let mut root = Node::Leaf {
            entries: Vec::new(),
        };
        for p in points {
            match root.insert(Cf::from_point(p), self.threshold, self.branching_factor) {
                InsertResult::Ok => {}
                InsertResult::Split(cfa, na, cfb, nb) => {
                    root = Node::Internal {
                        summaries: vec![cfa, cfb],
                        children: vec![na, nb],
                    };
                }
            }
        }
        let mut subclusters = Vec::new();
        root.collect_leaf_entries(&mut subclusters);

        // Phase 3: global clustering of subcluster centroids.
        let sub_centroids: Vec<Vec<f64>> = subclusters.iter().map(|c| c.centroid()).collect();
        let weights: Vec<f64> = subclusters.iter().map(|c| c.n).collect();
        let centroids = weighted_kmeans(&sub_centroids, &weights, self.n_clusters, self.seed);

        let assignments = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (i, sq_dist(p, c)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(i, _)| i)
                    .expect("at least one centroid")
            })
            .collect();
        Clustering {
            centroids,
            assignments,
        }
    }

    fn name(&self) -> &'static str {
        "Birch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs(per: usize, centers: &[(f64, f64)], seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                pts.push(vec![
                    cx + rng.gen_range(-0.4..0.4),
                    cy + rng.gen_range(-0.4..0.4),
                ]);
            }
        }
        pts
    }

    #[test]
    fn cf_merge_updates_moments() {
        let mut a = Cf::from_point(&[1.0, 2.0]);
        a.merge(&Cf::from_point(&[3.0, 4.0]));
        assert_eq!(a.n, 2.0);
        assert_eq!(a.ls, vec![4.0, 6.0]);
        assert_eq!(a.ss, 1.0 + 4.0 + 9.0 + 16.0);
        assert_eq!(a.centroid(), vec![2.0, 3.0]);
    }

    #[test]
    fn radius_after_merge_of_identical_points_is_zero() {
        let a = Cf::from_point(&[5.0, 5.0]);
        let b = Cf::from_point(&[5.0, 5.0]);
        assert!(a.radius_after_merge(&b) < 1e-9);
    }

    #[test]
    fn recovers_separated_blobs() {
        let pts = blobs(40, &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 1);
        let c = Birch::new(3, 5).fit(&pts);
        assert_eq!(c.n_clusters(), 3);
        for blob in 0..3 {
            let ids: std::collections::HashSet<usize> =
                (0..40).map(|i| c.assignments[blob * 40 + i]).collect();
            assert_eq!(ids.len(), 1, "blob {blob} split");
        }
    }

    #[test]
    fn tight_threshold_many_subclusters_still_k_final() {
        let pts = blobs(50, &[(0.0, 0.0), (6.0, 6.0)], 2);
        let b = Birch {
            threshold: 1e-6,
            ..Birch::new(2, 1)
        };
        let c = b.fit(&pts);
        assert_eq!(c.n_clusters(), 2);
    }

    #[test]
    fn branching_splits_do_not_lose_points() {
        // Force many splits with a tiny branching factor.
        let pts = blobs(60, &[(0.0, 0.0), (4.0, 0.0), (8.0, 0.0)], 3);
        let b = Birch {
            branching_factor: 4,
            threshold: 0.2,
            ..Birch::new(3, 2)
        };
        let c = b.fit(&pts);
        assert_eq!(c.assignments.len(), 180);
        assert_eq!(c.n_clusters(), 3);
    }

    #[test]
    fn deterministic() {
        let pts = blobs(30, &[(0.0, 0.0), (7.0, 7.0)], 4);
        let b = Birch::new(4, 9);
        assert_eq!(b.fit(&pts), b.fit(&pts));
    }

    #[test]
    fn n_clusters_clamped_to_points() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let c = Birch::new(10, 0).fit(&pts);
        assert!(c.n_clusters() <= 3);
    }
}
