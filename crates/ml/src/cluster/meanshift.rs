//! Mean-Shift clustering (flat kernel) with automatic bandwidth estimation
//! and grid-binned seeding, following the classic Comaniciu–Meer algorithm
//! and scikit-learn's practical choices.
//!
//! Mean-Shift discovers the number of clusters itself — the paper observes
//! that on this problem it finds too few, large clusters, which is exactly
//! why its format-selection quality trails K-Means and Birch.

use super::{ClusterAlgorithm, Clustering};
use crate::sq_dist;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Mean-Shift configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanShift {
    /// Kernel bandwidth; `None` estimates it from the data.
    pub bandwidth: Option<f64>,
    /// Quantile used by the bandwidth estimator (scikit-learn default 0.3).
    pub quantile: f64,
    /// Maximum shift iterations per seed.
    pub max_iter: usize,
    /// Minimum points a seeding bin must hold.
    pub min_bin_freq: usize,
}

impl Default for MeanShift {
    fn default() -> Self {
        MeanShift {
            bandwidth: None,
            quantile: 0.3,
            max_iter: 300,
            min_bin_freq: 1,
        }
    }
}

/// Estimate a bandwidth as the mean, over all points, of the distance to
/// the `quantile * n`-th nearest neighbor (scikit-learn's
/// `estimate_bandwidth`).
pub fn estimate_bandwidth(points: &[Vec<f64>], quantile: f64) -> f64 {
    let n = points.len();
    assert!(n > 0, "cannot estimate bandwidth of empty set");
    if n == 1 {
        return 1.0;
    }
    let k = ((n as f64 * quantile) as usize).clamp(1, n - 1);
    let total: f64 = points
        .par_iter()
        .map(|p| {
            let mut d: Vec<f64> = points.iter().map(|q| sq_dist(p, q)).collect();
            d.select_nth_unstable_by(k, |a, b| a.total_cmp(b));
            d[k].sqrt()
        })
        .sum();
    total / n as f64
}

impl MeanShift {
    /// Grid-bin the points with cell size `bandwidth` and return the mean of
    /// each bin holding at least `min_bin_freq` points, as seeds.
    fn bin_seeds(&self, points: &[Vec<f64>], bandwidth: f64) -> Vec<Vec<f64>> {
        let dim = points[0].len();
        let mut bins: HashMap<Vec<i64>, (Vec<f64>, usize)> = HashMap::new();
        for p in points {
            let key: Vec<i64> = p.iter().map(|&v| (v / bandwidth).floor() as i64).collect();
            let entry = bins.entry(key).or_insert_with(|| (vec![0.0; dim], 0));
            for (s, v) in entry.0.iter_mut().zip(p) {
                *s += v;
            }
            entry.1 += 1;
        }
        let mut seeds: Vec<(Vec<i64>, Vec<f64>)> = bins
            .into_iter()
            .filter(|(_, (_, c))| *c >= self.min_bin_freq)
            .map(|(key, (sum, c))| (key, sum.into_iter().map(|s| s / c as f64).collect()))
            .collect();
        // Deterministic order regardless of hash iteration.
        seeds.sort_by(|a, b| a.0.cmp(&b.0));
        seeds.into_iter().map(|(_, s)| s).collect()
    }
}

impl ClusterAlgorithm for MeanShift {
    fn fit(&self, points: &[Vec<f64>]) -> Clustering {
        assert!(!points.is_empty(), "cannot cluster an empty point set");
        let bandwidth = self
            .bandwidth
            .unwrap_or_else(|| estimate_bandwidth(points, self.quantile))
            .max(1e-12);
        let bw2 = bandwidth * bandwidth;
        let dim = points[0].len();
        let seeds = self.bin_seeds(points, bandwidth);

        // Shift every seed to a density mode.
        let modes: Vec<(Vec<f64>, usize)> = seeds
            .par_iter()
            .filter_map(|seed| {
                let mut center = seed.clone();
                let mut within = 0usize;
                for _ in 0..self.max_iter {
                    let mut sum = vec![0.0; dim];
                    within = 0;
                    for p in points {
                        if sq_dist(&center, p) <= bw2 {
                            within += 1;
                            for (s, v) in sum.iter_mut().zip(p) {
                                *s += v;
                            }
                        }
                    }
                    if within == 0 {
                        return None;
                    }
                    let new_center: Vec<f64> = sum.into_iter().map(|s| s / within as f64).collect();
                    let shift = sq_dist(&center, &new_center).sqrt();
                    center = new_center;
                    if shift < bandwidth * 1e-3 {
                        break;
                    }
                }
                Some((center, within))
            })
            .collect();

        // Merge modes closer than the bandwidth, keeping denser ones.
        let mut sorted = modes;
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0[0].total_cmp(&b.0[0])));
        let mut centroids: Vec<Vec<f64>> = Vec::new();
        for (mode, _) in sorted {
            if centroids.iter().all(|c| sq_dist(c, &mode) > bw2) {
                centroids.push(mode);
            }
        }
        if centroids.is_empty() {
            // Degenerate fallback: a single cluster at the data mean.
            let mut mean = vec![0.0; dim];
            for p in points {
                for (m, v) in mean.iter_mut().zip(p) {
                    *m += v;
                }
            }
            for m in mean.iter_mut() {
                *m /= points.len() as f64;
            }
            centroids.push(mean);
        }

        let assignments = points
            .par_iter()
            .map(|p| {
                centroids
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (i, sq_dist(p, c)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(i, _)| i)
                    .expect("at least one centroid")
            })
            .collect();
        Clustering {
            centroids,
            assignments,
        }
    }

    fn name(&self) -> &'static str {
        "Mean-Shift"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(per: usize, centers: &[(f64, f64)], spread: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                pts.push(vec![
                    cx + rng.gen_range(-spread..spread),
                    cy + rng.gen_range(-spread..spread),
                ]);
            }
        }
        pts
    }

    #[test]
    fn finds_well_separated_blobs() {
        let pts = blobs(40, &[(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)], 0.8, 1);
        let ms = MeanShift {
            bandwidth: Some(3.0),
            ..Default::default()
        };
        let c = ms.fit(&pts);
        assert_eq!(c.n_clusters(), 3);
        for blob in 0..3 {
            let ids: std::collections::HashSet<usize> =
                (0..40).map(|i| c.assignments[blob * 40 + i]).collect();
            assert_eq!(ids.len(), 1);
        }
    }

    #[test]
    fn estimated_bandwidth_is_positive_and_scales() {
        let tight = blobs(30, &[(0.0, 0.0)], 0.1, 2);
        let wide = blobs(30, &[(0.0, 0.0)], 10.0, 2);
        let bt = estimate_bandwidth(&tight, 0.3);
        let bw = estimate_bandwidth(&wide, 0.3);
        assert!(bt > 0.0);
        assert!(bw > 10.0 * bt);
    }

    #[test]
    fn oversized_bandwidth_merges_everything() {
        let pts = blobs(20, &[(0.0, 0.0), (5.0, 5.0)], 0.5, 3);
        let ms = MeanShift {
            bandwidth: Some(100.0),
            ..Default::default()
        };
        let c = ms.fit(&pts);
        assert_eq!(c.n_clusters(), 1);
    }

    #[test]
    fn deterministic() {
        let pts = blobs(25, &[(0.0, 0.0), (8.0, 8.0)], 1.0, 4);
        let ms = MeanShift::default();
        assert_eq!(ms.fit(&pts), ms.fit(&pts));
    }

    #[test]
    fn single_point() {
        let pts = vec![vec![1.0, 2.0]];
        let c = MeanShift::default().fit(&pts);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.assignments, vec![0]);
    }
}
