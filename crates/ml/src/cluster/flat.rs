//! Contiguous centroid storage for the serving hot path.
//!
//! The fitted clustering types keep centroids as `Vec<Vec<f64>>` — the
//! natural shape for training, but a pointer chase per centroid on every
//! nearest-centroid query. [`FlatCentroids`] is a read-only view derived
//! at snapshot-build time: all centroids in one row-major buffer plus
//! their precomputed squared norms, so a query is a single linear walk
//! over one cache-resident block.
//!
//! The scan uses the norm expansion `‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²`:
//! since `‖x‖²` is constant across centroids, the argmin only needs
//! `‖c‖² − 2·x·c` per centroid — one fused multiply-add loop over the
//! flat buffer instead of a subtract-square loop per row. The winning
//! centroid's distance is then recomputed with the exact legacy
//! subtract-square formula ([`crate::sq_dist`]), so the reported distance
//! is bit-identical to the historic `novelty` path (`sqrt` is monotone
//! and correctly rounded, so `min ∘ sqrt = sqrt ∘ min`).

use crate::sq_dist;

/// Read-only flattened centroids with precomputed squared norms.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatCentroids {
    dim: usize,
    /// `len x dim`, row-major.
    data: Vec<f64>,
    /// `‖c_i‖²` per centroid.
    sq_norms: Vec<f64>,
}

impl FlatCentroids {
    /// Flatten a set of equal-width centroid rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent widths.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Self {
        let dim = rows.first().map_or(0, |r| r.as_ref().len());
        let mut data = Vec::with_capacity(rows.len() * dim);
        let mut sq_norms = Vec::with_capacity(rows.len());
        for r in rows {
            let r = r.as_ref();
            assert_eq!(r.len(), dim, "centroid width mismatch");
            data.extend_from_slice(r);
            sq_norms.push(r.iter().map(|v| v * v).sum());
        }
        FlatCentroids {
            dim,
            data,
            sq_norms,
        }
    }

    /// Number of centroids.
    pub fn len(&self) -> usize {
        self.sq_norms.len()
    }

    /// True when there are no centroids.
    pub fn is_empty(&self) -> bool {
        self.sq_norms.is_empty()
    }

    /// Width of each centroid.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Centroid `i` as a slice of the flat buffer.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Index of the nearest centroid and the exact Euclidean distance to
    /// it, or `None` when empty.
    ///
    /// Ties break to the lowest index, matching the historic
    /// `min_by(total_cmp)` scan; the returned distance is bit-identical
    /// to `sq_dist(x, nearest).sqrt()` on the legacy nested layout.
    pub fn nearest(&self, x: &[f64]) -> Option<(usize, f64)> {
        if self.is_empty() {
            return None;
        }
        assert_eq!(x.len(), self.dim, "query width mismatch");
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, (chunk, &n2)) in self
            .data
            .chunks_exact(self.dim.max(1))
            .zip(&self.sq_norms)
            .enumerate()
        {
            let mut xc = 0.0;
            for j in 0..self.dim {
                xc += x[j] * chunk[j];
            }
            let score = n2 - 2.0 * xc;
            if score < best_score {
                best = i;
                best_score = score;
            }
        }
        Some((best, sq_dist(x, self.row(best)).sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_nearest() {
        let f = FlatCentroids::from_rows::<Vec<f64>>(&[]);
        assert!(f.is_empty());
        assert_eq!(f.nearest(&[]), None);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let rows = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![-1.0, 2.0]];
        let f = FlatCentroids::from_rows(&rows);
        assert_eq!(f.len(), 3);
        assert_eq!(f.dim(), 2);
        let (i, d) = f.nearest(&[2.9, 4.2]).unwrap();
        assert_eq!(i, 1);
        assert_eq!(d.to_bits(), sq_dist(&[2.9, 4.2], &rows[1]).sqrt().to_bits());
    }

    #[test]
    fn ties_break_to_first_index() {
        // Two bitwise-identical centroids: both the expansion score and
        // the exact distance tie exactly, so the first must win.
        let rows = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![9.0, 9.0]];
        let f = FlatCentroids::from_rows(&rows);
        assert_eq!(f.nearest(&[1.2, 0.8]).unwrap().0, 0);
    }

    #[test]
    fn zero_dim_rows_are_all_at_distance_zero() {
        let f = FlatCentroids::from_rows(&[Vec::<f64>::new(), Vec::new()]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.nearest(&[]), Some((0, 0.0)));
    }
}
