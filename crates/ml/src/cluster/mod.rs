//! Clustering algorithms: the heart of the paper's semi-supervised method.
//!
//! Each algorithm consumes embedded feature points and produces a
//! [`Clustering`]: a set of centroids plus the training assignments. New
//! matrices are assigned to the nearest centroid (the paper's
//! centroid-based prediction rule), so clusters carry across architectures
//! while labels stay per-architecture.

pub mod birch;
pub mod flat;
pub mod kmeans;
pub mod meanshift;
pub mod online;

use crate::sq_dist;
use serde::{Deserialize, Serialize};

/// The result of fitting a clustering algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per training point.
    pub assignments: Vec<usize>,
}

impl Clustering {
    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Index of the centroid nearest to `x`.
    pub fn assign(&self, x: &[f64]) -> usize {
        assert!(!self.centroids.is_empty(), "empty clustering");
        self.centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, sq_dist(x, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .expect("at least one centroid")
    }

    /// Flatten the centroids for allocation-free nearest queries on a
    /// serving hot path.
    pub fn flatten(&self) -> flat::FlatCentroids {
        flat::FlatCentroids::from_rows(&self.centroids)
    }

    /// Members (training point indices) of each cluster.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut m = vec![Vec::new(); self.n_clusters()];
        for (i, &c) in self.assignments.iter().enumerate() {
            m[c].push(i);
        }
        m
    }

    /// Sum of squared distances of training points to their centroid
    /// (inertia), given the original points.
    pub fn inertia(&self, points: &[Vec<f64>]) -> f64 {
        points
            .iter()
            .zip(&self.assignments)
            .map(|(p, &c)| sq_dist(p, &self.centroids[c]))
            .sum()
    }

    /// Merge cluster `b` into cluster `a` (the paper notes that merging
    /// and splitting clusters is cheaper than retraining when the corpus
    /// evolves). The merged centroid is the member-weighted mean; cluster
    /// indices above `b` shift down by one.
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of range.
    pub fn merge(&mut self, a: usize, b: usize) {
        assert!(a != b, "cannot merge a cluster with itself");
        assert!(a < self.n_clusters() && b < self.n_clusters());
        let (na, nb) = {
            let mut counts = (0usize, 0usize);
            for &c in &self.assignments {
                if c == a {
                    counts.0 += 1;
                } else if c == b {
                    counts.1 += 1;
                }
            }
            counts
        };
        let total = (na + nb).max(1) as f64;
        let cb = self.centroids[b].clone();
        for (va, vb) in self.centroids[a].iter_mut().zip(&cb) {
            *va = (*va * na as f64 + *vb * nb as f64) / total;
        }
        self.centroids.remove(b);
        for c in self.assignments.iter_mut() {
            if *c == b {
                *c = a - (a > b) as usize;
            } else if *c > b {
                *c -= 1;
            }
        }
    }

    /// Split cluster `c` into two by a 2-means pass over its members
    /// (given the original points). Returns the index of the new cluster,
    /// or `None` if the cluster has fewer than two distinct members.
    pub fn split(&mut self, c: usize, points: &[Vec<f64>], seed: u64) -> Option<usize> {
        assert!(c < self.n_clusters());
        assert_eq!(points.len(), self.assignments.len());
        let members: Vec<usize> = self
            .assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect();
        if members.len() < 2 {
            return None;
        }
        let member_points: Vec<Vec<f64>> = members.iter().map(|&i| points[i].clone()).collect();
        let sub = crate::cluster::kmeans::KMeans::new(2, seed).fit(&member_points);
        let side_b = sub.assignments.iter().filter(|&&a| a == 1).count();
        if sub.n_clusters() < 2 || side_b == 0 || side_b == members.len() {
            return None; // all members identical: no genuine split exists
        }
        let new_index = self.n_clusters();
        self.centroids[c] = sub.centroids[0].clone();
        self.centroids.push(sub.centroids[1].clone());
        for (pos, &i) in members.iter().enumerate() {
            if sub.assignments[pos] == 1 {
                self.assignments[i] = new_index;
            }
        }
        Some(new_index)
    }
}

/// A clustering algorithm that can be fit on a set of points.
pub trait ClusterAlgorithm {
    /// Fit on the given points.
    ///
    /// # Panics
    /// Panics on an empty point set.
    fn fit(&self, points: &[Vec<f64>]) -> Clustering;

    /// Short display name for report tables.
    fn name(&self) -> &'static str;
}

/// Purity of each cluster with respect to ground-truth labels: the fraction
/// of members whose label equals the cluster's plurality label. Returns
/// `(per_cluster_purity, overall_weighted_purity)`; empty clusters get
/// purity 1.
pub fn cluster_purity(
    clustering: &Clustering,
    labels: &[usize],
    n_classes: usize,
) -> (Vec<f64>, f64) {
    assert_eq!(clustering.assignments.len(), labels.len());
    let members = clustering.members();
    let mut per = Vec::with_capacity(members.len());
    let mut weighted = 0.0;
    let total: usize = members.iter().map(|m| m.len()).sum();
    for m in &members {
        if m.is_empty() {
            per.push(1.0);
            continue;
        }
        let mut counts = vec![0usize; n_classes];
        for &i in m {
            counts[labels[i]] += 1;
        }
        let purity = *counts.iter().max().expect("non-empty") as f64 / m.len() as f64;
        per.push(purity);
        weighted += purity * m.len() as f64;
    }
    let overall = if total == 0 {
        1.0
    } else {
        weighted / total as f64
    };
    (per, overall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_clustering() -> Clustering {
        Clustering {
            centroids: vec![vec![0.0, 0.0], vec![10.0, 10.0]],
            assignments: vec![0, 0, 1, 1, 1],
        }
    }

    #[test]
    fn assign_picks_nearest() {
        let c = toy_clustering();
        assert_eq!(c.assign(&[1.0, -1.0]), 0);
        assert_eq!(c.assign(&[9.0, 12.0]), 1);
    }

    #[test]
    fn members_partition_points() {
        let m = toy_clustering().members();
        assert_eq!(m[0], vec![0, 1]);
        assert_eq!(m[1], vec![2, 3, 4]);
    }

    #[test]
    fn purity_of_pure_clusters_is_one() {
        let c = toy_clustering();
        let labels = [2, 2, 0, 0, 0];
        let (per, overall) = cluster_purity(&c, &labels, 3);
        assert_eq!(per, vec![1.0, 1.0]);
        assert_eq!(overall, 1.0);
    }

    #[test]
    fn purity_of_mixed_cluster() {
        let c = toy_clustering();
        let labels = [2, 1, 0, 0, 1];
        let (per, overall) = cluster_purity(&c, &labels, 3);
        assert_eq!(per[0], 0.5);
        assert!((per[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((overall - (0.5 * 2.0 + 2.0 / 3.0 * 3.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_clusters() {
        let mut c = toy_clustering();
        c.merge(0, 1);
        assert_eq!(c.n_clusters(), 1);
        assert!(c.assignments.iter().all(|&a| a == 0));
        // Weighted mean of (0,0) x2 and (10,10) x3.
        assert_eq!(c.centroids[0], vec![6.0, 6.0]);
    }

    #[test]
    fn merge_higher_into_lower_and_vice_versa_agree_on_membership() {
        let mut a = toy_clustering();
        let mut b = toy_clustering();
        a.merge(0, 1);
        b.merge(1, 0);
        assert_eq!(a.n_clusters(), 1);
        assert_eq!(b.n_clusters(), 1);
        assert_eq!(a.centroids[0], b.centroids[0]);
    }

    #[test]
    fn merge_shifts_higher_indices() {
        let mut c = Clustering {
            centroids: vec![vec![0.0], vec![5.0], vec![10.0]],
            assignments: vec![0, 1, 2, 2],
        };
        c.merge(0, 1);
        assert_eq!(c.n_clusters(), 2);
        // The former cluster 2 is now cluster 1.
        assert_eq!(c.assignments, vec![0, 0, 1, 1]);
        assert_eq!(c.centroids[1], vec![10.0]);
    }

    #[test]
    fn split_separates_bimodal_cluster() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
        ];
        let mut c = Clustering {
            centroids: vec![vec![5.0, 5.0]],
            assignments: vec![0, 0, 0, 0],
        };
        let new = c.split(0, &points, 3).expect("splittable");
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[2], c.assignments[3]);
        assert_ne!(c.assignments[0], c.assignments[2]);
        assert_eq!(new, 1);
    }

    #[test]
    fn split_refuses_singleton_and_identical() {
        let points = vec![vec![1.0], vec![1.0], vec![2.0]];
        let mut c = Clustering {
            centroids: vec![vec![1.0], vec![2.0]],
            assignments: vec![0, 0, 1],
        };
        // Cluster 1 has one member.
        assert_eq!(c.split(1, &points, 0), None);
        // Cluster 0 has two identical members: 2-means collapses.
        assert_eq!(c.split(0, &points, 0), None);
    }

    #[test]
    fn inertia_zero_for_points_on_centroids() {
        let c = toy_clustering();
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![10.0, 10.0],
            vec![10.0, 10.0],
            vec![10.0, 10.0],
        ];
        assert_eq!(c.inertia(&pts), 0.0);
    }
}
